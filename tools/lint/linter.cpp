#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lexer.hpp"

namespace icheck::lint
{

namespace
{

/** One parsed, well-formed suppression directive. */
struct Suppression
{
    Rule rule = Rule::D1;
    int firstLine = 0; ///< First line it covers.
    int lastLine = 0;  ///< Last line it covers (comment end + 1).
};

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/**
 * Parse every allow-directive in a comment carrying the icheck-lint
 * marker. A directive needs a known rule id and a non-empty reason
 * after the closing paren; anything else is an H4.
 */
void
parseSuppressions(const std::string &path, const Comment &comment,
                  std::vector<Suppression> &suppressions,
                  std::vector<Finding> &findings)
{
    const std::string marker = "icheck-lint:";
    std::size_t at = comment.text.find(marker);
    if (at == std::string::npos)
        return;
    int directives = 0;
    std::size_t cursor = at + marker.size();
    while ((at = comment.text.find("allow", cursor)) !=
           std::string::npos) {
        cursor = at + 5;
        std::size_t open = comment.text.find('(', cursor);
        if (open == std::string::npos)
            break;
        std::size_t close = comment.text.find(')', open);
        if (close == std::string::npos)
            break;
        const std::string id =
            trim(comment.text.substr(open + 1, close - open - 1));
        cursor = close + 1;

        // Reason: the text after ')' (and an optional ':' or '--'),
        // up to the next allow() if any.
        std::size_t reason_end = comment.text.find("allow", cursor);
        if (reason_end == std::string::npos)
            reason_end = comment.text.size();
        std::string reason =
            trim(comment.text.substr(cursor, reason_end - cursor));
        while (!reason.empty() &&
               (reason.front() == ':' || reason.front() == '-'))
            reason = trim(reason.substr(1));

        ++directives;
        Rule rule = Rule::D1;
        if (!parseRule(id, rule)) {
            Finding finding;
            finding.rule = Rule::H4;
            finding.file = path;
            finding.line = comment.line;
            finding.message = "suppression names unknown rule '" + id +
                              "'";
            findings.push_back(std::move(finding));
            continue;
        }
        if (reason.empty()) {
            Finding finding;
            finding.rule = Rule::H4;
            finding.file = path;
            finding.line = comment.line;
            finding.message = "suppression of " + id +
                              " is missing its reason";
            findings.push_back(std::move(finding));
            continue;
        }
        Suppression suppression;
        suppression.rule = rule;
        suppression.firstLine = comment.line;
        suppression.lastLine = comment.endLine + 1;
        suppressions.push_back(suppression);
    }
    if (directives == 0) {
        // An icheck-lint marker with no parseable allow-directive.
        Finding finding;
        finding.rule = Rule::H4;
        finding.file = path;
        finding.line = comment.line;
        finding.message = "icheck-lint comment contains no valid "
                          "allow(<rule>) directive";
        findings.push_back(std::move(finding));
    }
}

std::vector<std::string>
splitLines(const std::string &source)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(source);
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

bool
isSourceFile(const std::filesystem::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" ||
           ext == ".cc" || ext == ".hh" || ext == ".cxx" ||
           ext == ".hxx";
}

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::vector<KeyedFinding>
lintSource(const std::string &path, const std::string &source,
           const LintConfig &config)
{
    const LexResult lexed = lex(source);

    std::vector<Finding> findings;
    std::vector<Suppression> suppressions;
    for (const Comment &comment : lexed.comments) {
        std::vector<Finding> h4;
        parseSuppressions(path, comment, suppressions, h4);
        findings.insert(findings.end(), h4.begin(), h4.end());
    }

    runCodeRules(path, lexed, config, findings);
    runCommentRules(path, lexed, findings);

    std::vector<Finding> kept;
    for (Finding &finding : findings) {
        bool suppressed = false;
        if (finding.rule != Rule::H4) {
            for (const Suppression &suppression : suppressions) {
                if (suppression.rule == finding.rule &&
                    finding.line >= suppression.firstLine &&
                    finding.line <= suppression.lastLine) {
                    suppressed = true;
                    break;
                }
            }
        }
        if (!suppressed)
            kept.push_back(std::move(finding));
    }

    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.line != b.line)
                             return a.line < b.line;
                         return static_cast<int>(a.rule) <
                                static_cast<int>(b.rule);
                     });

    const std::vector<std::string> lines = splitLines(source);
    std::vector<KeyedFinding> keyed;
    keyed.reserve(kept.size());
    for (Finding &finding : kept) {
        KeyedFinding entry;
        const std::size_t index =
            static_cast<std::size_t>(finding.line) - 1;
        entry.lineText = index < lines.size() ? trim(lines[index]) : "";
        char hash[32];
        std::snprintf(hash, sizeof hash, "%016llx",
                      static_cast<unsigned long long>(
                          fnv1a64(entry.lineText)));
        entry.key = std::string(ruleInfo(finding.rule).id) + "\t" +
                    finding.file + "\t" + hash;
        entry.finding = std::move(finding);
        keyed.push_back(std::move(entry));
    }
    return keyed;
}

LintRun
lintPaths(const std::vector<std::string> &paths, const LintConfig &config)
{
    namespace fs = std::filesystem;

    std::vector<std::string> files;
    for (const std::string &path : paths) {
        if (fs::is_directory(path)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(path)) {
                if (entry.is_regular_file() &&
                    isSourceFile(entry.path()))
                    files.push_back(entry.path().generic_string());
            }
        } else if (fs::is_regular_file(path)) {
            files.push_back(fs::path(path).generic_string());
        } else {
            throw std::runtime_error("no such file or directory: " +
                                     path);
        }
    }
    // Directory iteration order is filesystem-dependent; the lint's own
    // output must not be.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    LintRun run;
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read " + file);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::vector<KeyedFinding> found =
            lintSource(file, buffer.str(), config);
        run.findings.insert(run.findings.end(),
                            std::make_move_iterator(found.begin()),
                            std::make_move_iterator(found.end()));
        ++run.filesScanned;
    }
    return run;
}

Baseline
readBaseline(std::istream &in)
{
    Baseline baseline;
    std::string line;
    while (std::getline(in, line)) {
        const std::string entry = trim(line);
        if (entry.empty() || entry.front() == '#')
            continue;
        ++baseline[entry];
    }
    return baseline;
}

void
writeBaseline(std::ostream &out,
              const std::vector<KeyedFinding> &findings)
{
    out << "# icheck-lint baseline: one tab-separated entry per "
           "accepted finding.\n"
        << "# <rule>\t<file>\t<fnv1a64 of the trimmed source line>\n"
        << "# Regenerate with: icheck-lint --write-baseline <this file> "
           "<paths>\n";
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const KeyedFinding &finding : findings)
        keys.push_back(finding.key);
    std::sort(keys.begin(), keys.end());
    for (const std::string &key : keys)
        out << key << "\n";
}

std::vector<KeyedFinding>
subtractBaseline(const std::vector<KeyedFinding> &findings,
                 Baseline baseline)
{
    std::vector<KeyedFinding> fresh;
    for (const KeyedFinding &finding : findings) {
        const auto budget = baseline.find(finding.key);
        if (budget != baseline.end() && budget->second > 0) {
            --budget->second;
            continue;
        }
        fresh.push_back(finding);
    }
    return fresh;
}

} // namespace icheck::lint
