#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lexer.hpp"
#include "runtime/thread_pool.hpp"
#include "symbols.hpp"

namespace icheck::lint
{

namespace
{

/** One parsed, well-formed suppression directive. */
struct Suppression
{
    Rule rule = Rule::D1;
    int firstLine = 0; ///< First line it covers.
    int lastLine = 0;  ///< Last line it covers (comment end + 1).
};

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/**
 * Parse every allow-directive in a comment carrying the icheck-lint
 * marker. A directive needs a known rule id and a non-empty reason
 * after the closing paren; anything else is an H4.
 */
void
parseSuppressions(const std::string &path, const Comment &comment,
                  std::vector<Suppression> &suppressions,
                  std::vector<Finding> &findings)
{
    const std::string marker = "icheck-lint:";
    std::size_t at = comment.text.find(marker);
    if (at == std::string::npos)
        return;
    int directives = 0;
    std::size_t cursor = at + marker.size();
    while ((at = comment.text.find("allow", cursor)) !=
           std::string::npos) {
        cursor = at + 5;
        std::size_t open = comment.text.find('(', cursor);
        if (open == std::string::npos)
            break;
        std::size_t close = comment.text.find(')', open);
        if (close == std::string::npos)
            break;
        const std::string id =
            trim(comment.text.substr(open + 1, close - open - 1));
        cursor = close + 1;

        // Reason: the text after ')' (and an optional ':' or '--'),
        // up to the next allow() if any.
        std::size_t reason_end = comment.text.find("allow", cursor);
        if (reason_end == std::string::npos)
            reason_end = comment.text.size();
        std::string reason =
            trim(comment.text.substr(cursor, reason_end - cursor));
        while (!reason.empty() &&
               (reason.front() == ':' || reason.front() == '-'))
            reason = trim(reason.substr(1));

        ++directives;
        Rule rule = Rule::D1;
        if (!parseRule(id, rule)) {
            Finding finding;
            finding.rule = Rule::H4;
            finding.file = path;
            finding.line = comment.line;
            finding.message = "suppression names unknown rule '" + id +
                              "'";
            findings.push_back(std::move(finding));
            continue;
        }
        if (reason.empty()) {
            Finding finding;
            finding.rule = Rule::H4;
            finding.file = path;
            finding.line = comment.line;
            finding.message = "suppression of " + id +
                              " is missing its reason";
            findings.push_back(std::move(finding));
            continue;
        }
        Suppression suppression;
        suppression.rule = rule;
        suppression.firstLine = comment.line;
        suppression.lastLine = comment.endLine + 1;
        suppressions.push_back(suppression);
    }
    if (directives == 0) {
        // An icheck-lint marker with no parseable allow-directive.
        Finding finding;
        finding.rule = Rule::H4;
        finding.file = path;
        finding.line = comment.line;
        finding.message = "icheck-lint comment contains no valid "
                          "allow(<rule>) directive";
        findings.push_back(std::move(finding));
    }
}

std::vector<std::string>
splitLines(const std::string &source)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(source);
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

bool
isSourceFile(const std::filesystem::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" ||
           ext == ".cc" || ext == ".hh" || ext == ".cxx" ||
           ext == ".hxx";
}

/** Everything phase 1 extracts from one file. */
struct FileScan
{
    std::vector<Finding> findings; ///< Pattern + comment rules + H4.
    std::vector<Suppression> suppressions;
    std::vector<std::string> lines;
    LocksetFacts facts;
};

FileScan
scanFile(const std::string &path, const std::string &source,
         const LintConfig &config)
{
    FileScan scan;
    const LexResult lexed = lex(source);
    for (const Comment &comment : lexed.comments)
        parseSuppressions(path, comment, scan.suppressions,
                          scan.findings);
    runCodeRules(path, lexed, config, scan.findings);
    runCommentRules(path, lexed, scan.findings);
    const SymbolTable symbols = collectSymbols(path, lexed);
    scan.facts = collectLocksetFacts(path, lexed, symbols, config);
    scan.lines = splitLines(source);
    return scan;
}

bool
isSuppressed(const Finding &finding,
             const std::vector<Suppression> &suppressions)
{
    if (finding.rule == Rule::H4)
        return false;
    for (const Suppression &suppression : suppressions) {
        if (suppression.rule == finding.rule &&
            finding.line >= suppression.firstLine &&
            finding.line <= suppression.lastLine)
            return true;
    }
    return false;
}

KeyedFinding
keyFinding(Finding finding, const std::vector<std::string> &lines)
{
    KeyedFinding entry;
    const std::size_t index = static_cast<std::size_t>(finding.line) - 1;
    entry.lineText = index < lines.size() ? trim(lines[index]) : "";
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(entry.lineText)));
    entry.key = std::string(ruleInfo(finding.rule).id) + "\t" +
                finding.file + "\t" + hash;
    entry.finding = std::move(finding);
    return entry;
}

bool
isLocksetRule(Rule rule)
{
    return rule == Rule::L1 || rule == Rule::L2 || rule == Rule::L3;
}

/** Promote statically-found, dynamically-confirmed findings to error. */
void
promoteConfirmed(std::vector<Finding> &findings,
                 const std::vector<DynamicRace> &races)
{
    for (Finding &finding : findings) {
        if (!isLocksetRule(finding.rule))
            continue;
        for (const DynamicRace &race : races) {
            const RaceEndpoint *hit = nullptr;
            if (race.first.line == finding.line &&
                pathsMatch(race.first.file, finding.file))
                hit = &race.first;
            else if (race.second.line == finding.line &&
                     pathsMatch(race.second.file, finding.file))
                hit = &race.second;
            if (hit == nullptr)
                continue;
            finding.severity = Severity::Error;
            finding.message += " [confirmed by dynamic race: " +
                               race.kind + " on " + race.symbol + "]";
            break;
        }
    }
}

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

LintRun
lintSources(const std::vector<FileInput> &files, const LintConfig &config,
            const std::vector<DynamicRace> &races)
{
    // Phase 1, per file and embarrassingly parallel: pattern rules plus
    // symbol/lockset fact extraction. Results land in input order, so
    // the merge below is identical for every worker count.
    std::vector<FileScan> scans(files.size());
    if (config.jobs != 1 && files.size() > 1) {
        runtime::ThreadPool pool(config.jobs);
        pool.parallelFor(files.size(), [&](std::size_t i) {
            scans[i] = scanFile(files[i].path, files[i].source, config);
        });
    } else {
        for (std::size_t i = 0; i < files.size(); ++i)
            scans[i] = scanFile(files[i].path, files[i].source, config);
    }

    // Phase 2, global: guard inference over every TU's facts.
    LintRun run;
    run.filesScanned = static_cast<int>(files.size());
    std::vector<LocksetFacts> facts;
    facts.reserve(scans.size());
    for (FileScan &scan : scans)
        facts.push_back(std::move(scan.facts));
    std::vector<Finding> locksetFindings;
    run.lockset = analyzeLocksets(facts, config, locksetFindings);

    // Route the cross-TU findings back to their files.
    std::map<std::string, std::size_t> fileIndex;
    for (std::size_t i = 0; i < files.size(); ++i)
        fileIndex[files[i].path] = i;
    for (Finding &finding : locksetFindings) {
        const auto at = fileIndex.find(finding.file);
        if (at != fileIndex.end())
            scans[at->second].findings.push_back(std::move(finding));
    }

    // Cross-check against the dynamic race log.
    if (!races.empty()) {
        std::set<std::pair<std::string, int>> contradicted;
        for (const DynamicRace &race : races) {
            for (const RaceEndpoint *endpoint :
                 {&race.first, &race.second}) {
                if (endpoint->line <= 0)
                    continue;
                for (const auto &[file, lines] :
                     run.lockset.guardedLines) {
                    if (lines.count(endpoint->line) == 0 ||
                        !pathsMatch(file, endpoint->file))
                        continue;
                    if (!contradicted.insert({file, endpoint->line})
                             .second)
                        continue;
                    Finding finding;
                    finding.rule = Rule::X1;
                    finding.file = file;
                    finding.line = endpoint->line;
                    finding.severity = Severity::Error;
                    finding.message =
                        "dynamic " + race.kind + " race on " +
                        race.symbol +
                        " at a line the lockset pass believed guarded";
                    const auto at = fileIndex.find(file);
                    if (at != fileIndex.end())
                        scans[at->second].findings.push_back(
                            std::move(finding));
                }
            }
        }
        for (FileScan &scan : scans)
            promoteConfirmed(scan.findings, races);
    }

    // Finalize per file: suppressions, ordering, baseline keys.
    for (FileScan &scan : scans) {
        std::vector<Finding> kept;
        for (Finding &finding : scan.findings) {
            if (!isSuppressed(finding, scan.suppressions))
                kept.push_back(std::move(finding));
        }
        std::stable_sort(kept.begin(), kept.end(),
                         [](const Finding &a, const Finding &b) {
                             if (a.line != b.line)
                                 return a.line < b.line;
                             return static_cast<int>(a.rule) <
                                    static_cast<int>(b.rule);
                         });
        for (Finding &finding : kept)
            run.findings.push_back(
                keyFinding(std::move(finding), scan.lines));
    }
    return run;
}

std::vector<KeyedFinding>
lintSource(const std::string &path, const std::string &source,
           const LintConfig &config)
{
    return lintSources({{path, source}}, config).findings;
}

LintRun
lintPaths(const std::vector<std::string> &paths, const LintConfig &config,
          const std::vector<DynamicRace> &races)
{
    namespace fs = std::filesystem;

    std::vector<std::string> names;
    for (const std::string &path : paths) {
        if (fs::is_directory(path)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(path)) {
                if (entry.is_regular_file() &&
                    isSourceFile(entry.path()))
                    names.push_back(entry.path().generic_string());
            }
        } else if (fs::is_regular_file(path)) {
            names.push_back(fs::path(path).generic_string());
        } else {
            throw std::runtime_error("no such file or directory: " +
                                     path);
        }
    }
    // Directory iteration order is filesystem-dependent; the lint's own
    // output must not be.
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());

    std::vector<FileInput> files;
    files.reserve(names.size());
    for (std::string &name : names) {
        std::ifstream in(name, std::ios::binary);
        if (!in)
            throw std::runtime_error("cannot read " + name);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        files.push_back({std::move(name), buffer.str()});
    }
    return lintSources(files, config, races);
}

Baseline
readBaseline(std::istream &in)
{
    Baseline baseline;
    std::string line;
    while (std::getline(in, line)) {
        const std::string entry = trim(line);
        if (entry.empty() || entry.front() == '#')
            continue;
        ++baseline[entry];
    }
    return baseline;
}

void
writeBaseline(std::ostream &out,
              const std::vector<KeyedFinding> &findings)
{
    out << "# icheck-lint baseline: one tab-separated entry per "
           "accepted finding.\n"
        << "# <rule>\t<file>\t<fnv1a64 of the trimmed source line>\n"
        << "# Regenerate with: icheck-lint --baseline <this file> "
           "--update-baseline <paths>\n";
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const KeyedFinding &finding : findings)
        keys.push_back(finding.key);
    std::sort(keys.begin(), keys.end());
    for (const std::string &key : keys)
        out << key << "\n";
}

std::vector<KeyedFinding>
subtractBaseline(const std::vector<KeyedFinding> &findings,
                 Baseline baseline)
{
    std::vector<KeyedFinding> fresh;
    for (const KeyedFinding &finding : findings) {
        const auto budget = baseline.find(finding.key);
        if (budget != baseline.end() && budget->second > 0) {
            --budget->second;
            continue;
        }
        fresh.push_back(finding);
    }
    return fresh;
}

} // namespace icheck::lint
