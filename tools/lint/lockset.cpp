#include "lockset.hpp"

#include <algorithm>

#include "stream.hpp"

namespace icheck::lint
{

namespace
{

bool
isControlKeyword(const std::string &text)
{
    return text == "if" || text == "for" || text == "while" ||
           text == "switch" || text == "do" || text == "else" ||
           text == "try" || text == "catch";
}

bool
isRaiiGuard(const std::string &text)
{
    return text == "lock_guard" || text == "unique_lock" ||
           text == "scoped_lock" || text == "shared_lock";
}

/** Type-ish tokens allowed in a declaration head before the name. */
bool
isDeclHeadToken(const Stream &s, std::size_t i)
{
    if (s.isIdent(i))
        return true;
    const std::string &text = s.text(i);
    return text == "::" || text == "<" || text == ">" || text == ">>" ||
           text == "*" || text == "&" || text == ",";
}

enum class ScopeKind
{
    Top,
    Namespace,
    Class,
    Enum,
    Function,
    Block,
};

struct Scope
{
    ScopeKind kind = ScopeKind::Top;
    std::set<std::string> locals;
    std::vector<std::string> locks; ///< Acquired in this scope, in order.
    std::string klass;    ///< Class scope: its name; Function scope: the
                          ///< qualifier of an out-of-line K::f.
    bool ctorLike = false; ///< Function scope of a ctor/dtor.
};

/**
 * The phase-1 walker. Structure follows rules.cpp's ScopeWalker (the
 * brace/head machinery is deliberately the same shape); the payload is
 * name resolution and lockset bookkeeping instead of pattern checks.
 */
class LocksetWalker
{
  public:
    LocksetWalker(const Stream &s, const std::string &path,
                  const SymbolTable &symbols, LocksetFacts &facts)
        : s(s), path(path), symbols(symbols), facts(facts)
    {
        stack.push_back(Scope{});
    }

    void
    run()
    {
        for (std::size_t i = 0; i < s.size(); ++i)
            step(i);
    }

  private:
    const Stream &s;
    const std::string &path;
    const SymbolTable &symbols;
    LocksetFacts &facts;

    std::vector<Scope> stack;
    std::vector<std::size_t> head;

    Scope &
    current()
    {
        return stack.back();
    }

    /* ---- context queries -------------------------------------------- */

    /** Innermost class context: an out-of-line qualifier or class scope. */
    std::string
    currentClass() const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (!it->klass.empty())
                return it->klass;
        }
        return "";
    }

    bool
    inFunction() const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == ScopeKind::Function)
                return true;
            if (it->kind == ScopeKind::Class ||
                it->kind == ScopeKind::Namespace)
                return false;
        }
        return false;
    }

    bool
    inConstructor() const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == ScopeKind::Function)
                return it->ctorLike;
        }
        return false;
    }

    bool
    isLocal(const std::string &name) const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->locals.count(name) != 0)
                return true;
            if (it->kind == ScopeKind::Function)
                break; // captures of enclosing functions do not count
        }
        return false;
    }

    /** Locks held here: union of scope locksets up to the function. */
    std::vector<std::string>
    heldLocks() const
    {
        std::vector<std::string> held;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            held.insert(held.end(), it->locks.begin(), it->locks.end());
            if (it->kind == ScopeKind::Function)
                break; // a lambda does not run under its definition lock
        }
        std::sort(held.begin(), held.end());
        held.erase(std::unique(held.begin(), held.end()), held.end());
        return held;
    }

    /* ---- name resolution -------------------------------------------- */

    /**
     * Resolve an identifier to a qualified object name, or "" when it
     * is a local, unresolvable, or not worth tracking (atomic/const).
     */
    std::string
    resolve(const std::string &name) const
    {
        if (name.empty() || name == "this" || isLocal(name))
            return "";
        const std::string klass = currentClass();
        if (!klass.empty()) {
            if (const VarInfo *member =
                    symbols.findMember(klass, name)) {
                if (member->isAtomic || member->isConst)
                    return "";
                return klass + "::" + name;
            }
        }
        const auto global = symbols.globals.find(name);
        if (global != symbols.globals.end()) {
            if (global->second.isAtomic || global->second.isConst)
                return "";
            return "::" + name;
        }
        // Out-of-line member fallback: inside `K::f`, a name that is
        // neither local nor TU-visible is almost always a member of K
        // declared in a header this TU-local pass cannot see.
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == ScopeKind::Function) {
                if (!it->klass.empty() &&
                    symbols.classes.count(it->klass) == 0)
                    return it->klass + "::" + name;
                break;
            }
        }
        return "";
    }

    /** Root identifier index of a member chain ending at token @p i. */
    std::size_t
    chainStart(std::size_t i) const
    {
        std::size_t root = i;
        while (root >= 2 &&
               (s.is(root - 1, ".") || s.is(root - 1, "->")) &&
               s.isIdent(root - 2))
            root -= 2;
        return root;
    }

    /**
     * Resolve the object written/read by the chain ending at ident @p i:
     * the chain's root decides ("stats.count" tracks as "…::stats"),
     * except a this-> chain which tracks the member after this->.
     */
    std::string
    resolveChain(std::size_t i) const
    {
        const std::size_t root = chainStart(i);
        if (s.text(root) == "this" && s.isIdent(root + 2))
            return resolve(s.text(root + 2));
        return resolve(s.text(root));
    }

    /* ---- lock bookkeeping ------------------------------------------- */

    void
    acquire(const std::string &lock, std::size_t at)
    {
        if (lock.empty())
            return;
        for (const std::string &held : heldLocks()) {
            if (held != lock)
                facts.edges.push_back(
                    {held, lock, path, s.line(at)});
        }
        current().locks.push_back(lock);
    }

    void
    release(const std::string &lock)
    {
        if (lock.empty())
            return;
        // Innermost matching acquisition wins, like real unlock.
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            auto hit =
                std::find(it->locks.rbegin(), it->locks.rend(), lock);
            if (hit != it->locks.rend()) {
                it->locks.erase(std::next(hit).base());
                return;
            }
            if (it->kind == ScopeKind::Function)
                return;
        }
    }

    /** First identifier inside the paren group opening at @p open. */
    std::size_t
    firstArgIdent(std::size_t open) const
    {
        const std::size_t close = skipParens(s, open);
        for (std::size_t j = open + 1; j + 1 < close; ++j) {
            if (s.isIdent(j))
                return j;
            if (!s.is(j, "&") && !s.is(j, "*"))
                break; // literal or expression we cannot root
        }
        return s.size();
    }

    /**
     * RAII guard declaration: `lock_guard<mutex> g(mu)` (scoped_lock
     * may name several mutexes). @p i is the guard type token.
     */
    void
    handleRaiiGuard(std::size_t i)
    {
        std::size_t j = i + 1;
        if (s.is(j, "<"))
            j = skipAngles(s, j);
        if (s.isIdent(j))
            ++j; // the guard variable name
        if (!s.is(j, "(") && !s.is(j, "{"))
            return; // a guard type mention, not a declaration
        if (s.is(j, "{"))
            return; // brace-init opens a scope; rare, skip
        const std::size_t close = skipParens(s, j);
        for (std::size_t a = j + 1; a + 1 < close; ++a) {
            if (!s.isIdent(a))
                continue;
            if (s.is(a + 1, ".") || s.is(a + 1, "->"))
                continue; // chain link; the final element resolves below
            if (s.is(a - 1, ".") || s.is(a - 1, "->")) {
                acquire(resolveChain(a), a);
            } else {
                acquire(resolve(s.text(a)), a);
            }
            // std::adopt_lock etc. resolve to "" and are ignored.
        }
    }

    /**
     * Method-style lock calls. Two idioms share the spelling:
     *   mu.lock()        — receiver is the mutex;
     *   ctx.lock(mu)     — the simulated machine: the argument is.
     * @p i is the lock/unlock identifier.
     */
    void
    handleLockCall(std::size_t i, bool isAcquire)
    {
        const std::size_t open = i + 1;
        const std::size_t arg = firstArgIdent(open);
        std::string lock;
        std::size_t at = i;
        if (arg != s.size()) {
            lock = resolveChain(arg);
            at = arg;
        } else if (s.isIdent(i - 2)) {
            lock = resolveChain(i - 2);
            at = i - 2;
        }
        if (isAcquire)
            acquire(lock, at);
        else
            release(lock);
    }

    /* ---- access recording ------------------------------------------- */

    void
    recordAccess(const std::string &object, std::size_t at, bool isWrite)
    {
        if (object.empty())
            return;
        LockAccess access;
        access.object = object;
        access.file = path;
        access.line = s.line(at);
        access.isWrite = isWrite;
        access.inConstructor = inConstructor();
        access.locksHeld = heldLocks();
        facts.accesses.push_back(std::move(access));
    }

    /**
     * Simulated-machine accesses: `ctx.store<T>(addrExpr, …)` writes
     * the object rooted at addrExpr's first identifier; load reads it.
     * @p i is the store/load identifier (receiver already verified).
     * The explicit template argument separates this idiom from
     * std::atomic's store(v)/load() — those never spell the type, and
     * their argument is a value, not an address.
     */
    void
    handleSimAccess(std::size_t i, bool isWrite, bool needsAngles)
    {
        std::size_t j = i + 1;
        if (needsAngles && !s.is(j, "<"))
            return;
        if (s.is(j, "<"))
            j = skipAngles(s, j);
        if (!s.is(j, "("))
            return;
        const std::size_t arg = firstArgIdent(j);
        if (arg == s.size() || s.is(arg + 1, "("))
            return; // call expression (ctx.global("x")): no static root
        recordAccess(resolve(s.text(arg)), arg, isWrite);
    }

    /** `target = / += / -= …` — the token at @p i is the operator. */
    void
    handleAssignment(std::size_t i)
    {
        if (!inFunction() || !s.isIdent(i - 1))
            return;
        recordAccess(resolveChain(i - 1), i - 1, /*isWrite=*/true);
    }

    /** Prefix/postfix ++ and -- (mirrors the C2 scanner's shapes). */
    void
    handleIncDec(std::size_t i)
    {
        if (!inFunction())
            return;
        if (s.isIdent(i + 1) && !s.isIdent(i - 1) && !s.is(i - 1, ")") &&
            !s.is(i - 1, "]")) {
            std::size_t last = i + 1;
            while ((s.is(last + 1, ".") || s.is(last + 1, "->")) &&
                   s.isIdent(last + 2))
                last += 2;
            recordAccess(resolveChain(last), last, /*isWrite=*/true);
        } else if (s.isIdent(i - 1)) {
            recordAccess(resolveChain(i - 1), i - 1, /*isWrite=*/true);
        }
    }

    /** Unary & on a tracked object: its address escapes the lockset. */
    void
    handleAddressOf(std::size_t i)
    {
        if (!inFunction() || !s.isIdent(i + 1))
            return;
        // Binary & has a value on its left; unary & does not. Keywords
        // lex as identifiers but do not yield values.
        const std::string &prev = s.text(i - 1);
        const bool value_before =
            (s.isIdent(i - 1) && prev != "return" && prev != "throw" &&
             prev != "case" && prev != "co_return" &&
             prev != "co_yield") ||
            s.kind(i - 1) == TokenKind::Number || s.is(i - 1, ")") ||
            s.is(i - 1, "]");
        if (value_before)
            return;
        // &name.member escapes the root object.
        const std::string object = resolve(s.text(i + 1));
        if (object.empty())
            return;
        EscapeSite escape;
        escape.object = object;
        escape.file = path;
        escape.line = s.line(i + 1);
        escape.locksHeld = heldLocks();
        facts.escapes.push_back(std::move(escape));
    }

    /* ---- declaration tracking (locals) ------------------------------ */

    void
    declareHeadParams(Scope &scope)
    {
        for (std::size_t n = 0; n + 1 < head.size(); ++n) {
            const std::size_t i = head[n];
            const std::size_t next = head[n + 1];
            if (s.isIdent(i) &&
                (s.is(next, ",") || s.is(next, ")") || s.is(next, "=") ||
                 s.is(next, ":") || s.is(next, "]")))
                scope.locals.insert(s.text(i));
        }
    }

    void
    declareForHeader(std::size_t i)
    {
        const std::size_t close = skipParens(s, i + 1);
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
            if (s.isIdent(j) && (s.is(j + 1, "=") || s.is(j + 1, ":") ||
                                 s.is(j + 1, ",") || s.is(j + 1, "]")))
                current().locals.insert(s.text(j));
        }
    }

    void
    declareFromHead()
    {
        if (current().kind != ScopeKind::Function &&
            current().kind != ScopeKind::Block)
            return;
        // Structured bindings: `auto [a, b] = …` declares each name.
        for (std::size_t n = 0; n + 1 < head.size(); ++n) {
            if (s.is(head[n], "[") || s.is(head[n], ",")) {
                if (s.isIdent(head[n + 1]) &&
                    (s.is(head[n + 1] + 1, ",") ||
                     s.is(head[n + 1] + 1, "]")))
                    current().locals.insert(s.text(head[n + 1]));
            }
        }
        std::size_t end = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            if (s.is(head[n], "=") || s.is(head[n], "(")) {
                end = n;
                break;
            }
        }
        if (end < 2)
            return;
        const std::size_t last = head[end - 1];
        if (!s.isIdent(last))
            return;
        for (std::size_t n = 0; n < end - 1; ++n) {
            if (!isDeclHeadToken(s, head[n]))
                return;
        }
        current().locals.insert(s.text(last));
    }

    /* ---- scope machinery -------------------------------------------- */

    bool
    headContains(const char *want) const
    {
        for (const std::size_t i : head) {
            if (s.is(i, want))
                return true;
        }
        return false;
    }

    /** Class name out of a class/struct head (last keyword's ident). */
    std::string
    classNameFromHead() const
    {
        std::size_t keyword = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            const std::string &text = s.text(head[n]);
            if (text == "class" || text == "struct" || text == "union")
                keyword = n;
        }
        std::string name;
        for (std::size_t n = keyword + 1;
             n < head.size() && !s.is(head[n], ":"); ++n) {
            if (s.isIdent(head[n]))
                name = s.text(head[n]);
        }
        return name;
    }

    /**
     * For a function head `Ret [K ::] name (params)`: fill the scope's
     * qualifier and ctor/dtor flag from the tokens before the first '('.
     */
    void
    fillFunctionIdentity(Scope &scope) const
    {
        std::size_t paren = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            if (s.is(head[n], "(")) {
                paren = n;
                break;
            }
        }
        if (paren == head.size() || paren == 0)
            return;
        const std::size_t name_at = head[paren - 1];
        if (!s.isIdent(name_at))
            return;
        const std::string &name = s.text(name_at);
        std::string qualifier;
        if (paren >= 3 && s.is(head[paren - 2], "::") &&
            s.isIdent(head[paren - 3]))
            qualifier = s.text(head[paren - 3]);
        scope.klass = qualifier;
        const std::string klass =
            !qualifier.empty() ? qualifier : enclosingClass();
        scope.ctorLike =
            (!klass.empty() && name == klass) ||
            (paren >= 2 && s.is(head[paren - 2], "~"));
    }

    std::string
    enclosingClass() const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == ScopeKind::Class)
                return it->klass;
        }
        return "";
    }

    void
    classifyAndPush()
    {
        Scope scope;
        const ScopeKind enclosing = current().kind;
        if (headContains("namespace")) {
            scope.kind = ScopeKind::Namespace;
        } else if (headContains("enum")) {
            scope.kind = ScopeKind::Enum;
        } else if ((headContains("class") || headContains("struct") ||
                    headContains("union")) &&
                   !headContains("(")) {
            scope.kind = ScopeKind::Class;
            scope.klass = classNameFromHead();
        } else if (!head.empty() && s.is(head.back(), "]")) {
            scope.kind = ScopeKind::Function; // capture-only lambda
        } else if (!head.empty() &&
                   isControlKeyword(s.text(head.front()))) {
            scope.kind = ScopeKind::Block;
        } else if (headContains(")") &&
                   (enclosing == ScopeKind::Function ||
                    enclosing == ScopeKind::Block) &&
                   !headContains("]")) {
            // Initializer or compound expression inside a function, not
            // a new execution context.
            scope.kind = ScopeKind::Block;
            declareHeadParams(scope);
        } else if (headContains(")") ||
                   (headContains("]") && headContains("("))) {
            scope.kind = ScopeKind::Function;
            fillFunctionIdentity(scope);
            declareHeadParams(scope);
        } else {
            scope.kind = ScopeKind::Block;
        }
        stack.push_back(std::move(scope));
        head.clear();
    }

    void
    step(std::size_t i)
    {
        if (s.kind(i) == TokenKind::Preprocessor)
            return;
        const std::string &text = s.text(i);
        if (text == "{") {
            classifyAndPush();
            return;
        }
        if (text == "}") {
            if (stack.size() > 1)
                stack.pop_back();
            head.clear();
            return;
        }
        if (text == ";") {
            declareFromHead();
            head.clear();
            return;
        }
        if ((text == "public" || text == "private" ||
             text == "protected") &&
            s.is(i + 1, ":")) {
            head.clear();
            return;
        }
        const bool method_call =
            (s.is(i - 1, ".") || s.is(i - 1, "->")) && s.is(i + 1, "(");
        if (isRaiiGuard(text) && inFunction()) {
            handleRaiiGuard(i);
        } else if (text == "lock" && method_call) {
            handleLockCall(i, /*isAcquire=*/true);
        } else if (text == "unlock" && method_call) {
            handleLockCall(i, /*isAcquire=*/false);
        } else if ((text == "store" || text == "storePtr") &&
                   (s.is(i - 1, ".") || s.is(i - 1, "->"))) {
            handleSimAccess(i, /*isWrite=*/true,
                            /*needsAngles=*/text == "store");
        } else if ((text == "load" || text == "loadPtr") &&
                   (s.is(i - 1, ".") || s.is(i - 1, "->"))) {
            handleSimAccess(i, /*isWrite=*/false,
                            /*needsAngles=*/text == "load");
        } else if (text == "=" || text == "+=" || text == "-=" ||
                   text == "*=" || text == "/=" || text == "%=" ||
                   text == "|=" || text == "&=" || text == "^=") {
            // '=' ends the declaration part first so the just-declared
            // name resolves as a local, not as a write target.
            declareFromHead();
            handleAssignment(i);
        } else if (text == "++" || text == "--") {
            handleIncDec(i);
        } else if (text == "&") {
            handleAddressOf(i);
        } else if (text == "for" && s.is(i + 1, "(")) {
            declareForHeader(i);
        }
        head.push_back(i);
    }
};

/* ---------------------------------------------------------------------- */
/* Phase 2: aggregation                                                   */
/* ---------------------------------------------------------------------- */

bool
holds(const std::vector<std::string> &locks, const std::string &lock)
{
    return std::find(locks.begin(), locks.end(), lock) != locks.end();
}

void
report(std::vector<Finding> &findings, Rule rule, const std::string &file,
       int line, const std::string &message)
{
    Finding finding;
    finding.rule = rule;
    finding.file = file;
    finding.line = line;
    finding.message = message;
    findings.push_back(std::move(finding));
}

/** Short display name: "WaterSP::kinetic" -> "kinetic" stays qualified. */
std::string
displayName(const std::string &object)
{
    return object.substr(0, 2) == "::" ? object.substr(2) : object;
}

/** True if @p to is reachable from @p from over the lock-order graph. */
bool
reaches(const std::map<std::string, std::set<std::string>> &graph,
        const std::string &from, const std::string &to)
{
    std::set<std::string> visited;
    std::vector<std::string> worklist{from};
    while (!worklist.empty()) {
        const std::string node = worklist.back();
        worklist.pop_back();
        if (node == to)
            return true;
        if (!visited.insert(node).second)
            continue;
        const auto next = graph.find(node);
        if (next == graph.end())
            continue;
        for (const std::string &succ : next->second)
            worklist.push_back(succ);
    }
    return false;
}

} // namespace

LocksetFacts
collectLocksetFacts(const std::string &path, const LexResult &lexed,
                    const SymbolTable &symbols, const LintConfig &)
{
    LocksetFacts facts;
    const Stream s{lexed.tokens};
    LocksetWalker(s, path, symbols, facts).run();
    return facts;
}

LocksetSummary
analyzeLocksets(const std::vector<LocksetFacts> &facts,
                const LintConfig &config, std::vector<Finding> &findings)
{
    LocksetSummary summary;

    // Flatten, preserving the deterministic per-file order facts were
    // collected in (callers pass files sorted by path).
    std::vector<const LockAccess *> accesses;
    std::vector<const LockOrderEdge *> edges;
    std::vector<const EscapeSite *> escapes;
    for (const LocksetFacts &tu : facts) {
        for (const LockAccess &access : tu.accesses)
            accesses.push_back(&access);
        for (const LockOrderEdge &edge : tu.edges)
            edges.push_back(&edge);
        for (const EscapeSite &escape : tu.escapes)
            escapes.push_back(&escape);
    }

    /* ---- guard inference + L1 ---------------------------------------- */

    std::map<std::string, std::vector<const LockAccess *>> byObject;
    for (const LockAccess *access : accesses)
        byObject[access->object].push_back(access);

    for (const auto &[object, list] : byObject) {
        GuardInfo guard;
        std::map<std::string, int> lockVotes;
        for (const LockAccess *access : list) {
            if (!access->isWrite || access->inConstructor)
                continue;
            ++guard.totalWrites;
            for (const std::string &lock : access->locksHeld)
                ++lockVotes[lock];
        }
        // Reference lock: most write votes, ties to the smaller name
        // (std::map iteration gives the smaller name first).
        for (const auto &[lock, votes] : lockVotes) {
            if (votes > guard.lockedWrites) {
                guard.lockedWrites = votes;
                guard.lock = lock;
            }
        }
        guard.guarded =
            !guard.lock.empty() &&
            guard.totalWrites >= config.minGuardWrites &&
            static_cast<double>(guard.lockedWrites) >=
                config.guardRatio *
                    static_cast<double>(guard.totalWrites);
        summary.guards[object] = guard;

        if (guard.lock.empty() ||
            guard.totalWrites < config.minGuardWrites)
            continue;

        for (const LockAccess *access : list) {
            if (access->inConstructor)
                continue;
            const bool conforms = holds(access->locksHeld, guard.lock);
            if (conforms) {
                if (guard.guarded)
                    summary.guardedLines[access->file].insert(
                        access->line);
                continue;
            }
            // Messages built with += to dodge a GCC 12 -Wrestrict
            // false positive on literal + rvalue-string concatenation.
            if (access->isWrite) {
                std::string message = "'";
                message += displayName(object);
                message += "' written without its usual guard '";
                message += displayName(guard.lock);
                message += "' (";
                message += std::to_string(guard.lockedWrites);
                message += " of ";
                message += std::to_string(guard.totalWrites);
                message += " writes hold it)";
                report(findings, Rule::L1, access->file, access->line,
                       message);
            } else if (guard.guarded) {
                std::string message = "'";
                message += displayName(object);
                message += "' read without the guard '";
                message += displayName(guard.lock);
                message += "' that protects its writes";
                report(findings, Rule::L1, access->file, access->line,
                       message);
            }
        }
    }

    /* ---- L2: lock-order inversions ----------------------------------- */

    std::map<std::string, std::set<std::string>> graph;
    for (const LockOrderEdge *edge : edges)
        graph[edge->first].insert(edge->second);

    std::set<std::pair<std::string, std::string>> reported;
    for (const LockOrderEdge *edge : edges) {
        if (!reported.insert({edge->first, edge->second}).second)
            continue; // one finding per distinct ordered pair
        if (!reaches(graph, edge->second, edge->first))
            continue;
        std::string message = "'";
        message += displayName(edge->second);
        message += "' acquired while '";
        message += displayName(edge->first);
        message += "' is held, but the opposite order exists elsewhere "
                   "(deadlock window)";
        report(findings, Rule::L2, edge->file, edge->line, message);
    }

    /* ---- L3: guarded-address escapes --------------------------------- */

    for (const EscapeSite *escape : escapes) {
        const auto guard = summary.guards.find(escape->object);
        if (guard == summary.guards.end() || !guard->second.guarded)
            continue;
        if (holds(escape->locksHeld, guard->second.lock))
            continue;
        std::string message = "address of '";
        message += displayName(escape->object);
        message += "' escapes without its guard '";
        message += displayName(guard->second.lock);
        message += "'";
        report(findings, Rule::L3, escape->file, escape->line, message);
    }

    return summary;
}

} // namespace icheck::lint
