#ifndef ICHECK_LINT_TOKEN_HPP
#define ICHECK_LINT_TOKEN_HPP

/**
 * @file
 * Token model for icheck-lint's single-purpose C++ lexer.
 *
 * The linter reasons about token streams, never raw text: string
 * literals, character literals, and comments can all contain text that
 * looks like code, and matching them as code is the classic source of
 * false lint findings. Comments are lexed into a separate side channel
 * because two rule inputs live there (suppression directives and to-do
 * markers) while every code rule must ignore them.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace icheck::lint
{

/** Classification of one lexed token. */
enum class TokenKind
{
    Identifier,   ///< Identifiers and keywords (no keyword table needed).
    Number,       ///< Numeric literal, including ' separators.
    String,       ///< String literal (ordinary or raw), text excluded.
    CharLit,      ///< Character literal.
    Punct,        ///< Operator or punctuator, multi-char ops kept whole.
    Preprocessor, ///< One whole directive, continuations folded in.
};

/** One token of the input, with the 1-based line it starts on. */
struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    int line = 0;
};

/** One comment, kept out of the code token stream. */
struct Comment
{
    std::string text; ///< Body without the // or slash-star delimiters.
    int line = 0;     ///< 1-based first line.
    int endLine = 0;  ///< 1-based last line of the (merged) comment.

    /** Run of // lines eligible to merge with a following // line. */
    bool mergeable = false;
    /** Code tokens seen before this comment (merge guard). */
    std::size_t tokensBefore = 0;
};

/** Result of lexing one translation unit. */
struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

} // namespace icheck::lint

#endif // ICHECK_LINT_TOKEN_HPP
