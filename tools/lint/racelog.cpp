#include "racelog.hpp"

#include <cstdlib>
#include <istream>

namespace icheck::lint
{

namespace
{

/**
 * Value of `"key":"…"` inside @p text, or "" if absent. The race-log
 * writer escapes only backslash/quote/control characters; unescaping
 * the first two covers every path it can emit.
 */
std::string
stringField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return "";
    std::string value;
    for (std::size_t i = at + needle.size(); i < text.size(); ++i) {
        if (text[i] == '\\' && i + 1 < text.size()) {
            value += text[++i];
            continue;
        }
        if (text[i] == '"')
            return value;
        value += text[i];
    }
    return "";
}

/** Value of `"key":123`, or 0. */
int
intField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return 0;
    return std::atoi(text.c_str() + at + needle.size());
}

/** The braced object after `"key":{`, or "" if absent. */
std::string
objectField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":{";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t open = at + needle.size() - 1;
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            return text.substr(open, i - open + 1);
    }
    return "";
}

bool
parseEndpoint(const std::string &object, RaceEndpoint &endpoint)
{
    if (object.empty())
        return false;
    endpoint.file = stringField(object, "file");
    endpoint.line = intField(object, "line");
    endpoint.tid = intField(object, "tid");
    return !endpoint.file.empty() && endpoint.line > 0;
}

} // namespace

std::vector<DynamicRace>
readRaceLog(std::istream &in)
{
    std::vector<DynamicRace> races;
    std::string line;
    while (std::getline(in, line)) {
        DynamicRace race;
        race.app = stringField(line, "app");
        race.kind = stringField(line, "kind");
        race.symbol = stringField(line, "symbol");
        const bool first_ok =
            parseEndpoint(objectField(line, "first"), race.first);
        const bool second_ok =
            parseEndpoint(objectField(line, "second"), race.second);
        // A record is useful once either endpoint carries attribution;
        // unattributed endpoints keep line 0 and never match anything.
        if (!race.kind.empty() && (first_ok || second_ok))
            races.push_back(std::move(race));
    }
    return races;
}

bool
pathsMatch(const std::string &a, const std::string &b)
{
    if (a.empty() || b.empty())
        return false;
    const std::string &longer = a.size() >= b.size() ? a : b;
    const std::string &shorter = a.size() >= b.size() ? b : a;
    if (longer.size() == shorter.size())
        return longer == shorter;
    if (longer.compare(longer.size() - shorter.size(), shorter.size(),
                       shorter) != 0)
        return false;
    // Component boundary: "apps_fp.cpp" must not match "x_apps_fp.cpp".
    return longer[longer.size() - shorter.size() - 1] == '/';
}

} // namespace icheck::lint
