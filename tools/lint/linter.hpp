#ifndef ICHECK_LINT_LINTER_HPP
#define ICHECK_LINT_LINTER_HPP

/**
 * @file
 * The linting driver: runs the rules over sources, applies
 * suppression comments of the form `icheck-lint: allow(D1): reason`
 * (any rule id in place of D1), and matches findings against a
 * committed baseline.
 *
 * Linting is two-phase. Phase 1 runs per file — lexing, the pattern
 * rules, symbol-table construction, and lockset fact extraction — and
 * fans out across a work-stealing pool when config.jobs permits; results
 * are merged in path order, so output is identical for any job count.
 * Phase 2 aggregates the lockset facts of every TU, infers the
 * guarded-by relation, and emits the L-rules; when a dynamic race log
 * is supplied, it also cross-checks (promoting confirmed findings to
 * error severity and emitting X1 contradictions).
 *
 * Baseline entries are keyed on (rule, file, hash of the trimmed source
 * line), not on line numbers, so unrelated edits above a baselined
 * finding do not invalidate it. The build's `lint` test enforces zero
 * findings that are neither suppressed nor baselined.
 */

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "finding.hpp"
#include "lockset.hpp"
#include "racelog.hpp"
#include "rules.hpp"

namespace icheck::lint
{

/** A finding paired with its drift-tolerant baseline identity. */
struct KeyedFinding
{
    Finding finding;
    std::string lineText; ///< Trimmed text of the offending line.
    std::string key;      ///< "<rule>\t<file>\t<fnv64 of lineText>".
};

/** One in-memory source for lintSources. */
struct FileInput
{
    std::string path;
    std::string source;
};

/** Outcome of linting a path set. */
struct LintRun
{
    std::vector<KeyedFinding> findings;
    int filesScanned = 0;
    LocksetSummary lockset; ///< What the guard inference believed.
};

/**
 * Lint a set of in-memory sources as one program: per-file rules plus
 * the cross-TU lockset analysis. Findings covered by a well-formed
 * suppression on the same or preceding line are dropped; malformed
 * suppressions become H4. @p races (a parsed --race-log) promotes
 * dynamically-confirmed findings and adds X1 contradictions. Findings
 * come back grouped by file (input order), sorted by line within each.
 */
LintRun lintSources(const std::vector<FileInput> &files,
                    const LintConfig &config,
                    const std::vector<DynamicRace> &races = {});

/** Single-source convenience wrapper around lintSources. */
std::vector<KeyedFinding> lintSource(const std::string &path,
                                     const std::string &source,
                                     const LintConfig &config);

/**
 * Lint every C++ source under @p paths (files or directories,
 * recursively; deterministic order). Unreadable paths are fatal.
 */
LintRun lintPaths(const std::vector<std::string> &paths,
                  const LintConfig &config,
                  const std::vector<DynamicRace> &races = {});

/** Baseline as multiset: key -> remaining match budget. */
using Baseline = std::map<std::string, int>;

/** Parse a baseline stream (comments and blank lines ignored). */
Baseline readBaseline(std::istream &in);

/** Serialize @p findings as a baseline, sorted, with a header. */
void writeBaseline(std::ostream &out,
                   const std::vector<KeyedFinding> &findings);

/**
 * Remove findings whose key has remaining budget in @p baseline,
 * consuming budget per match. What remains is "new" findings.
 */
std::vector<KeyedFinding> subtractBaseline(
    const std::vector<KeyedFinding> &findings, Baseline baseline);

/** FNV-1a 64-bit, the baseline's line-content hash. */
std::uint64_t fnv1a64(const std::string &text);

} // namespace icheck::lint

#endif // ICHECK_LINT_LINTER_HPP
