#include "sarif.hpp"

#include <cstdio>

namespace icheck::lint
{

namespace
{

/** A finding's stable fingerprint: the fnv1a64 of its baseline key. */
std::string
fingerprint(const KeyedFinding &finding)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(finding.key)));
    return buffer;
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':  escaped += "\\\""; break;
          case '\\': escaped += "\\\\"; break;
          case '\n': escaped += "\\n"; break;
          case '\r': escaped += "\\r"; break;
          case '\t': escaped += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                escaped += buffer;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

std::string
renderSarif(const std::vector<KeyedFinding> &findings)
{
    std::string out;
    out += "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
           "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
           "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
           "\"name\":\"icheck-lint\","
           "\"informationUri\":\"https://example.invalid/icheck-lint\","
           "\"version\":\"1.0.0\",\"rules\":[";
    bool first = true;
    for (const RuleInfo &info : ruleRegistry()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"id\":\"";
        out += info.id;
        out += "\",\"shortDescription\":{\"text\":\"";
        out += jsonEscape(info.summary);
        out += "\"},\"help\":{\"text\":\"";
        out += jsonEscape(info.hint);
        out += "\"}}";
    }
    out += "]}},\"results\":[";
    first = true;
    for (const KeyedFinding &entry : findings) {
        if (!first)
            out += ',';
        first = false;
        const Finding &finding = entry.finding;
        out += "{\"ruleId\":\"";
        out += ruleInfo(finding.rule).id;
        out += "\",\"level\":\"";
        out += severityName(finding.severity);
        out += "\",\"message\":{\"text\":\"";
        out += jsonEscape(finding.message);
        out += "\"},\"locations\":[{\"physicalLocation\":{"
               "\"artifactLocation\":{\"uri\":\"";
        out += jsonEscape(finding.file);
        out += "\"},\"region\":{\"startLine\":";
        out += std::to_string(finding.line > 0 ? finding.line : 1);
        out += "}}}],\"partialFingerprints\":{\"icheckLintKey/v1\":\"";
        out += fingerprint(entry);
        out += "\"}}";
    }
    out += "]}]}";
    return out;
}

} // namespace icheck::lint
