#ifndef ICHECK_LINT_LEXER_HPP
#define ICHECK_LINT_LEXER_HPP

/**
 * @file
 * Minimal C++ lexer for icheck-lint.
 *
 * Handles exactly what the rules need: identifiers, numbers, string and
 * character literals (including raw strings), multi-character operators,
 * preprocessor directives (folded across backslash continuations), and
 * line/block comments routed to a side channel. It does not expand
 * macros or track includes; the rules are written to tolerate that.
 */

#include <string>

#include "token.hpp"

namespace icheck::lint
{

/** Lex @p source into code tokens plus a comment side channel. */
LexResult lex(const std::string &source);

} // namespace icheck::lint

#endif // ICHECK_LINT_LEXER_HPP
