#ifndef ICHECK_LINT_SARIF_HPP
#define ICHECK_LINT_SARIF_HPP

/**
 * @file
 * SARIF 2.1.0 output for icheck-lint.
 *
 * One run, one tool (driver "icheck-lint"), every rule of the registry
 * under tool.driver.rules, and one result per reported finding. The
 * drift-tolerant baseline key doubles as the result's partial
 * fingerprint, so SARIF consumers (code-scanning UIs) track a finding
 * across unrelated edits exactly like the baseline does.
 */

#include <string>
#include <vector>

#include "linter.hpp"

namespace icheck::lint
{

/** Escape for a JSON string body (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &text);

/** Render @p findings as a complete SARIF 2.1.0 document. */
std::string renderSarif(const std::vector<KeyedFinding> &findings);

} // namespace icheck::lint

#endif // ICHECK_LINT_SARIF_HPP
