/**
 * @file
 * Load generator for the `icheck serve` campaign daemon: replay a
 * deterministic mix of check requests across several apps and seeds,
 * measure sustained throughput and latency, and emit one
 * machine-readable result file (default BENCH_service.json).
 *
 * Usage: loadgen [out.json] [--quick]
 *                [--requests N] [--clients C] [--runs N]
 *                [--apps a,b,c] [--seeds K] [--input dev|medium|large]
 *                [--jobs N] [--dispatchers N] [--store FILE]
 *                [--connect SOCKET | --spawn ICHECK_BIN]
 *                [--verify] [--baseline <json>]
 *
 * Three transports:
 *   (default)   in-process — drive a Service directly from C client
 *               threads; the service-layer number, no transport noise;
 *   --connect   attach to a daemon already listening on a Unix socket;
 *   --spawn     fork `ICHECK_BIN serve --socket <tmp>`, run the traffic
 *               against it, drain it, and reap it.
 *
 * The mix cycles apps x seeds, so once every combination has run, later
 * requests repeat earlier work and the daemon's seen-state set answers
 * from cache — the reported dedup hit rate measures exactly that.
 *
 * --verify re-runs every distinct request through the one-shot campaign
 * path in-process and fails (exit 1) unless the daemon's report bytes
 * are identical — the acceptance gate for the serve path.
 *
 * --quick shrinks the mix for CI smoke runs. --baseline embeds a
 * previous output plus speedups (run_bench.sh pins one under
 * bench/baselines/service_main.json). Numbers are host-specific.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/app_registry.hpp"
#include "apps/scales.hpp"
#include "check/report_json.hpp"
#include "runtime/parallel_driver.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

using namespace icheck;

namespace
{

using Clock = std::chrono::steady_clock;

/** The metric keys, in emission order. */
const std::vector<std::string> kKeys = {
    "requestsPerSec",
    "p50LatencyMs",
    "p99LatencyMs",
    "dedupHitRate",
};

struct Metrics
{
    double values[4] = {};

    double &operator[](std::size_t i) { return values[i]; }
    double operator[](std::size_t i) const { return values[i]; }
};

/** One request of the generated mix. */
struct MixEntry
{
    std::string line;      ///< The JSONL request.
    std::string app;       ///< For the verify pass.
    std::uint64_t seed = 0;
    std::size_t combo = 0; ///< Index into the distinct app x seed set.
};

/** A synchronous request/response channel to the daemon under test. */
using Roundtrip = std::function<std::string(const std::string &line)>;

std::string
renderCheckLine(const std::string &id, const std::string &app, int runs,
                std::uint64_t seed, const std::string &input)
{
    return "{\"id\":\"" + id + "\",\"op\":\"check\",\"app\":\"" + app +
           "\",\"runs\":" + std::to_string(runs) +
           ",\"seed\":" + std::to_string(seed) + ",\"input\":\"" + input +
           "\"}";
}

/**
 * Build the request mix: requests cycle through apps x seeds, so entry
 * i >= apps*seeds repeats the work of entry i % (apps*seeds).
 */
std::vector<MixEntry>
buildMix(const std::vector<std::string> &apps, int requests, int runs,
         int seeds, const std::string &input)
{
    std::vector<MixEntry> mix;
    mix.reserve(static_cast<std::size_t>(requests));
    const std::size_t combos = apps.size() * static_cast<std::size_t>(seeds);
    for (int i = 0; i < requests; ++i) {
        const std::size_t combo = static_cast<std::size_t>(i) % combos;
        MixEntry entry;
        entry.app = apps[combo % apps.size()];
        entry.seed = 1000 + combo / apps.size();
        entry.combo = combo;
        entry.line = renderCheckLine("lg-" + std::to_string(i), entry.app,
                                     runs, entry.seed, input);
        mix.push_back(std::move(entry));
    }
    return mix;
}

/** Connect to a Unix stream socket; -1 on failure. */
int
connectSocket(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Write @p line + '\n', then read one '\n'-terminated response. */
std::string
socketRoundtrip(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    std::size_t written = 0;
    while (written < framed.size()) {
        const ssize_t n = ::write(fd, framed.data() + written,
                                  framed.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return {};
        }
        written += static_cast<std::size_t>(n);
    }
    std::string response;
    char byte = 0;
    while (true) {
        const ssize_t n = ::read(fd, &byte, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return {};
        }
        if (n == 0 || byte == '\n')
            return response;
        response.push_back(byte);
    }
}

apps::InputScale
scaleOf(const std::string &input)
{
    if (input == "dev")
        return apps::InputScale::Dev;
    if (input == "large")
        return apps::InputScale::Large;
    return apps::InputScale::Medium;
}

/**
 * Run the campaign of @p entry through the one-shot path and return the
 * canonical report line — the bytes the daemon must have embedded.
 */
std::string
oneShotReport(const MixEntry &entry, int runs, const std::string &input)
{
    const apps::AppInfo *app = apps::tryFindApp(entry.app);
    if (app == nullptr)
        return {};
    check::DriverConfig cfg;
    cfg.runs = runs;
    cfg.baseSchedSeed = entry.seed;
    cfg.ignores = app->ignores;
    runtime::CampaignOptions options;
    options.jobs = 1;
    const check::DriverReport report = runtime::runCampaign(
        cfg, apps::scaledFactory(app->name, scaleOf(input)), options);
    return check::renderReportJson(report);
}

/** Extract the embedded "report":{...} object from an ok response. */
std::string
embeddedReport(const std::string &response)
{
    const std::string needle = "\"report\":";
    const std::size_t pos = response.find(needle);
    if (pos == std::string::npos || response.empty() ||
        response.back() != '}')
        return {};
    // The report is the final member, so it ends one byte before the
    // response's closing brace.
    return response.substr(pos + needle.size(),
                           response.size() - 1 - (pos + needle.size()));
}

std::optional<Metrics>
readBaseline(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);

    Metrics base;
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        const std::string needle = "\"" + kKeys[i] + "\":";
        const std::size_t pos = text.find(needle);
        if (pos == std::string::npos) {
            std::fprintf(stderr, "baseline %s lacks %s\n", path.c_str(),
                         kKeys[i].c_str());
            return std::nullopt;
        }
        base[i] = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    return base;
}

void
emitBlock(std::FILE *out, const char *name, const Metrics &m,
          const char *fmt)
{
    std::fprintf(out, "  \"%s\": {", name);
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": ", i == 0 ? "" : ",",
                     kKeys[i].c_str());
        std::fprintf(out, fmt, m[i]);
    }
    std::fprintf(out, "\n  }");
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

double
percentile(std::vector<double> sorted, double fraction)
{
    if (sorted.empty())
        return 0.0;
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(sorted.size() - 1));
    return sorted[index];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_service.json";
    std::string apps_csv = "radix,fft,lu";
    std::string input = "dev";
    std::string baseline_path;
    std::string connect_path;
    std::string spawn_bin;
    std::string store_path;
    int requests = 96;
    int clients = 4;
    int runs = 6;
    int seeds = 2;
    int jobs = 0;
    int dispatchers = 2;
    bool quick = false;
    bool verify = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--requests" && i + 1 < argc) {
            requests = std::atoi(argv[++i]);
        } else if (arg == "--clients" && i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else if (arg == "--runs" && i + 1 < argc) {
            runs = std::atoi(argv[++i]);
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::atoi(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (arg == "--dispatchers" && i + 1 < argc) {
            dispatchers = std::atoi(argv[++i]);
        } else if (arg == "--apps" && i + 1 < argc) {
            apps_csv = argv[++i];
        } else if (arg == "--input" && i + 1 < argc) {
            input = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--connect" && i + 1 < argc) {
            connect_path = argv[++i];
        } else if (arg == "--spawn" && i + 1 < argc) {
            spawn_bin = argv[++i];
        } else if (arg == "--store" && i + 1 < argc) {
            store_path = argv[++i];
        } else if (arg.rfind("--", 0) != 0) {
            out_path = arg;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return 2;
        }
    }
    if (quick) {
        requests = std::min(requests, 18);
        clients = std::min(clients, 2);
    }
    const std::vector<std::string> app_names = splitCsv(apps_csv);
    if (app_names.empty() || requests < 1 || clients < 1 || runs < 2 ||
        seeds < 1) {
        std::fprintf(stderr, "invalid mix parameters\n");
        return 2;
    }
    if (!connect_path.empty() && !spawn_bin.empty()) {
        std::fprintf(stderr,
                     "--connect and --spawn are mutually exclusive\n");
        return 2;
    }

    const std::vector<MixEntry> mix =
        buildMix(app_names, requests, runs, seeds, input);

    // --- Set up the transport. ---------------------------------------
    std::unique_ptr<service::Service> local;
    pid_t daemon_pid = -1;
    std::string socket_path = connect_path;
    const char *mode = "in-process";

    if (!spawn_bin.empty()) {
        mode = "spawn";
        socket_path = "loadgen-" + std::to_string(::getpid()) + ".sock";
        daemon_pid = ::fork();
        if (daemon_pid == 0) {
            std::vector<std::string> daemon_args = {
                spawn_bin,       "serve",
                "--socket",      socket_path,
                "--jobs",        std::to_string(jobs),
                "--dispatchers", std::to_string(dispatchers),
            };
            if (!store_path.empty()) {
                daemon_args.push_back("--store");
                daemon_args.push_back(store_path);
            }
            std::vector<char *> exec_argv;
            for (std::string &daemon_arg : daemon_args)
                exec_argv.push_back(daemon_arg.data());
            exec_argv.push_back(nullptr);
            ::execv(spawn_bin.c_str(), exec_argv.data());
            std::fprintf(stderr, "cannot exec %s\n", spawn_bin.c_str());
            std::_Exit(3);
        }
        if (daemon_pid < 0) {
            std::fprintf(stderr, "fork failed\n");
            return 3;
        }
        // Wait for the daemon's socket to accept.
        bool up = false;
        for (int attempt = 0; attempt < 200 && !up; ++attempt) {
            const int fd = connectSocket(socket_path);
            if (fd >= 0) {
                ::close(fd);
                up = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
        if (!up) {
            std::fprintf(stderr, "spawned daemon never came up\n");
            ::kill(daemon_pid, SIGKILL);
            return 3;
        }
    } else if (connect_path.empty()) {
        service::ServiceConfig cfg;
        cfg.jobs = jobs;
        cfg.dispatchers = dispatchers;
        cfg.storePath = store_path;
        local = std::make_unique<service::Service>(cfg);
    } else {
        mode = "connect";
    }

    // Per-client channels: in-process clients call the service
    // directly; socket clients each own one connection.
    std::vector<int> client_fds;
    std::vector<Roundtrip> channels;
    for (int c = 0; c < clients; ++c) {
        if (local != nullptr) {
            channels.emplace_back([&local](const std::string &line) {
                return local->handleLine(line);
            });
            continue;
        }
        const int fd = connectSocket(socket_path);
        if (fd < 0) {
            std::fprintf(stderr, "cannot connect to %s\n",
                         socket_path.c_str());
            return 3;
        }
        client_fds.push_back(fd);
        channels.emplace_back([fd](const std::string &line) {
            return socketRoundtrip(fd, line);
        });
    }

    // --- Traffic phase. ----------------------------------------------
    std::atomic<std::size_t> next{0};
    std::vector<std::string> responses(mix.size());
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<int> failures{0};

    const auto start = Clock::now();
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= mix.size())
                    return;
                const auto sent = Clock::now();
                std::string response = channels[c](mix[i].line);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - sent)
                        .count();
                latencies[static_cast<std::size_t>(c)].push_back(ms);
                if (response.find("\"status\":\"ok\"") ==
                    std::string::npos)
                    failures.fetch_add(1, std::memory_order_relaxed);
                responses[i] = std::move(response);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    if (failures.load() != 0) {
        std::fprintf(stderr, "%d of %zu requests did not return ok\n",
                     failures.load(), mix.size());
        return 1;
    }

    // --- Stats + dedup hit rate from the daemon itself. --------------
    const std::string stats_response =
        channels[0]("{\"id\":\"lg-stats\",\"op\":\"stats\"}");
    double dedup_rate = 0.0;
    if (const auto parsed = service::parseJson(stats_response)) {
        if (const auto *stats = parsed->find("stats"))
            if (const auto *rate = stats->find("dedupHitRate"))
                dedup_rate = rate->asDouble();
    }

    // --- Verify phase: daemon bytes vs the one-shot path. ------------
    bool verified = true;
    if (verify) {
        std::vector<bool> checked(app_names.size() *
                                  static_cast<std::size_t>(seeds));
        for (std::size_t i = 0; i < mix.size(); ++i) {
            if (checked[mix[i].combo])
                continue;
            checked[mix[i].combo] = true;
            const std::string expected =
                oneShotReport(mix[i], runs, input);
            const std::string got = embeddedReport(responses[i]);
            if (expected.empty() || got != expected) {
                std::fprintf(stderr,
                             "report mismatch for %s seed %llu\n"
                             "  one-shot: %s\n  daemon:   %s\n",
                             mix[i].app.c_str(),
                             static_cast<unsigned long long>(mix[i].seed),
                             expected.c_str(), got.c_str());
                verified = false;
            }
        }
    }

    // --- Tear down the transport. ------------------------------------
    if (daemon_pid > 0)
        channels[0]("{\"id\":\"lg-drain\",\"op\":\"drain\"}");
    for (const int fd : client_fds)
        ::close(fd);
    if (daemon_pid > 0) {
        int status = 0;
        ::waitpid(daemon_pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "daemon exited abnormally\n");
            verified = false;
        }
    }

    // --- Metrics. ----------------------------------------------------
    std::vector<double> all_latencies;
    for (const auto &client_latencies : latencies)
        all_latencies.insert(all_latencies.end(),
                             client_latencies.begin(),
                             client_latencies.end());
    std::sort(all_latencies.begin(), all_latencies.end());

    Metrics cur;
    cur[0] = wall > 0.0 ? static_cast<double>(mix.size()) / wall : 0.0;
    cur[1] = percentile(all_latencies, 0.50);
    cur[2] = percentile(all_latencies, 0.99);
    cur[3] = dedup_rate;

    std::optional<Metrics> base;
    if (!baseline_path.empty()) {
        base = readBaseline(baseline_path);
        if (!base.has_value())
            return 1;
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"loadgen\",\n");
    std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(out, "  \"mode\": \"%s\",\n", mode);
    std::fprintf(out, "  \"requests\": %d,\n", requests);
    std::fprintf(out, "  \"clients\": %d,\n", clients);
    std::fprintf(out, "  \"runsPerRequest\": %d,\n", runs);
    std::fprintf(out, "  \"apps\": \"%s\",\n", apps_csv.c_str());
    std::fprintf(out, "  \"seedsPerApp\": %d,\n", seeds);
    std::fprintf(out, "  \"input\": \"%s\",\n", input.c_str());
    std::fprintf(out, "  \"verified\": %s,\n",
                 verify ? (verified ? "true" : "false") : "null");
    std::fprintf(out, "  \"hardwareConcurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    emitBlock(out, "current", cur, "%.4f");
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.4f");
        Metrics speedup;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            speedup[i] =
                (*base)[i] > 0.0 ? cur[i] / (*base)[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "speedupVsMain", speedup, "%.2f");
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);

    std::printf("%zu requests in %.2fs: %.1f req/s, p50 %.2fms, "
                "p99 %.2fms, dedup %.2f%s\n",
                mix.size(), wall, cur[0], cur[1], cur[2], cur[3],
                verify ? (verified ? ", verified" : ", VERIFY FAILED")
                       : "");
    std::printf("wrote %s\n", out_path.c_str());
    return verified ? 0 : 1;
}
