/**
 * @file
 * Load generator for the `icheck serve` campaign daemon: replay a
 * deterministic mix of check requests across several apps and seeds,
 * measure sustained throughput and latency, and emit one
 * machine-readable result file (default BENCH_service.json).
 *
 * Usage: loadgen [out.json] [--quick]
 *                [--requests N] [--clients C] [--runs N]
 *                [--apps a,b,c] [--seeds K] [--input dev|medium|large]
 *                [--jobs N] [--dispatchers N] [--store FILE]
 *                [--connect SOCKET | --spawn ICHECK_BIN]
 *                [--fleet N] [--ship sync|async] [--kill-one]
 *                [--verify] [--baseline <json>]
 *
 * Three transports:
 *   (default)   in-process — drive a Service directly from C client
 *               threads; the service-layer number, no transport noise;
 *   --connect   attach to a daemon already listening on a Unix socket;
 *   --spawn     fork `ICHECK_BIN serve --socket <tmp>`, run the traffic
 *               against it, drain it, and reap it.
 *
 * --fleet N (requires --spawn) benchmarks the scale-out path instead:
 * it measures a direct single backend, then sweeps router-fronted
 * fleets over backend counts {1,2,4} up to N, reporting aggregate
 * throughput/latency, the router's p50 overhead vs direct, and the
 * per-backend request balance, into BENCH_fleet.json. --kill-one
 * SIGKILLs one backend halfway through the headline burst and requires
 * every response to still arrive ok (the router's replica + failover
 * path). --ship picks the fleet's replication mode.
 *
 * The mix cycles apps x seeds, so once every combination has run, later
 * requests repeat earlier work and the daemon's seen-state set answers
 * from cache — the reported dedup hit rate measures exactly that.
 *
 * --verify re-runs every distinct request through the one-shot campaign
 * path in-process and fails (exit 1) unless the daemon's report bytes
 * are identical — the acceptance gate for the serve path.
 *
 * --quick shrinks the mix for CI smoke runs. --baseline embeds a
 * previous output plus speedups (run_bench.sh pins one under
 * bench/baselines/service_main.json). Numbers are host-specific.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/app_registry.hpp"
#include "apps/scales.hpp"
#include "check/report_json.hpp"
#include "runtime/parallel_driver.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

using namespace icheck;

namespace
{

using Clock = std::chrono::steady_clock;

/** The metric keys, in emission order. */
const std::vector<std::string> kKeys = {
    "requestsPerSec",
    "p50LatencyMs",
    "p99LatencyMs",
    "dedupHitRate",
};

struct Metrics
{
    double values[4] = {};

    double &operator[](std::size_t i) { return values[i]; }
    double operator[](std::size_t i) const { return values[i]; }
};

/** One request of the generated mix. */
struct MixEntry
{
    std::string line;      ///< The JSONL request.
    std::string app;       ///< For the verify pass.
    std::uint64_t seed = 0;
    std::size_t combo = 0; ///< Index into the distinct app x seed set.
};

/** A synchronous request/response channel to the daemon under test. */
using Roundtrip = std::function<std::string(const std::string &line)>;

std::string
renderCheckLine(const std::string &id, const std::string &app, int runs,
                std::uint64_t seed, const std::string &input)
{
    return "{\"id\":\"" + id + "\",\"op\":\"check\",\"app\":\"" + app +
           "\",\"runs\":" + std::to_string(runs) +
           ",\"seed\":" + std::to_string(seed) + ",\"input\":\"" + input +
           "\"}";
}

/**
 * Build the request mix: requests cycle through apps x seeds, so entry
 * i >= apps*seeds repeats the work of entry i % (apps*seeds).
 */
std::vector<MixEntry>
buildMix(const std::vector<std::string> &apps, int requests, int runs,
         int seeds, const std::string &input)
{
    std::vector<MixEntry> mix;
    mix.reserve(static_cast<std::size_t>(requests));
    const std::size_t combos = apps.size() * static_cast<std::size_t>(seeds);
    for (int i = 0; i < requests; ++i) {
        const std::size_t combo = static_cast<std::size_t>(i) % combos;
        MixEntry entry;
        entry.app = apps[combo % apps.size()];
        entry.seed = 1000 + combo / apps.size();
        entry.combo = combo;
        entry.line = renderCheckLine("lg-" + std::to_string(i), entry.app,
                                     runs, entry.seed, input);
        mix.push_back(std::move(entry));
    }
    return mix;
}

/** Connect to a Unix stream socket; -1 on failure. */
int
connectSocket(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Write @p line + '\n', then read one '\n'-terminated response. */
std::string
socketRoundtrip(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    std::size_t written = 0;
    while (written < framed.size()) {
        // MSG_NOSIGNAL: a daemon/router we deliberately SIGKILL must
        // surface as EPIPE here, not SIGPIPE the load generator.
        const ssize_t n = ::send(fd, framed.data() + written,
                                 framed.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return {};
        }
        written += static_cast<std::size_t>(n);
    }
    std::string response;
    char byte = 0;
    while (true) {
        const ssize_t n = ::read(fd, &byte, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return {};
        }
        if (n == 0 || byte == '\n')
            return response;
        response.push_back(byte);
    }
}

apps::InputScale
scaleOf(const std::string &input)
{
    if (input == "dev")
        return apps::InputScale::Dev;
    if (input == "large")
        return apps::InputScale::Large;
    return apps::InputScale::Medium;
}

/**
 * Run the campaign of @p entry through the one-shot path and return the
 * canonical report line — the bytes the daemon must have embedded.
 */
std::string
oneShotReport(const MixEntry &entry, int runs, const std::string &input)
{
    const apps::AppInfo *app = apps::tryFindApp(entry.app);
    if (app == nullptr)
        return {};
    check::DriverConfig cfg;
    cfg.runs = runs;
    cfg.baseSchedSeed = entry.seed;
    cfg.ignores = app->ignores;
    runtime::CampaignOptions options;
    options.jobs = 1;
    const check::DriverReport report = runtime::runCampaign(
        cfg, apps::scaledFactory(app->name, scaleOf(input)), options);
    return check::renderReportJson(report);
}

/** Extract the embedded "report":{...} object from an ok response. */
std::string
embeddedReport(const std::string &response)
{
    const std::string needle = "\"report\":";
    const std::size_t pos = response.find(needle);
    if (pos == std::string::npos || response.empty() ||
        response.back() != '}')
        return {};
    // The report is the final member, so it ends one byte before the
    // response's closing brace.
    return response.substr(pos + needle.size(),
                           response.size() - 1 - (pos + needle.size()));
}

std::optional<Metrics>
readBaseline(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);

    // Anchor at the "current" block: fleet baselines carry the same
    // metric keys earlier in the file (backendSweep entries, the
    // direct block), and the first occurrence is the wrong run.
    std::size_t from = text.find("\"current\":");
    if (from == std::string::npos)
        from = 0;
    Metrics base;
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        const std::string needle = "\"" + kKeys[i] + "\":";
        const std::size_t pos = text.find(needle, from);
        if (pos == std::string::npos) {
            std::fprintf(stderr, "baseline %s lacks %s\n", path.c_str(),
                         kKeys[i].c_str());
            return std::nullopt;
        }
        base[i] = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    return base;
}

void
emitBlock(std::FILE *out, const char *name, const Metrics &m,
          const char *fmt)
{
    std::fprintf(out, "  \"%s\": {", name);
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": ", i == 0 ? "" : ",",
                     kKeys[i].c_str());
        std::fprintf(out, fmt, m[i]);
    }
    std::fprintf(out, "\n  }");
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

double
percentile(std::vector<double> sorted, double fraction)
{
    if (sorted.empty())
        return 0.0;
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(sorted.size() - 1));
    return sorted[index];
}

/** Fork-exec @p args (argv[0] is the binary); -1 on fork failure. */
pid_t
spawnProcess(const std::vector<std::string> &args)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::vector<std::string> copy = args;
    std::vector<char *> exec_argv;
    for (std::string &arg : copy)
        exec_argv.push_back(arg.data());
    exec_argv.push_back(nullptr);
    ::execv(copy[0].c_str(), exec_argv.data());
    std::fprintf(stderr, "cannot exec %s\n", copy[0].c_str());
    std::_Exit(3);
}

/** Poll-connect until @p path accepts (about five seconds). */
bool
awaitSocket(const std::string &path)
{
    for (int attempt = 0; attempt < 200; ++attempt) {
        const int fd = connectSocket(path);
        if (fd >= 0) {
            ::close(fd);
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
}

/** One-off request/response against a Unix socket daemon. */
std::string
oneShotRequest(const std::string &socket, const std::string &line)
{
    const int fd = connectSocket(socket);
    if (fd < 0)
        return {};
    std::string response = socketRoundtrip(fd, line);
    ::close(fd);
    return response;
}

/** A spawned router-fronted fleet under test. */
struct Fleet
{
    std::vector<pid_t> backendPids;
    std::vector<std::string> backendSockets;
    pid_t routerPid = -1;
    std::string routerSocket;
};

void
killFleet(const Fleet &fleet)
{
    for (const pid_t pid : fleet.backendPids)
        if (pid > 0)
            ::kill(pid, SIGKILL);
    if (fleet.routerPid > 0)
        ::kill(fleet.routerPid, SIGKILL);
    for (const pid_t pid : fleet.backendPids) {
        int status = 0;
        if (pid > 0)
            ::waitpid(pid, &status, 0);
    }
    if (fleet.routerPid > 0) {
        int status = 0;
        ::waitpid(fleet.routerPid, &status, 0);
    }
    for (const std::string &socket : fleet.backendSockets)
        ::unlink(socket.c_str());
    ::unlink(fleet.routerSocket.c_str());
}

std::optional<Fleet>
spawnFleet(const std::string &bin, int backends, int jobs,
           int dispatchers, const std::string &ship, const char *tag)
{
    Fleet fleet;
    const std::string prefix =
        "loadgen-" + std::to_string(::getpid()) + "-" + tag;
    fleet.routerSocket = prefix + "-router.sock";
    std::vector<std::string> route_args = {
        bin, "route", "--socket", fleet.routerSocket, "--ship", ship};
    for (int b = 0; b < backends; ++b) {
        const std::string socket =
            prefix + "-b" + std::to_string(b) + ".sock";
        const pid_t pid = spawnProcess(
            {bin, "serve", "--socket", socket, "--jobs",
             std::to_string(jobs), "--dispatchers",
             std::to_string(dispatchers)});
        if (pid < 0) {
            killFleet(fleet);
            return std::nullopt;
        }
        fleet.backendPids.push_back(pid);
        fleet.backendSockets.push_back(socket);
        route_args.push_back("--backend");
        route_args.push_back("b" + std::to_string(b) + "=" + socket);
    }
    for (const std::string &socket : fleet.backendSockets) {
        if (!awaitSocket(socket)) {
            std::fprintf(stderr, "fleet backend never came up\n");
            killFleet(fleet);
            return std::nullopt;
        }
    }
    fleet.routerPid = spawnProcess(route_args);
    if (fleet.routerPid < 0 || !awaitSocket(fleet.routerSocket)) {
        std::fprintf(stderr, "fleet router never came up\n");
        killFleet(fleet);
        return std::nullopt;
    }
    return fleet;
}

/**
 * Drain the fleet through the router (which ships every backend's log
 * tail first) and reap all processes. Pids in @p killed_pids were
 * SIGKILLed deliberately and may exit abnormally.
 */
bool
drainFleet(const Fleet &fleet, const std::vector<pid_t> &killed_pids)
{
    oneShotRequest(fleet.routerSocket,
                   "{\"id\":\"lg-drain\",\"op\":\"drain\"}");
    bool clean = true;
    const auto reap = [&](pid_t pid) {
        int status = 0;
        ::waitpid(pid, &status, 0);
        const bool was_killed =
            std::find(killed_pids.begin(), killed_pids.end(), pid) !=
            killed_pids.end();
        if (!was_killed &&
            (!WIFEXITED(status) || WEXITSTATUS(status) != 0))
            clean = false;
    };
    reap(fleet.routerPid);
    for (const pid_t pid : fleet.backendPids)
        reap(pid);
    for (const std::string &socket : fleet.backendSockets)
        ::unlink(socket.c_str());
    ::unlink(fleet.routerSocket.c_str());
    if (!clean)
        std::fprintf(stderr, "fleet member exited abnormally\n");
    return clean;
}

struct BurstResult
{
    double wall = 0.0;
    std::vector<double> latencies; ///< Sorted, all clients merged.
    std::vector<std::string> responses;
    int failures = 0;
};

/**
 * Replay @p mix through @p channels from one worker thread per
 * channel. @p on_half (if set) fires exactly once, as the burst
 * passes its halfway point — the kill-one hook.
 */
BurstResult
runBurst(const std::vector<MixEntry> &mix,
         std::vector<Roundtrip> &channels,
         const std::function<void()> &on_half = {})
{
    std::atomic<std::size_t> next{0};
    std::atomic<bool> half_fired{false};
    std::vector<std::vector<double>> latencies(channels.size());
    BurstResult result;
    result.responses.resize(mix.size());
    std::atomic<int> failures{0};

    const auto start = Clock::now();
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < channels.size(); ++c) {
        workers.emplace_back([&, c] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= mix.size())
                    return;
                if (on_half && i >= mix.size() / 2 &&
                    !half_fired.exchange(true))
                    on_half();
                const auto sent = Clock::now();
                std::string response = channels[c](mix[i].line);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - sent)
                        .count();
                latencies[c].push_back(ms);
                if (response.find("\"status\":\"ok\"") ==
                    std::string::npos)
                    failures.fetch_add(1, std::memory_order_relaxed);
                result.responses[i] = std::move(response);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    result.wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.failures = failures.load();
    for (const auto &client_latencies : latencies)
        result.latencies.insert(result.latencies.end(),
                                client_latencies.begin(),
                                client_latencies.end());
    std::sort(result.latencies.begin(), result.latencies.end());
    return result;
}

Metrics
burstMetrics(const BurstResult &burst, double dedup_rate)
{
    Metrics m;
    m[0] = burst.wall > 0.0
               ? static_cast<double>(burst.responses.size()) / burst.wall
               : 0.0;
    m[1] = percentile(burst.latencies, 0.50);
    m[2] = percentile(burst.latencies, 0.99);
    m[3] = dedup_rate;
    return m;
}

/**
 * Interleaved fresh-check latency probe: fifteen never-seen
 * configurations asked one at a time, each put to the direct daemon
 * and to the single-backend fleet back-to-back (alternating which
 * side goes first), after both have finished their bursts. The
 * checks are uncontended and execution-dominated (runs is fixed at
 * 12 so each carries tens of milliseconds of real work), and because
 * a config's two measurements land microseconds apart they see the
 * same machine conditions — so the per-config router/direct ratio
 * isolates the forwarding hop, and its median cancels per-config
 * work and lone noise spikes. Two separate probe windows do not
 * work on this host: background load drifts by milliseconds between
 * them, which swamps the hop. The mixed-burst p50 is no better —
 * it sits on sub-millisecond cache hits, where scheduler jitter on
 * one contended core dominates.
 */
void
interleavedFreshProbe(const std::vector<std::string> &apps,
                      const std::string &input, Roundtrip &direct_ch,
                      Roundtrip &router_ch,
                      std::vector<double> &direct_lat,
                      std::vector<double> &router_lat)
{
    constexpr int kProbeRuns = 12;
    const auto timeOne = [&input](Roundtrip &channel, const char *side,
                                  int i, const std::string &app,
                                  std::uint64_t seed) {
        const std::string line = renderCheckLine(
            std::string("probe-") + side + "-" + std::to_string(i), app,
            kProbeRuns, seed, input);
        const auto sent = Clock::now();
        channel(line);
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         sent)
            .count();
    };
    int i = 0;
    // Seeds 9000+ never collide with the mix (seeds start at 1000).
    for (std::uint64_t seed = 9000; seed < 9005; ++seed)
        for (const std::string &app : apps) {
            if (i % 2 == 0) {
                direct_lat.push_back(
                    timeOne(direct_ch, "d", i, app, seed));
                router_lat.push_back(
                    timeOne(router_ch, "r", i, app, seed));
            } else {
                router_lat.push_back(
                    timeOne(router_ch, "r", i, app, seed));
                direct_lat.push_back(
                    timeOne(direct_ch, "d", i, app, seed));
            }
            ++i;
        }
}

/** Median of paired router/direct latency ratios; 0 when unmeasured. */
double
pairedOverhead(const std::vector<double> &router,
               const std::vector<double> &direct)
{
    std::vector<double> ratios;
    for (std::size_t i = 0; i < router.size() && i < direct.size(); ++i)
        if (direct[i] > 0.0)
            ratios.push_back(router[i] / direct[i]);
    std::sort(ratios.begin(), ratios.end());
    return percentile(ratios, 0.50);
}

/** Per-client socket channels to @p socket; empty on connect failure. */
std::vector<Roundtrip>
socketChannels(const std::string &socket, int clients,
               std::vector<int> &fds)
{
    std::vector<Roundtrip> channels;
    for (int c = 0; c < clients; ++c) {
        const int fd = connectSocket(socket);
        if (fd < 0) {
            std::fprintf(stderr, "cannot connect to %s\n",
                         socket.c_str());
            return {};
        }
        fds.push_back(fd);
        channels.emplace_back([fd](const std::string &line) {
            return socketRoundtrip(fd, line);
        });
    }
    return channels;
}

double
jsonPathDouble(const service::JsonValue &root,
               const std::vector<std::string> &path)
{
    const service::JsonValue *node = &root;
    for (const std::string &key : path) {
        node = node->find(key);
        if (node == nullptr)
            return 0.0;
    }
    return node->asDouble();
}

/** All the knobs of one `--fleet N` benchmark run. */
struct FleetBenchConfig
{
    std::string outPath;
    std::string appsCsv;
    std::string input;
    std::string baselinePath;
    std::string spawnBin;
    std::string ship;
    int backends = 0;
    int requests = 0;
    int clients = 0;
    int runs = 0;
    int seeds = 0;
    int jobs = 0;
    int dispatchers = 0;
    bool quick = false;
    bool verify = false;
    bool killOne = false;
};

/** One sweep point: the burst metrics at a given backend count. */
struct SweepPoint
{
    int backends = 0;
    Metrics metrics;
};

/**
 * The scale-out benchmark: measure a direct single backend, then
 * router-fronted fleets at backend counts {1,2,4} up to N (the
 * N-backend run is the headline). Emits BENCH_fleet.json.
 */
int
runFleetBench(const FleetBenchConfig &cfg)
{
    const std::vector<std::string> app_names = splitCsv(cfg.appsCsv);
    const std::vector<MixEntry> mix = buildMix(
        app_names, cfg.requests, cfg.runs, cfg.seeds, cfg.input);
    bool ok = true;

    // --- Direct phase: one backend, no router in the path. -----------
    const std::string direct_socket =
        "loadgen-" + std::to_string(::getpid()) + "-direct.sock";
    const pid_t direct_pid = spawnProcess(
        {cfg.spawnBin, "serve", "--socket", direct_socket, "--jobs",
         std::to_string(cfg.jobs), "--dispatchers",
         std::to_string(cfg.dispatchers)});
    if (direct_pid < 0 || !awaitSocket(direct_socket)) {
        std::fprintf(stderr, "direct daemon never came up\n");
        return 3;
    }
    Metrics direct;
    std::vector<double> direct_fresh;
    std::vector<double> router_fresh;
    // The direct daemon stays up (idle) until the single-backend fleet
    // has run its burst, so the overhead probe can interleave the two
    // sides inside one time window; shut down after the probe.
    std::vector<int> direct_fds;
    std::vector<Roundtrip> direct_channels =
        socketChannels(direct_socket, cfg.clients, direct_fds);
    if (direct_channels.empty())
        return 3;
    bool direct_up = true;
    const auto shutdownDirect = [&] {
        if (!direct_up)
            return;
        direct_up = false;
        direct_channels[0]("{\"id\":\"lg-drain\",\"op\":\"drain\"}");
        for (const int fd : direct_fds)
            ::close(fd);
        int status = 0;
        ::waitpid(direct_pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "direct daemon exited abnormally\n");
            ok = false;
        }
        ::unlink(direct_socket.c_str());
    };
    {
        const BurstResult burst = runBurst(mix, direct_channels);
        if (burst.failures != 0) {
            std::fprintf(stderr, "direct: %d request(s) not ok\n",
                         burst.failures);
            ok = false;
        }
        double dedup = 0.0;
        if (const auto parsed = service::parseJson(direct_channels[0](
                "{\"id\":\"lg-stats\",\"op\":\"stats\"}")))
            dedup = jsonPathDouble(*parsed, {"stats", "dedupHitRate"});
        direct = burstMetrics(burst, dedup);
    }

    // --- Fleet sweep. ------------------------------------------------
    std::vector<int> counts;
    for (const int b : {1, 2, 4})
        if (b <= cfg.backends)
            counts.push_back(b);
    if (std::find(counts.begin(), counts.end(), cfg.backends) ==
        counts.end())
        counts.push_back(cfg.backends);

    std::vector<SweepPoint> sweep;
    Metrics headline;
    std::vector<std::string> headline_responses;
    std::string headline_stats;
    double router_p50_one = 0.0;
    std::uint64_t kill_failovers = 0;
    std::uint64_t kill_reinstalled = 0;
    bool kill_all_ok = true;

    for (const int count : counts) {
        const std::string tag = "f" + std::to_string(count);
        const std::optional<Fleet> fleet =
            spawnFleet(cfg.spawnBin, count, cfg.jobs, cfg.dispatchers,
                       cfg.ship, tag.c_str());
        if (!fleet.has_value()) {
            shutdownDirect();
            return 3;
        }
        std::vector<int> fds;
        std::vector<Roundtrip> channels =
            socketChannels(fleet->routerSocket, cfg.clients, fds);
        if (channels.empty()) {
            killFleet(*fleet);
            shutdownDirect();
            return 3;
        }

        const bool is_headline = count == cfg.backends;
        std::vector<pid_t> killed;
        std::function<void()> on_half;
        if (is_headline && cfg.killOne) {
            // SIGKILL the busiest backend at the burst's halfway point
            // — the backend guaranteed to hold completed, replicated
            // units, so failover has real work to resume.
            on_half = [&fleet, &killed] {
                std::size_t victim = 0;
                double busiest = -1.0;
                const auto parsed = service::parseJson(oneShotRequest(
                    fleet->routerSocket,
                    "{\"id\":\"lg-prekill\",\"op\":\"stats\"}"));
                const service::JsonValue *per =
                    parsed.has_value() && parsed->find("fleet")
                        ? parsed->find("fleet")->find("perBackend")
                        : nullptr;
                if (per != nullptr) {
                    for (std::size_t i = 0; i < per->items.size(); ++i) {
                        const service::JsonValue *alive =
                            per->items[i].find("alive");
                        const double checks = jsonPathDouble(
                            per->items[i], {"stats", "checksCompleted"});
                        if (alive != nullptr && alive->boolean &&
                            checks > busiest) {
                            busiest = checks;
                            victim = i;
                        }
                    }
                }
                killed.push_back(fleet->backendPids[victim]);
                ::kill(fleet->backendPids[victim], SIGKILL);
            };
        }

        const BurstResult burst = runBurst(mix, channels, on_half);
        if (burst.failures != 0) {
            std::fprintf(stderr, "fleet %d: %d request(s) not ok\n",
                         count, burst.failures);
            ok = false;
            if (is_headline)
                kill_all_ok = false;
        }

        const std::string stats_line = oneShotRequest(
            fleet->routerSocket, "{\"id\":\"lg-stats\",\"op\":\"stats\"}");
        double dedup = 0.0;
        if (const auto parsed = service::parseJson(stats_line)) {
            dedup = jsonPathDouble(
                *parsed, {"fleet", "aggregate", "dedupHitRate"});
            if (is_headline && !killed.empty()) {
                kill_failovers = static_cast<std::uint64_t>(
                    jsonPathDouble(*parsed,
                                   {"fleet", "router", "failovers"}));
                kill_reinstalled = static_cast<std::uint64_t>(
                    jsonPathDouble(
                        *parsed,
                        {"fleet", "router", "framesReinstalled"}));
            }
        }
        const Metrics metrics = burstMetrics(burst, dedup);
        sweep.push_back(SweepPoint{count, metrics});
        if (count == 1) {
            router_p50_one = metrics[1];
            interleavedFreshProbe(app_names, cfg.input,
                                  direct_channels[0], channels[0],
                                  direct_fresh, router_fresh);
            shutdownDirect();
        }
        if (is_headline) {
            headline = metrics;
            headline_responses = burst.responses;
            headline_stats = stats_line;
        }

        for (const int fd : fds)
            ::close(fd);
        if (!drainFleet(*fleet, killed))
            ok = false;
    }
    shutdownDirect();

    if (cfg.killOne) {
        if (kill_failovers < 1 || kill_reinstalled < 1) {
            std::fprintf(stderr,
                         "kill-one: expected a failover with reinstalled "
                         "frames (failovers=%llu reinstalled=%llu)\n",
                         static_cast<unsigned long long>(kill_failovers),
                         static_cast<unsigned long long>(
                             kill_reinstalled));
            kill_all_ok = false;
        }
        if (!kill_all_ok)
            ok = false;
    }

    // --- Verify: router bytes vs the one-shot campaign path. ---------
    bool verified = true;
    if (cfg.verify) {
        std::vector<bool> checked(app_names.size() *
                                  static_cast<std::size_t>(cfg.seeds));
        for (std::size_t i = 0; i < mix.size(); ++i) {
            if (checked[mix[i].combo])
                continue;
            checked[mix[i].combo] = true;
            const std::string expected =
                oneShotReport(mix[i], cfg.runs, cfg.input);
            const std::string got =
                embeddedReport(headline_responses[i]);
            if (expected.empty() || got != expected) {
                std::fprintf(
                    stderr,
                    "fleet report mismatch for %s seed %llu\n"
                    "  one-shot: %s\n  router:   %s\n",
                    mix[i].app.c_str(),
                    static_cast<unsigned long long>(mix[i].seed),
                    expected.c_str(), got.c_str());
                verified = false;
            }
        }
        if (!verified)
            ok = false;
    }

    // --- Per-backend balance from the headline fleet stats. ----------
    std::string balance_json = "[]";
    if (const auto parsed = service::parseJson(headline_stats)) {
        const service::JsonValue *per =
            parsed->find("fleet") != nullptr
                ? parsed->find("fleet")->find("perBackend")
                : nullptr;
        if (per != nullptr) {
            balance_json = "[";
            for (std::size_t i = 0; i < per->items.size(); ++i) {
                const service::JsonValue &row = per->items[i];
                const service::JsonValue *name = row.find("name");
                const service::JsonValue *alive = row.find("alive");
                balance_json += i == 0 ? "" : ",";
                balance_json +=
                    "{\"name\":\"" +
                    (name != nullptr ? name->text : std::string{}) +
                    "\",\"alive\":" +
                    (alive != nullptr && alive->boolean ? "true"
                                                        : "false") +
                    ",\"checksCompleted\":" +
                    std::to_string(static_cast<std::uint64_t>(
                        jsonPathDouble(row,
                                       {"stats", "checksCompleted"}))) +
                    ",\"replicaFrames\":" +
                    std::to_string(static_cast<std::uint64_t>(
                        jsonPathDouble(row, {"replicaFrames"}))) +
                    "}";
            }
            balance_json += "]";
        }
    }

    std::optional<Metrics> base;
    if (!cfg.baselinePath.empty()) {
        base = readBaseline(cfg.baselinePath);
        if (!base.has_value())
            return 1;
    }

    std::FILE *out = std::fopen(cfg.outPath.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", cfg.outPath.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"loadgen-fleet\",\n");
    std::fprintf(out, "  \"quick\": %s,\n", cfg.quick ? "true" : "false");
    std::fprintf(out, "  \"mode\": \"fleet\",\n");
    std::fprintf(out, "  \"backends\": %d,\n", cfg.backends);
    std::fprintf(out, "  \"ship\": \"%s\",\n", cfg.ship.c_str());
    std::fprintf(out, "  \"requests\": %d,\n", cfg.requests);
    std::fprintf(out, "  \"clients\": %d,\n", cfg.clients);
    std::fprintf(out, "  \"runsPerRequest\": %d,\n", cfg.runs);
    std::fprintf(out, "  \"apps\": \"%s\",\n", cfg.appsCsv.c_str());
    std::fprintf(out, "  \"seedsPerApp\": %d,\n", cfg.seeds);
    std::fprintf(out, "  \"input\": \"%s\",\n", cfg.input.c_str());
    std::fprintf(out, "  \"verified\": %s,\n",
                 cfg.verify ? (verified ? "true" : "false") : "null");
    if (cfg.killOne)
        std::fprintf(out,
                     "  \"killOne\": {\"failovers\": %llu, "
                     "\"framesReinstalled\": %llu, \"allOk\": %s},\n",
                     static_cast<unsigned long long>(kill_failovers),
                     static_cast<unsigned long long>(kill_reinstalled),
                     kill_all_ok ? "true" : "false");
    else
        std::fprintf(out, "  \"killOne\": null,\n");
    // The headline overhead is the median of per-config paired ratios
    // over executed checks (see freshProbeLatencies); the mixed-burst
    // ratio rides along for context but sits on cache-hit latencies
    // too small to measure stably on a contended single-core host.
    const double fresh_overhead = pairedOverhead(router_fresh,
                                                 direct_fresh);
    std::vector<double> direct_sorted = direct_fresh;
    std::sort(direct_sorted.begin(), direct_sorted.end());
    std::vector<double> router_sorted = router_fresh;
    std::sort(router_sorted.begin(), router_sorted.end());
    std::fprintf(out, "  \"routerOverheadP50\": %.4f,\n", fresh_overhead);
    std::fprintf(out, "  \"routerOverheadP50Mixed\": %.4f,\n",
                 direct[1] > 0.0 ? router_p50_one / direct[1] : 0.0);
    std::fprintf(out, "  \"directFreshCheckP50Ms\": %.4f,\n",
                 percentile(direct_sorted, 0.50));
    std::fprintf(out, "  \"routerFreshCheckP50Ms\": %.4f,\n",
                 percentile(router_sorted, 0.50));
    std::fprintf(out, "  \"backendSweep\": [");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::fprintf(out,
                     "%s\n    {\"backends\": %d, \"requestsPerSec\": "
                     "%.4f, \"p50LatencyMs\": %.4f, \"p99LatencyMs\": "
                     "%.4f, \"dedupHitRate\": %.4f}",
                     i == 0 ? "" : ",", sweep[i].backends,
                     sweep[i].metrics[0], sweep[i].metrics[1],
                     sweep[i].metrics[2], sweep[i].metrics[3]);
    }
    std::fprintf(out, "\n  ],\n");
    std::fprintf(out, "  \"balance\": %s,\n", balance_json.c_str());
    std::fprintf(out, "  \"hardwareConcurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    emitBlock(out, "direct", direct, "%.4f");
    std::fprintf(out, ",\n");
    emitBlock(out, "current", headline, "%.4f");
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.4f");
        Metrics speedup;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            speedup[i] = (*base)[i] > 0.0 ? headline[i] / (*base)[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "speedupVsMain", speedup, "%.2f");
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);

    std::printf("fleet %d: %.1f req/s, p50 %.2fms, p99 %.2fms, dedup "
                "%.2f; direct %.1f req/s, p50 %.2fms; router overhead "
                "p50 %.2fx%s%s\n",
                cfg.backends, headline[0], headline[1], headline[2],
                headline[3], direct[0], direct[1], fresh_overhead,
                cfg.verify ? (verified ? ", verified" : ", VERIFY FAILED")
                           : "",
                cfg.killOne ? (kill_all_ok ? ", kill-one ok"
                                           : ", KILL-ONE FAILED")
                            : "");
    std::printf("wrote %s\n", cfg.outPath.c_str());
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string apps_csv = "radix,fft,lu";
    std::string input = "dev";
    std::string baseline_path;
    std::string connect_path;
    std::string spawn_bin;
    std::string store_path;
    std::string ship = "async";
    int requests = 96;
    int clients = 4;
    int runs = 6;
    int seeds = 2;
    int jobs = 0;
    int dispatchers = 2;
    int fleet_backends = 0;
    bool quick = false;
    bool verify = false;
    bool kill_one = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--kill-one") {
            kill_one = true;
        } else if (arg == "--fleet" && i + 1 < argc) {
            fleet_backends = std::atoi(argv[++i]);
        } else if (arg == "--ship" && i + 1 < argc) {
            ship = argv[++i];
        } else if (arg == "--requests" && i + 1 < argc) {
            requests = std::atoi(argv[++i]);
        } else if (arg == "--clients" && i + 1 < argc) {
            clients = std::atoi(argv[++i]);
        } else if (arg == "--runs" && i + 1 < argc) {
            runs = std::atoi(argv[++i]);
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::atoi(argv[++i]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (arg == "--dispatchers" && i + 1 < argc) {
            dispatchers = std::atoi(argv[++i]);
        } else if (arg == "--apps" && i + 1 < argc) {
            apps_csv = argv[++i];
        } else if (arg == "--input" && i + 1 < argc) {
            input = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--connect" && i + 1 < argc) {
            connect_path = argv[++i];
        } else if (arg == "--spawn" && i + 1 < argc) {
            spawn_bin = argv[++i];
        } else if (arg == "--store" && i + 1 < argc) {
            store_path = argv[++i];
        } else if (arg.rfind("--", 0) != 0) {
            out_path = arg;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return 2;
        }
    }
    if (quick) {
        requests = std::min(requests, 18);
        clients = std::min(clients, 2);
    }
    const std::vector<std::string> app_names = splitCsv(apps_csv);
    if (app_names.empty() || requests < 1 || clients < 1 || runs < 2 ||
        seeds < 1) {
        std::fprintf(stderr, "invalid mix parameters\n");
        return 2;
    }
    if (!connect_path.empty() && !spawn_bin.empty()) {
        std::fprintf(stderr,
                     "--connect and --spawn are mutually exclusive\n");
        return 2;
    }
    if (ship != "sync" && ship != "async") {
        std::fprintf(stderr, "--ship must be sync or async\n");
        return 2;
    }

    if (fleet_backends > 0) {
        if (spawn_bin.empty() || !connect_path.empty() ||
            !store_path.empty()) {
            std::fprintf(stderr,
                         "--fleet needs --spawn ICHECK_BIN (and takes "
                         "neither --connect nor --store)\n");
            return 2;
        }
        if (kill_one && fleet_backends < 2) {
            std::fprintf(stderr,
                         "--kill-one needs --fleet of at least 2\n");
            return 2;
        }
        FleetBenchConfig fleet_cfg;
        fleet_cfg.outPath =
            out_path.empty() ? "BENCH_fleet.json" : out_path;
        fleet_cfg.appsCsv = apps_csv;
        fleet_cfg.input = input;
        fleet_cfg.baselinePath = baseline_path;
        fleet_cfg.spawnBin = spawn_bin;
        fleet_cfg.ship = ship;
        fleet_cfg.backends = fleet_backends;
        fleet_cfg.requests = requests;
        fleet_cfg.clients = clients;
        fleet_cfg.runs = runs;
        fleet_cfg.seeds = seeds;
        fleet_cfg.jobs = jobs;
        fleet_cfg.dispatchers = dispatchers;
        fleet_cfg.quick = quick;
        fleet_cfg.verify = verify;
        fleet_cfg.killOne = kill_one;
        return runFleetBench(fleet_cfg);
    }
    if (out_path.empty())
        out_path = "BENCH_service.json";
    if (kill_one) {
        std::fprintf(stderr, "--kill-one only applies to --fleet\n");
        return 2;
    }

    const std::vector<MixEntry> mix =
        buildMix(app_names, requests, runs, seeds, input);

    // --- Set up the transport. ---------------------------------------
    std::unique_ptr<service::Service> local;
    pid_t daemon_pid = -1;
    std::string socket_path = connect_path;
    const char *mode = "in-process";

    if (!spawn_bin.empty()) {
        mode = "spawn";
        socket_path = "loadgen-" + std::to_string(::getpid()) + ".sock";
        daemon_pid = ::fork();
        if (daemon_pid == 0) {
            std::vector<std::string> daemon_args = {
                spawn_bin,       "serve",
                "--socket",      socket_path,
                "--jobs",        std::to_string(jobs),
                "--dispatchers", std::to_string(dispatchers),
            };
            if (!store_path.empty()) {
                daemon_args.push_back("--store");
                daemon_args.push_back(store_path);
            }
            std::vector<char *> exec_argv;
            for (std::string &daemon_arg : daemon_args)
                exec_argv.push_back(daemon_arg.data());
            exec_argv.push_back(nullptr);
            ::execv(spawn_bin.c_str(), exec_argv.data());
            std::fprintf(stderr, "cannot exec %s\n", spawn_bin.c_str());
            std::_Exit(3);
        }
        if (daemon_pid < 0) {
            std::fprintf(stderr, "fork failed\n");
            return 3;
        }
        // Wait for the daemon's socket to accept.
        bool up = false;
        for (int attempt = 0; attempt < 200 && !up; ++attempt) {
            const int fd = connectSocket(socket_path);
            if (fd >= 0) {
                ::close(fd);
                up = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
        if (!up) {
            std::fprintf(stderr, "spawned daemon never came up\n");
            ::kill(daemon_pid, SIGKILL);
            return 3;
        }
    } else if (connect_path.empty()) {
        service::ServiceConfig cfg;
        cfg.jobs = jobs;
        cfg.dispatchers = dispatchers;
        cfg.storePath = store_path;
        local = std::make_unique<service::Service>(cfg);
    } else {
        mode = "connect";
    }

    // Per-client channels: in-process clients call the service
    // directly; socket clients each own one connection.
    std::vector<int> client_fds;
    std::vector<Roundtrip> channels;
    for (int c = 0; c < clients; ++c) {
        if (local != nullptr) {
            channels.emplace_back([&local](const std::string &line) {
                return local->handleLine(line);
            });
            continue;
        }
        const int fd = connectSocket(socket_path);
        if (fd < 0) {
            std::fprintf(stderr, "cannot connect to %s\n",
                         socket_path.c_str());
            return 3;
        }
        client_fds.push_back(fd);
        channels.emplace_back([fd](const std::string &line) {
            return socketRoundtrip(fd, line);
        });
    }

    // --- Traffic phase. ----------------------------------------------
    const BurstResult burst = runBurst(mix, channels);
    const std::vector<std::string> &responses = burst.responses;

    if (burst.failures != 0) {
        std::fprintf(stderr, "%d of %zu requests did not return ok\n",
                     burst.failures, mix.size());
        return 1;
    }

    // --- Stats + dedup hit rate from the daemon itself. --------------
    const std::string stats_response =
        channels[0]("{\"id\":\"lg-stats\",\"op\":\"stats\"}");
    double dedup_rate = 0.0;
    if (const auto parsed = service::parseJson(stats_response)) {
        if (const auto *stats = parsed->find("stats"))
            if (const auto *rate = stats->find("dedupHitRate"))
                dedup_rate = rate->asDouble();
    }

    // --- Verify phase: daemon bytes vs the one-shot path. ------------
    bool verified = true;
    if (verify) {
        std::vector<bool> checked(app_names.size() *
                                  static_cast<std::size_t>(seeds));
        for (std::size_t i = 0; i < mix.size(); ++i) {
            if (checked[mix[i].combo])
                continue;
            checked[mix[i].combo] = true;
            const std::string expected =
                oneShotReport(mix[i], runs, input);
            const std::string got = embeddedReport(responses[i]);
            if (expected.empty() || got != expected) {
                std::fprintf(stderr,
                             "report mismatch for %s seed %llu\n"
                             "  one-shot: %s\n  daemon:   %s\n",
                             mix[i].app.c_str(),
                             static_cast<unsigned long long>(mix[i].seed),
                             expected.c_str(), got.c_str());
                verified = false;
            }
        }
    }

    // --- Tear down the transport. ------------------------------------
    if (daemon_pid > 0)
        channels[0]("{\"id\":\"lg-drain\",\"op\":\"drain\"}");
    for (const int fd : client_fds)
        ::close(fd);
    if (daemon_pid > 0) {
        int status = 0;
        ::waitpid(daemon_pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "daemon exited abnormally\n");
            verified = false;
        }
    }

    // --- Metrics. ----------------------------------------------------
    const Metrics cur = burstMetrics(burst, dedup_rate);

    std::optional<Metrics> base;
    if (!baseline_path.empty()) {
        base = readBaseline(baseline_path);
        if (!base.has_value())
            return 1;
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"loadgen\",\n");
    std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(out, "  \"mode\": \"%s\",\n", mode);
    std::fprintf(out, "  \"requests\": %d,\n", requests);
    std::fprintf(out, "  \"clients\": %d,\n", clients);
    std::fprintf(out, "  \"runsPerRequest\": %d,\n", runs);
    std::fprintf(out, "  \"apps\": \"%s\",\n", apps_csv.c_str());
    std::fprintf(out, "  \"seedsPerApp\": %d,\n", seeds);
    std::fprintf(out, "  \"input\": \"%s\",\n", input.c_str());
    std::fprintf(out, "  \"verified\": %s,\n",
                 verify ? (verified ? "true" : "false") : "null");
    std::fprintf(out, "  \"hardwareConcurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    emitBlock(out, "current", cur, "%.4f");
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.4f");
        Metrics speedup;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            speedup[i] =
                (*base)[i] > 0.0 ? cur[i] / (*base)[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "speedupVsMain", speedup, "%.2f");
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);

    std::printf("%zu requests in %.2fs: %.1f req/s, p50 %.2fms, "
                "p99 %.2fms, dedup %.2f%s\n",
                mix.size(), burst.wall, cur[0], cur[1], cur[2], cur[3],
                verify ? (verified ? ", verified" : ", VERIFY FAILED")
                       : "");
    std::printf("wrote %s\n", out_path.c_str());
    return verified ? 0 : 1;
}
