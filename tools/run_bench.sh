#!/usr/bin/env bash
# Build and run the perf-trajectory benchmarks, leaving machine-readable
# results at the repo root. Run from anywhere inside the repo:
#
#   tools/run_bench.sh [build-dir] [parallel-output.json]
#   tools/run_bench.sh --pin [build-dir]
#
# Six files are produced:
#   BENCH_parallel.json — serial vs. pooled campaign runs/sec (plus
#     speedup and worker utilization per job count).
#   BENCH_hotpath.json  — access/hash hot-path throughput (store-hash
#     loop, span hashing, memory access, machine end-to-end), compared
#     against the pinned pre-optimization baseline in
#     bench/baselines/hotpath_main.json.
#   BENCH_snapshot.json — snapshot/prefix-sharing throughput (COW fork
#     vs clone, restore+suffix vs cold re-run, explore nodes/sec on vs
#     off), compared against the pinned no-checkpoint baseline in
#     bench/baselines/snapshot_main.json.
#   BENCH_service.json  — campaign-service throughput (sustained req/s,
#     p50/p99 latency, dedup hit rate) from the loadgen mixed-app
#     replay, compared against the pinned baseline in
#     bench/baselines/service_main.json.
#   BENCH_explore.json  — DPOR exploration reduction (nodes to full
#     coverage on the bug-seeded apps, states found), compared against
#     the pinned no-DPOR baseline in bench/baselines/explore_main.json.
#   BENCH_fleet.json    — router-fronted fleet throughput (aggregate
#     req/s, p50/p99, dedup rate, per-backend balance, router overhead
#     vs a direct daemon, backend-count sweep, kill-one failover
#     counters), compared against the pinned baseline in
#     bench/baselines/fleet_main.json.
# Comparing the files across commits tracks each subsystem's trajectory.
#
# Every emitted JSON is stamped with provenance (git SHA, hostname,
# compiler), so a committed result documents where it came from.
#
# --pin re-records the pinned baselines under bench/baselines/ instead.
# Baselines are the denominator of every later speedup claim, so pinning
# refuses to run from a dirty tree: the stamped SHA must describe
# exactly the code that produced the numbers.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

pin=0
args=()
for arg in "$@"; do
    if [ "${arg}" = "--pin" ]; then
        pin=1
    else
        args+=("${arg}")
    fi
done
build_dir="${args[0]:-${repo_root}/build}"
out_json="${args[1]:-${repo_root}/BENCH_parallel.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S "${repo_root}"
fi

# Sanitizer instrumentation skews timings by 2-20x; numbers from such a
# build must never land in a committed BENCH_*.json.
sanitize="$(sed -n 's/^ICHECK_SANITIZE:[^=]*=//p' \
    "${build_dir}/CMakeCache.txt")"
if [ -n "${sanitize}" ]; then
    echo "error: ${build_dir} was configured with" \
        "ICHECK_SANITIZE=${sanitize}; refusing to record benchmark" \
        "numbers from an instrumented build" >&2
    exit 1
fi

# Provenance stamped into every emitted JSON.
git_sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null ||
    echo unknown)"
if [ -n "$(git -C "${repo_root}" status --porcelain 2>/dev/null)" ]; then
    git_sha="${git_sha}-dirty"
fi
host_name="$(hostname)"
cxx_path="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
    "${build_dir}/CMakeCache.txt")"
compiler="$("${cxx_path}" --version 2>/dev/null | head -n 1 ||
    echo "${cxx_path}")"

# Insert the provenance keys right after the opening brace of $1.
stamp_provenance() {
    local file="$1"
    awk -v sha="${git_sha}" -v host="${host_name}" \
        -v comp="${compiler}" '
        NR == 1 && $0 == "{" {
            print "{"
            print "  \"gitSha\": \"" sha "\","
            print "  \"host\": \"" host "\","
            print "  \"compiler\": \"" comp "\","
            next
        }
        { print }' "${file}" > "${file}.tmp"
    mv "${file}.tmp" "${file}"
}

if [ "${pin}" -eq 1 ]; then
    case "${git_sha}" in
    *-dirty | unknown)
        echo "error: refusing to pin baselines from a dirty tree;" \
            "commit first so the stamped SHA describes the code that" \
            "produced the numbers" >&2
        exit 1
        ;;
    esac
    cmake --build "${build_dir}" -t micro_hotpath micro_snapshot \
        micro_explore loadgen -j
    mkdir -p "${repo_root}/bench/baselines"
    "${build_dir}/bench/micro_hotpath" \
        "${repo_root}/bench/baselines/hotpath_main.json"
    stamp_provenance "${repo_root}/bench/baselines/hotpath_main.json"
    # The pre-transport baseline freezes the listener-attached rates of
    # the synchronous dispatch path (what `--transport off` preserves) at
    # the commit the transport landed. Pin it once; later re-pins of the
    # main baseline must not move the transport win's denominator.
    if [ ! -f "${repo_root}/bench/baselines/hotpath_pretransport.json" ]
    then
        cp "${repo_root}/bench/baselines/hotpath_main.json" \
            "${repo_root}/bench/baselines/hotpath_pretransport.json"
        echo "pre-transport listener baseline pinned"
    fi
    "${build_dir}/bench/micro_snapshot" \
        "${repo_root}/bench/baselines/snapshot_main.json" \
        --no-checkpoints
    stamp_provenance "${repo_root}/bench/baselines/snapshot_main.json"
    "${build_dir}/tools/loadgen/loadgen" \
        "${repo_root}/bench/baselines/service_main.json"
    stamp_provenance "${repo_root}/bench/baselines/service_main.json"
    "${build_dir}/bench/micro_explore" \
        "${repo_root}/bench/baselines/explore_main.json" --no-dpor
    stamp_provenance "${repo_root}/bench/baselines/explore_main.json"
    cmake --build "${build_dir}" -t icheck -j
    # 4 seeds x 3 apps = 12 distinct campaigns: enough keys that every
    # backend owns a shard (the default 6 can leave ring members idle).
    "${build_dir}/tools/loadgen/loadgen" \
        "${repo_root}/bench/baselines/fleet_main.json" \
        --fleet 4 --ship sync --kill-one --verify \
        --requests 144 --seeds 4 \
        --spawn "${build_dir}/tools/icheck"
    stamp_provenance "${repo_root}/bench/baselines/fleet_main.json"
    echo "baselines pinned under ${repo_root}/bench/baselines/"
    exit 0
fi

cmake --build "${build_dir}" -t micro_parallel micro_hotpath \
    micro_snapshot micro_explore loadgen -j

"${build_dir}/bench/micro_parallel" "${out_json}"
stamp_provenance "${out_json}"
echo "perf trajectory written to ${out_json}"

hotpath_args=(--baseline "${repo_root}/bench/baselines/hotpath_main.json")
pretransport_baseline="${repo_root}/bench/baselines/hotpath_pretransport.json"
if [ -f "${pretransport_baseline}" ]; then
    hotpath_args+=(--pretransport "${pretransport_baseline}")
fi
"${build_dir}/bench/micro_hotpath" "${repo_root}/BENCH_hotpath.json" \
    "${hotpath_args[@]}"
stamp_provenance "${repo_root}/BENCH_hotpath.json"
echo "hot-path trajectory written to ${repo_root}/BENCH_hotpath.json"

"${build_dir}/bench/micro_snapshot" "${repo_root}/BENCH_snapshot.json" \
    --baseline "${repo_root}/bench/baselines/snapshot_main.json"
stamp_provenance "${repo_root}/BENCH_snapshot.json"
echo "snapshot trajectory written to ${repo_root}/BENCH_snapshot.json"

service_baseline="${repo_root}/bench/baselines/service_main.json"
service_args=()
if [ -f "${service_baseline}" ]; then
    service_args+=(--baseline "${service_baseline}")
fi
"${build_dir}/tools/loadgen/loadgen" "${repo_root}/BENCH_service.json" \
    "${service_args[@]+"${service_args[@]}"}"
stamp_provenance "${repo_root}/BENCH_service.json"
echo "service trajectory written to ${repo_root}/BENCH_service.json"

explore_baseline="${repo_root}/bench/baselines/explore_main.json"
explore_args=()
if [ -f "${explore_baseline}" ]; then
    explore_args+=(--baseline "${explore_baseline}")
fi
"${build_dir}/bench/micro_explore" "${repo_root}/BENCH_explore.json" \
    "${explore_args[@]+"${explore_args[@]}"}"
stamp_provenance "${repo_root}/BENCH_explore.json"
echo "explore trajectory written to ${repo_root}/BENCH_explore.json"

cmake --build "${build_dir}" -t icheck -j
fleet_baseline="${repo_root}/bench/baselines/fleet_main.json"
fleet_args=()
if [ -f "${fleet_baseline}" ]; then
    fleet_args+=(--baseline "${fleet_baseline}")
fi
"${build_dir}/tools/loadgen/loadgen" "${repo_root}/BENCH_fleet.json" \
    --fleet 4 --ship sync --kill-one --verify \
    --requests 144 --seeds 4 \
    --spawn "${build_dir}/tools/icheck" \
    "${fleet_args[@]+"${fleet_args[@]}"}"
stamp_provenance "${repo_root}/BENCH_fleet.json"
echo "fleet trajectory written to ${repo_root}/BENCH_fleet.json"
