#!/usr/bin/env bash
# Build and run the campaign-throughput benchmark, leaving the
# machine-readable perf trajectory in BENCH_parallel.json at the repo
# root. Run from anywhere inside the repo:
#
#   tools/run_bench.sh [build-dir] [output.json]
#
# The JSON records serial vs. pooled campaign runs/sec (plus speedup and
# worker utilization per job count); comparing the file across commits
# tracks the runtime subsystem's trajectory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_parallel.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S "${repo_root}"
fi

# Sanitizer instrumentation skews timings by 2-20x; numbers from such a
# build must never land in a committed BENCH_*.json.
sanitize="$(sed -n 's/^ICHECK_SANITIZE:[^=]*=//p' \
    "${build_dir}/CMakeCache.txt")"
if [ -n "${sanitize}" ]; then
    echo "error: ${build_dir} was configured with" \
        "ICHECK_SANITIZE=${sanitize}; refusing to record benchmark" \
        "numbers from an instrumented build" >&2
    exit 1
fi

cmake --build "${build_dir}" -t micro_parallel -j

"${build_dir}/bench/micro_parallel" "${out_json}"
echo "perf trajectory written to ${out_json}"
