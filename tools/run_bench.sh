#!/usr/bin/env bash
# Build and run the perf-trajectory benchmarks, leaving machine-readable
# results at the repo root. Run from anywhere inside the repo:
#
#   tools/run_bench.sh [build-dir] [parallel-output.json]
#
# Two files are produced:
#   BENCH_parallel.json — serial vs. pooled campaign runs/sec (plus
#     speedup and worker utilization per job count).
#   BENCH_hotpath.json  — access/hash hot-path throughput (store-hash
#     loop, span hashing, memory access, machine end-to-end), compared
#     against the pinned pre-optimization baseline in
#     bench/baselines/hotpath_main.json.
# Comparing the files across commits tracks each subsystem's trajectory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_parallel.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S "${repo_root}"
fi

# Sanitizer instrumentation skews timings by 2-20x; numbers from such a
# build must never land in a committed BENCH_*.json.
sanitize="$(sed -n 's/^ICHECK_SANITIZE:[^=]*=//p' \
    "${build_dir}/CMakeCache.txt")"
if [ -n "${sanitize}" ]; then
    echo "error: ${build_dir} was configured with" \
        "ICHECK_SANITIZE=${sanitize}; refusing to record benchmark" \
        "numbers from an instrumented build" >&2
    exit 1
fi

cmake --build "${build_dir}" -t micro_parallel micro_hotpath -j

"${build_dir}/bench/micro_parallel" "${out_json}"
echo "perf trajectory written to ${out_json}"

"${build_dir}/bench/micro_hotpath" "${repo_root}/BENCH_hotpath.json" \
    --baseline "${repo_root}/bench/baselines/hotpath_main.json"
echo "hot-path trajectory written to ${repo_root}/BENCH_hotpath.json"
