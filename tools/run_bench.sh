#!/usr/bin/env bash
# Build and run the campaign-throughput benchmark, leaving the
# machine-readable perf trajectory in BENCH_parallel.json at the repo
# root. Run from anywhere inside the repo:
#
#   tools/run_bench.sh [build-dir] [output.json]
#
# The JSON records serial vs. pooled campaign runs/sec (plus speedup and
# worker utilization per job count); comparing the file across commits
# tracks the runtime subsystem's trajectory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_parallel.json}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S "${repo_root}"
fi
cmake --build "${build_dir}" -t micro_parallel -j

"${build_dir}/bench/micro_parallel" "${out_json}"
echo "perf trajectory written to ${out_json}"
