/**
 * @file
 * Bug hunting with InstantCheck (sections 2.3 and 7.2.1): reproduce the
 * workflow that found the real PARSEC streamcluster bug.
 *
 *  1. Check determinism at every barrier: internal barriers flag
 *     nondeterminism even though the program end looks clean.
 *  2. Localize: re-execute the two differing runs, snapshot full memory
 *     at the first nondeterministic checkpoint, diff, and map the bytes
 *     back to the owning allocation site / global.
 *  3. Fix the race and re-check: all barriers become deterministic.
 *
 *   ./bug_hunt
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "check/driver.hpp"
#include "check/localize.hpp"

using namespace icheck;

namespace
{

check::ProgramFactory
streamcluster(bool with_bug)
{
    return [with_bug] {
        return std::make_unique<apps::Streamcluster>(
            8, /*medium_input=*/true, with_bug);
    };
}

check::DriverConfig
driverConfig()
{
    check::DriverConfig cfg;
    cfg.scheme = check::Scheme::HwInc;
    cfg.runs = 20;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = false;
    return cfg;
}

} // namespace

int
main()
{
    // Step 1: check the buggy version at every barrier.
    check::DeterminismDriver driver(driverConfig());
    const check::DriverReport buggy = driver.check(streamcluster(true));
    std::printf("streamcluster (PARSEC 2.1, with the bug):\n");
    std::printf("  %llu deterministic points, %llu NONDETERMINISTIC, "
                "end %s, output %s\n",
                static_cast<unsigned long long>(buggy.detPoints),
                static_cast<unsigned long long>(buggy.ndetPoints),
                buggy.detAtEnd ? "deterministic" : "nondeterministic",
                buggy.outputDeterministic ? "deterministic"
                                          : "nondeterministic");
    std::printf("  -> checking only at the end would MISS this bug: the "
                "corruption is masked before the program exits.\n");

    // Step 2: find the first nondeterministic checkpoint and localize.
    std::size_t first_ndet = 0;
    for (; first_ndet < buggy.distributions.size(); ++first_ndet) {
        if (!buggy.distributions[first_ndet].deterministic())
            break;
    }
    std::printf("\nfirst nondeterministic checkpoint: #%zu\n",
                first_ndet);

    const check::LocalizeReport where = check::localizeNondeterminism(
        streamcluster(true), driverConfig().machine,
        /*seed_a=*/driverConfig().baseSchedSeed,
        /*seed_b=*/driverConfig().baseSchedSeed + 1,
        /*checkpoint_index=*/first_ndet);
    std::printf("state diff at that checkpoint: %llu bytes across %zu "
                "owners\n",
                static_cast<unsigned long long>(where.totalDiffBytes),
                where.sites.size());
    for (const check::DiffSite &site : where.sites) {
        std::printf("  %-28s type %-10s offsets [%zu, %zu], %llu "
                    "bytes\n",
                    site.owner.c_str(), site.type.c_str(), site.offsetLo,
                    site.offsetHi,
                    static_cast<unsigned long long>(site.bytes));
    }
    std::printf("  -> the programmer now knows *which structures* "
                "behaved nondeterministically and *between which "
                "barriers*.\n");

    // Step 3: the fix (publish the parameter before consumers read it).
    const check::DriverReport fixed = driver.check(streamcluster(false));
    std::printf("\nstreamcluster (fixed): %s; %llu det points, %llu "
                "ndet\n",
                fixed.deterministic() ? "externally deterministic"
                                      : "still nondeterministic",
                static_cast<unsigned long long>(fixed.detPoints),
                static_cast<unsigned long long>(fixed.ndetPoints));
    return 0;
}
