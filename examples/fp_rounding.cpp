/**
 * @file
 * Floating-point round-off control (sections 3.1 and 5).
 *
 * Parallel reductions reassociate FP additions, so bit-by-bit comparison
 * reports nondeterminism even for programs whose results are numerically
 * identical. This example checks the same reduction program under:
 *   - bit-by-bit comparison          -> nondeterministic,
 *   - decimal flooring (default 1e-3) -> deterministic,
 *   - mantissa masking (M low bits)   -> deterministic,
 * and shows a genuine (semantic) error is NOT masked by rounding.
 *
 *   ./fp_rounding
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "check/driver.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;

namespace
{

/** Threads accumulate fixed terms into one global sum, in lock order. */
check::ProgramFactory
reduction()
{
    return [] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<sim::LambdaProgram>(
            "reduction", 8,
            [mutex_id](sim::SetupCtx &ctx) {
                const Addr acc = ctx.global("acc", mem::tDouble());
                ctx.init<double>(acc, 0.0005); // keep off grid boundaries
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                const Addr acc = ctx.global("acc");
                for (int i = 0; i < 8; ++i) {
                    const double term =
                        1.0 / (3.0 + ctx.tid()) + 1e-14 * (i + 1);
                    ctx.lock(*mutex_id);
                    ctx.store<double>(acc,
                                      ctx.load<double>(acc) + term);
                    ctx.unlock(*mutex_id);
                }
            });
    };
}

check::DriverConfig
configWith(bool rounding, hashing::FpRoundMode mode)
{
    check::DriverConfig cfg;
    cfg.runs = 20;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = rounding;
    cfg.machine.mhmCfg.fpMode = mode;
    return cfg;
}

void
report(const char *label, const check::DriverConfig &cfg)
{
    check::DeterminismDriver driver(cfg);
    const check::DriverReport rep = driver.check(reduction());
    std::printf("  %-34s %s (first ndet run: %d)\n", label,
                rep.deterministic() ? "deterministic"
                                    : "NONDETERMINISTIC",
                rep.firstNdetRun);
}

} // namespace

int
main()
{
    std::printf("FP reduction checked under different comparison "
                "modes:\n");
    report("bit-by-bit",
           configWith(false, hashing::FpRoundMode::none()));
    report("floor to 0.001 (paper default)",
           configWith(true, hashing::FpRoundMode::paperDefault()));
    report("floor to 1e-6",
           configWith(true, hashing::FpRoundMode::floorDigits(6)));
    report("mantissa mask, M = 24 bits",
           configWith(true, hashing::FpRoundMode::mask(24)));

    std::printf("\nA real numerical bug is NOT masked by rounding "
                "(waterNS + seeded semantic bug, floor 0.001):\n");
    check::DriverConfig cfg =
        configWith(true, hashing::FpRoundMode::paperDefault());
    check::DeterminismDriver driver(cfg);
    const check::DriverReport buggy = driver.check([] {
        return std::make_unique<apps::WaterNS>(8, 48, 5,
                                               apps::BugSeed::Semantic);
    });
    std::printf("  waterNS+semantic: %s (first ndet run: %d)\n",
                buggy.deterministic() ? "deterministic"
                                      : "NONDETERMINISTIC",
                buggy.firstNdetRun);
    std::printf("\nRounding discards reassociation noise without hiding "
                "errors larger than the grain (Section 5).\n");
    return 0;
}
