/**
 * @file
 * Quickstart: check a small parallel program for external determinism.
 *
 * Walks through the paper's Figure 1/2 example: two threads update a
 * shared global G with their local values under a lock. The program is
 * *internally* nondeterministic (update order, intermediate values, and
 * per-thread hashes all vary) yet *externally* deterministic (the final
 * state — and hence the State Hash — is identical in every run).
 *
 *   ./quickstart
 */

#include <cstdio>
#include <memory>

#include "check/driver.hpp"
#include "check/sw_inc.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;

namespace
{

/** The Figure 1 code fragment as a simulated program. */
check::ProgramFactory
figure1()
{
    return [] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<sim::LambdaProgram>(
            "figure1", /*threads=*/2,
            [mutex_id](sim::SetupCtx &ctx) {
                // global G, initially 2.
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                // local L: 7 for thread 0, 3 for thread 1.
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
                ctx.unlock(*mutex_id);
            });
    };
}

} // namespace

int
main()
{
    // Step 1: run the determinism campaign — 20 runs, random serializing
    // scheduler, HW-InstantCheck-Inc attached.
    check::DriverConfig cfg;
    cfg.scheme = check::Scheme::HwInc;
    cfg.runs = 20;
    cfg.machine.numCores = 2;
    check::DeterminismDriver driver(cfg);
    const check::DriverReport report = driver.check(figure1());

    std::printf("figure1: %s within the coverage of %d runs\n",
                report.deterministic() ? "externally DETERMINISTIC"
                                       : "NONDETERMINISTIC",
                report.runs);
    std::printf("  checking points: %llu deterministic, %llu not\n",
                static_cast<unsigned long long>(report.detPoints),
                static_cast<unsigned long long>(report.ndetPoints));
    std::printf("  HW-InstantCheck overhead: %.3f%% over native\n",
                (report.overheadFactor() - 1.0) * 100.0);

    // Step 2: peek at the Figure 2 hash algebra — per-thread Thread
    // Hashes differ across schedules while their sum (the State Hash)
    // does not.
    std::printf("\nper-run Thread Hashes (TH) and State Hash (SH):\n");
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        sim::MachineConfig mc;
        mc.numCores = 2;
        mc.schedSeed = seed;
        sim::Machine machine(mc);
        auto checker = std::make_unique<check::SwInstantCheckInc>(
            check::IgnoreSpec{}, true);
        checker->attach(machine);
        machine.setRunStartHandler([&] { checker->onRunStart(); });
        HashWord sh = 0;
        machine.setCheckpointHandler(
            [&](const sim::CheckpointInfo &info) {
                if (info.kind == sim::CheckpointKind::ProgramEnd)
                    sh = checker->checkpointHash().raw();
            });
        auto program = figure1()();
        machine.run(*program);
        std::printf("  seed %llu: TH0=%016llx TH1=%016llx  "
                    "SH=%016llx  G=%lld\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(
                        checker->threadHash(0).raw()),
                    static_cast<unsigned long long>(
                        checker->threadHash(1).raw()),
                    static_cast<unsigned long long>(sh),
                    static_cast<long long>(machine.memory().readValue(
                        machine.staticSegment().addressOf("G"), 8)));
    }
    std::printf("\nInternal nondeterminism (different THs), external "
                "determinism (same SH, same G == 12).\n");
    return 0;
}
