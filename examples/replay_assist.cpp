/**
 * @file
 * Deterministic-replay assist (Section 6.3).
 *
 * Records a racy run's schedule plus its InstantCheck state hash, then
 * shows the three uses of the hash: certifying an exact replay, hash-
 * verified search from a *partial* log (the modern low-overhead replay
 * approach), and early rejection of executions that diverge from the
 * original.
 *
 *   ./replay_assist
 */

#include <cstdio>
#include <memory>

#include "explore/replay.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;

namespace
{

check::ProgramFactory
racyWorkload()
{
    return [] {
        return std::make_unique<sim::LambdaProgram>(
            "racy", 3,
            [](sim::SetupCtx &ctx) {
                ctx.global("cells", mem::tArray(mem::tInt64(), 8));
            },
            [](sim::ThreadCtx &ctx) {
                const Addr cells = ctx.global("cells");
                for (int i = 0; i < 12; ++i) {
                    const Addr cell = cells + 8 * (i % 8);
                    const auto v = ctx.load<std::int64_t>(cell);
                    ctx.store<std::int64_t>(cell,
                                            v * 2 + ctx.tid() + 1);
                }
            });
    };
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 4;
    return cfg;
}

} // namespace

int
main()
{
    // Record the "original" (buggy, say) execution.
    const explore::ScheduleLog log =
        explore::recordRun(racyWorkload(), machineConfig(),
                           /*sched_seed=*/42);
    std::printf("recorded run: %zu scheduling decisions, state hash "
                "%016llx\n",
                log.choices.size(),
                static_cast<unsigned long long>(log.finalStateHash));

    // 1. Exact replay: the hash certifies the whole state was recreated
    // (so the programmer can inspect *all* variables, not just the bug).
    const HashWord replayed =
        explore::replayExact(racyWorkload(), machineConfig(), log);
    std::printf("exact replay: state hash %016llx -> %s\n",
                static_cast<unsigned long long>(replayed),
                replayed == log.finalStateHash ? "entire state "
                                                 "reproduced"
                                               : "MISMATCH");

    // 2. Partial-log search: keep a fraction of the log and search random
    // continuations; the state hash tells the searcher when it has found
    // an execution that recreates the original state.
    for (double fraction : {0.9, 0.6, 0.3}) {
        const explore::ReplaySearchResult result = explore::searchReplay(
            racyWorkload(), machineConfig(), log, fraction,
            /*max_attempts=*/2000);
        std::printf("partial log (%2.0f%% kept): %s after %d "
                    "attempt(s)\n",
                    fraction * 100,
                    result.reproduced ? "state reproduced"
                                      : "not reproduced",
                    result.attempts);
    }

    std::printf("\nSmaller logs need more search — and without the state "
                "hash the searcher could not cheaply tell a true\n"
                "reproduction from an execution that merely obeys the "
                "log (Section 6.3).\n");
    return 0;
}
