/**
 * @file
 * Filtering benign data races with fast state comparison (Section 6.1).
 *
 * Most reported data races are benign. InstantCheck makes the classifying
 * state comparison a 64-bit hash compare: run the program under many
 * schedules (exercising both orders of each race), detect races with a
 * happens-before detector, and check whether the final state hash is
 * schedule-invariant.
 *
 *   ./race_filter
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "race/benign_filter.hpp"
#include "race/race_detector.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;

namespace
{

const char *
verdictName(race::RaceVerdict verdict)
{
    switch (verdict) {
      case race::RaceVerdict::NoRaces: return "no races";
      case race::RaceVerdict::Benign:  return "BENIGN races";
      case race::RaceVerdict::Harmful: return "HARMFUL races";
    }
    return "?";
}

void
classify(const char *label, const check::ProgramFactory &factory)
{
    sim::MachineConfig mc;
    mc.numCores = 4;
    mc.minQuantum = 1;
    mc.maxQuantum = 6;
    const race::FilterReport report =
        race::classifyRaces(factory, mc, /*runs=*/10, /*base_seed=*/500);
    std::printf("  %-26s %-14s (%zu distinct races, %zu distinct final "
                "states over %d runs)\n",
                label, verdictName(report.verdict), report.races.size(),
                report.distinctStates, report.runs);
    if (report.races.empty())
        return;
    // Symbolize a few of the races against a fresh run's allocation map.
    sim::MachineConfig sym_cfg = mc;
    sym_cfg.schedSeed = 500;
    sim::Machine machine(sym_cfg);
    auto program = factory();
    machine.run(*program);
    const auto lines = race::describeRaces(report.races, machine);
    for (std::size_t i = 0; i < lines.size() && i < 3; ++i)
        std::printf("      %s\n", lines[i].c_str());
    if (lines.size() > 3)
        std::printf("      ... and %zu more\n", lines.size() - 3);
}

} // namespace

int
main()
{
    std::printf("Benign-race filtering via state-hash comparison:\n\n");

    // 1. Clean program: lock-protected counter.
    classify("locked counter", [] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<sim::LambdaProgram>(
            "locked", 4,
            [mutex_id](sim::SetupCtx &ctx) {
                ctx.global("c", mem::tInt64());
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 10; ++i) {
                    ctx.lock(*mutex_id);
                    ctx.store<std::int64_t>(
                        ctx.global("c"),
                        ctx.load<std::int64_t>(ctx.global("c")) + 1);
                    ctx.unlock(*mutex_id);
                }
            });
    });

    // 2. Benign race: volrend's hand-coded barrier spins on a flag that
    // is written under a lock but read without it. Racy, yet the program
    // is externally deterministic (Table 1).
    classify("volrend hand-coded barrier", [] {
        return std::make_unique<apps::Volrend>(4, /*frames=*/2,
                                               /*pixels=*/64);
    });

    // 3. Harmful race: last-writer-wins on a shared result.
    classify("last-writer-wins result", [] {
        return std::make_unique<sim::LambdaProgram>(
            "harmful", 4,
            [](sim::SetupCtx &ctx) { ctx.global("r", mem::tInt64()); },
            [](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 8; ++i)
                    ctx.store<std::int64_t>(ctx.global("r"),
                                            ctx.tid() * 100 + i);
            });
    });

    std::printf("\nNarayanasamy et al. report ~90%% of races are benign; "
                "InstantCheck reduces their state comparison to one\n"
                "64-bit compare per run (Section 6.1).\n");
    return 0;
}
