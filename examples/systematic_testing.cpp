/**
 * @file
 * Systematic testing with state-hash pruning (Section 6.2).
 *
 * CHESS-style systematic testing enumerates thread interleavings; the
 * search space explodes, so testers prune interleavings they can prove
 * equivalent. CHESS compares happens-before, which cannot see that two
 * different lock orders reached the same state — InstantCheck's state
 * hash can. This example explores the paper's Figure 1 program under
 * exhaustive, happens-before-pruned, state-hash-pruned, and
 * preemption-bounded searches.
 *
 *   ./systematic_testing
 */

#include <cstdio>
#include <memory>

#include "explore/explorer.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;

namespace
{

/** Figure 1 with three threads: lock-ordered G += L(tid). */
check::ProgramFactory
figure1(ThreadId threads)
{
    return [threads] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<sim::LambdaProgram>(
            "fig1", threads,
            [mutex_id](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"),
                                        g + 3 + ctx.tid());
                ctx.unlock(*mutex_id);
            });
    };
}

void
report(const char *label, const explore::ExploreResult &result)
{
    std::printf("  %-24s %6d runs, %3zu distinct final state(s), "
                "%llu branches pruned%s\n",
                label, result.runsExecuted, result.finalStates.size(),
                static_cast<unsigned long long>(result.branchesPruned +
                                                result
                                                    .branchesBoundedOut),
                result.exhausted ? "" : " (run cap hit)");
}

} // namespace

int
main()
{
    sim::MachineConfig mc;
    mc.numCores = 2;

    explore::ExploreConfig cfg;
    cfg.maxRuns = 20000;
    cfg.quantum = 1; // interleave at every memory access

    std::printf("Exploring every interleaving of Figure 1 with 3 "
                "threads:\n");
    cfg.prune = explore::PruneMode::None;
    report("exhaustive", explore::explore(figure1(3), mc, cfg));

    cfg.prune = explore::PruneMode::HappensBefore;
    report("happens-before pruning",
           explore::explore(figure1(3), mc, cfg));

    cfg.prune = explore::PruneMode::StateHash;
    report("state-hash pruning", explore::explore(figure1(3), mc, cfg));

    cfg.prune = explore::PruneMode::None;
    cfg.maxPreemptions = 1;
    report("preemption bound p=1", explore::explore(figure1(3), mc, cfg));

    std::printf(
        "\nAll searches agree on the final states (the program is\n"
        "externally deterministic: one state). Happens-before pruning\n"
        "cannot merge different lock-acquisition orders even though they\n"
        "reach identical states; the InstantCheck state hash can, which\n"
        "is the Section 6.2 speedup. Preemption bounding is the\n"
        "orthogonal CHESS trick and composes with either.\n");
    return 0;
}
