
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/race/test_race_detector.cpp" "tests/CMakeFiles/test_race.dir/race/test_race_detector.cpp.o" "gcc" "tests/CMakeFiles/test_race.dir/race/test_race_detector.cpp.o.d"
  "/root/repo/tests/race/test_vector_clock.cpp" "tests/CMakeFiles/test_race.dir/race/test_vector_clock.cpp.o" "gcc" "tests/CMakeFiles/test_race.dir/race/test_vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explore/CMakeFiles/icheck_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/icheck_race.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/icheck_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/icheck_check.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/icheck_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mhm/CMakeFiles/icheck_mhm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/icheck_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
