file(REMOVE_RECURSE
  "CMakeFiles/test_check.dir/check/test_checkers.cpp.o"
  "CMakeFiles/test_check.dir/check/test_checkers.cpp.o.d"
  "CMakeFiles/test_check.dir/check/test_distribution.cpp.o"
  "CMakeFiles/test_check.dir/check/test_distribution.cpp.o.d"
  "CMakeFiles/test_check.dir/check/test_driver.cpp.o"
  "CMakeFiles/test_check.dir/check/test_driver.cpp.o.d"
  "CMakeFiles/test_check.dir/check/test_driver_edge.cpp.o"
  "CMakeFiles/test_check.dir/check/test_driver_edge.cpp.o.d"
  "CMakeFiles/test_check.dir/check/test_ignore.cpp.o"
  "CMakeFiles/test_check.dir/check/test_ignore.cpp.o.d"
  "CMakeFiles/test_check.dir/check/test_infer.cpp.o"
  "CMakeFiles/test_check.dir/check/test_infer.cpp.o.d"
  "CMakeFiles/test_check.dir/check/test_localize.cpp.o"
  "CMakeFiles/test_check.dir/check/test_localize.cpp.o.d"
  "test_check"
  "test_check.pdb"
  "test_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
