file(REMOVE_RECURSE
  "CMakeFiles/test_hashing.dir/hashing/test_crc64.cpp.o"
  "CMakeFiles/test_hashing.dir/hashing/test_crc64.cpp.o.d"
  "CMakeFiles/test_hashing.dir/hashing/test_fp_round.cpp.o"
  "CMakeFiles/test_hashing.dir/hashing/test_fp_round.cpp.o.d"
  "CMakeFiles/test_hashing.dir/hashing/test_incremental.cpp.o"
  "CMakeFiles/test_hashing.dir/hashing/test_incremental.cpp.o.d"
  "CMakeFiles/test_hashing.dir/hashing/test_location_hash.cpp.o"
  "CMakeFiles/test_hashing.dir/hashing/test_location_hash.cpp.o.d"
  "CMakeFiles/test_hashing.dir/hashing/test_mod_hash.cpp.o"
  "CMakeFiles/test_hashing.dir/hashing/test_mod_hash.cpp.o.d"
  "CMakeFiles/test_hashing.dir/hashing/test_truncated_hash.cpp.o"
  "CMakeFiles/test_hashing.dir/hashing/test_truncated_hash.cpp.o.d"
  "test_hashing"
  "test_hashing.pdb"
  "test_hashing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
