file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_alloc.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_alloc.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_memory.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_memory.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_static_segment.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_static_segment.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_type_desc.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_type_desc.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
