file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_app_classes.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_app_classes.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_app_smoke.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_app_smoke.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_bug_seeds.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_bug_seeds.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_functional.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_functional.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_scales.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_scales.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_thread_sweep.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_thread_sweep.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
