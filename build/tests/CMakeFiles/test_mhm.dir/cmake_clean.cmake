file(REMOVE_RECURSE
  "CMakeFiles/test_mhm.dir/mhm/test_mhm.cpp.o"
  "CMakeFiles/test_mhm.dir/mhm/test_mhm.cpp.o.d"
  "CMakeFiles/test_mhm.dir/mhm/test_mhm_isa.cpp.o"
  "CMakeFiles/test_mhm.dir/mhm/test_mhm_isa.cpp.o.d"
  "test_mhm"
  "test_mhm.pdb"
  "test_mhm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mhm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
