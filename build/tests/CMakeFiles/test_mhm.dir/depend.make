# Empty dependencies file for test_mhm.
# This may be replaced when dependencies are built.
