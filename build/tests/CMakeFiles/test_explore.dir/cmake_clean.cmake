file(REMOVE_RECURSE
  "CMakeFiles/test_explore.dir/explore/test_context_bound.cpp.o"
  "CMakeFiles/test_explore.dir/explore/test_context_bound.cpp.o.d"
  "CMakeFiles/test_explore.dir/explore/test_explorer.cpp.o"
  "CMakeFiles/test_explore.dir/explore/test_explorer.cpp.o.d"
  "CMakeFiles/test_explore.dir/explore/test_replay.cpp.o"
  "CMakeFiles/test_explore.dir/explore/test_replay.cpp.o.d"
  "test_explore"
  "test_explore.pdb"
  "test_explore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
