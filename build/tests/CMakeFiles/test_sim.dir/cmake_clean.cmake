file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_determinism.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_determinism.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_hashing_window.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_hashing_window.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_interception.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_interception.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_misc.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_misc.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sched.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_sched.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sync.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_sync.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace_listener.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trace_listener.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
