# Empty compiler generated dependencies file for icheck.
# This may be replaced when dependencies are built.
