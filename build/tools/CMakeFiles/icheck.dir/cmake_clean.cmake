file(REMOVE_RECURSE
  "CMakeFiles/icheck.dir/icheck.cpp.o"
  "CMakeFiles/icheck.dir/icheck.cpp.o.d"
  "icheck"
  "icheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
