
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/alloc.cpp" "src/mem/CMakeFiles/icheck_mem.dir/alloc.cpp.o" "gcc" "src/mem/CMakeFiles/icheck_mem.dir/alloc.cpp.o.d"
  "/root/repo/src/mem/memory.cpp" "src/mem/CMakeFiles/icheck_mem.dir/memory.cpp.o" "gcc" "src/mem/CMakeFiles/icheck_mem.dir/memory.cpp.o.d"
  "/root/repo/src/mem/static_segment.cpp" "src/mem/CMakeFiles/icheck_mem.dir/static_segment.cpp.o" "gcc" "src/mem/CMakeFiles/icheck_mem.dir/static_segment.cpp.o.d"
  "/root/repo/src/mem/type_desc.cpp" "src/mem/CMakeFiles/icheck_mem.dir/type_desc.cpp.o" "gcc" "src/mem/CMakeFiles/icheck_mem.dir/type_desc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
