file(REMOVE_RECURSE
  "libicheck_mem.a"
)
