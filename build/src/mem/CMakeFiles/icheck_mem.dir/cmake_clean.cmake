file(REMOVE_RECURSE
  "CMakeFiles/icheck_mem.dir/alloc.cpp.o"
  "CMakeFiles/icheck_mem.dir/alloc.cpp.o.d"
  "CMakeFiles/icheck_mem.dir/memory.cpp.o"
  "CMakeFiles/icheck_mem.dir/memory.cpp.o.d"
  "CMakeFiles/icheck_mem.dir/static_segment.cpp.o"
  "CMakeFiles/icheck_mem.dir/static_segment.cpp.o.d"
  "CMakeFiles/icheck_mem.dir/type_desc.cpp.o"
  "CMakeFiles/icheck_mem.dir/type_desc.cpp.o.d"
  "libicheck_mem.a"
  "libicheck_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
