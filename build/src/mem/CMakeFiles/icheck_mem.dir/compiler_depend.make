# Empty compiler generated dependencies file for icheck_mem.
# This may be replaced when dependencies are built.
