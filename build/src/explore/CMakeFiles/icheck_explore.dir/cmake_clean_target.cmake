file(REMOVE_RECURSE
  "libicheck_explore.a"
)
