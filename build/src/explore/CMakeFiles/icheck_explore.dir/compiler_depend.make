# Empty compiler generated dependencies file for icheck_explore.
# This may be replaced when dependencies are built.
