file(REMOVE_RECURSE
  "CMakeFiles/icheck_explore.dir/explorer.cpp.o"
  "CMakeFiles/icheck_explore.dir/explorer.cpp.o.d"
  "CMakeFiles/icheck_explore.dir/replay.cpp.o"
  "CMakeFiles/icheck_explore.dir/replay.cpp.o.d"
  "libicheck_explore.a"
  "libicheck_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
