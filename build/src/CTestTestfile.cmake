# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("hashing")
subdirs("mem")
subdirs("cache")
subdirs("mhm")
subdirs("sim")
subdirs("check")
subdirs("race")
subdirs("explore")
subdirs("apps")
