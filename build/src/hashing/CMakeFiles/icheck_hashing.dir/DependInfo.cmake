
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/crc64.cpp" "src/hashing/CMakeFiles/icheck_hashing.dir/crc64.cpp.o" "gcc" "src/hashing/CMakeFiles/icheck_hashing.dir/crc64.cpp.o.d"
  "/root/repo/src/hashing/fp_round.cpp" "src/hashing/CMakeFiles/icheck_hashing.dir/fp_round.cpp.o" "gcc" "src/hashing/CMakeFiles/icheck_hashing.dir/fp_round.cpp.o.d"
  "/root/repo/src/hashing/location_hash.cpp" "src/hashing/CMakeFiles/icheck_hashing.dir/location_hash.cpp.o" "gcc" "src/hashing/CMakeFiles/icheck_hashing.dir/location_hash.cpp.o.d"
  "/root/repo/src/hashing/state_hash.cpp" "src/hashing/CMakeFiles/icheck_hashing.dir/state_hash.cpp.o" "gcc" "src/hashing/CMakeFiles/icheck_hashing.dir/state_hash.cpp.o.d"
  "/root/repo/src/hashing/truncated_hash.cpp" "src/hashing/CMakeFiles/icheck_hashing.dir/truncated_hash.cpp.o" "gcc" "src/hashing/CMakeFiles/icheck_hashing.dir/truncated_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
