# Empty compiler generated dependencies file for icheck_hashing.
# This may be replaced when dependencies are built.
