file(REMOVE_RECURSE
  "CMakeFiles/icheck_hashing.dir/crc64.cpp.o"
  "CMakeFiles/icheck_hashing.dir/crc64.cpp.o.d"
  "CMakeFiles/icheck_hashing.dir/fp_round.cpp.o"
  "CMakeFiles/icheck_hashing.dir/fp_round.cpp.o.d"
  "CMakeFiles/icheck_hashing.dir/location_hash.cpp.o"
  "CMakeFiles/icheck_hashing.dir/location_hash.cpp.o.d"
  "CMakeFiles/icheck_hashing.dir/state_hash.cpp.o"
  "CMakeFiles/icheck_hashing.dir/state_hash.cpp.o.d"
  "CMakeFiles/icheck_hashing.dir/truncated_hash.cpp.o"
  "CMakeFiles/icheck_hashing.dir/truncated_hash.cpp.o.d"
  "libicheck_hashing.a"
  "libicheck_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
