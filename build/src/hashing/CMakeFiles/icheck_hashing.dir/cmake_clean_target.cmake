file(REMOVE_RECURSE
  "libicheck_hashing.a"
)
