file(REMOVE_RECURSE
  "CMakeFiles/icheck_sim.dir/context.cpp.o"
  "CMakeFiles/icheck_sim.dir/context.cpp.o.d"
  "CMakeFiles/icheck_sim.dir/machine.cpp.o"
  "CMakeFiles/icheck_sim.dir/machine.cpp.o.d"
  "CMakeFiles/icheck_sim.dir/sched.cpp.o"
  "CMakeFiles/icheck_sim.dir/sched.cpp.o.d"
  "CMakeFiles/icheck_sim.dir/trace_listener.cpp.o"
  "CMakeFiles/icheck_sim.dir/trace_listener.cpp.o.d"
  "libicheck_sim.a"
  "libicheck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
