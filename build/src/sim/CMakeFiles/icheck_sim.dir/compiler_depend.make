# Empty compiler generated dependencies file for icheck_sim.
# This may be replaced when dependencies are built.
