file(REMOVE_RECURSE
  "libicheck_sim.a"
)
