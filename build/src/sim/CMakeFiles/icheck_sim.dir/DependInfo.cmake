
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/context.cpp" "src/sim/CMakeFiles/icheck_sim.dir/context.cpp.o" "gcc" "src/sim/CMakeFiles/icheck_sim.dir/context.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/icheck_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/icheck_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/sched.cpp" "src/sim/CMakeFiles/icheck_sim.dir/sched.cpp.o" "gcc" "src/sim/CMakeFiles/icheck_sim.dir/sched.cpp.o.d"
  "/root/repo/src/sim/trace_listener.cpp" "src/sim/CMakeFiles/icheck_sim.dir/trace_listener.cpp.o" "gcc" "src/sim/CMakeFiles/icheck_sim.dir/trace_listener.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/icheck_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/icheck_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mhm/CMakeFiles/icheck_mhm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
