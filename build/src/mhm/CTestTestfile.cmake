# CMake generated Testfile for 
# Source directory: /root/repo/src/mhm
# Build directory: /root/repo/build/src/mhm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
