# Empty dependencies file for icheck_mhm.
# This may be replaced when dependencies are built.
