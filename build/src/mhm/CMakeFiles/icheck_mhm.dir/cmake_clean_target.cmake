file(REMOVE_RECURSE
  "libicheck_mhm.a"
)
