file(REMOVE_RECURSE
  "CMakeFiles/icheck_mhm.dir/mhm.cpp.o"
  "CMakeFiles/icheck_mhm.dir/mhm.cpp.o.d"
  "libicheck_mhm.a"
  "libicheck_mhm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_mhm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
