
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/l1_cache.cpp" "src/cache/CMakeFiles/icheck_cache.dir/l1_cache.cpp.o" "gcc" "src/cache/CMakeFiles/icheck_cache.dir/l1_cache.cpp.o.d"
  "/root/repo/src/cache/write_buffer.cpp" "src/cache/CMakeFiles/icheck_cache.dir/write_buffer.cpp.o" "gcc" "src/cache/CMakeFiles/icheck_cache.dir/write_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
