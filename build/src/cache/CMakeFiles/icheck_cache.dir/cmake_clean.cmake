file(REMOVE_RECURSE
  "CMakeFiles/icheck_cache.dir/l1_cache.cpp.o"
  "CMakeFiles/icheck_cache.dir/l1_cache.cpp.o.d"
  "CMakeFiles/icheck_cache.dir/write_buffer.cpp.o"
  "CMakeFiles/icheck_cache.dir/write_buffer.cpp.o.d"
  "libicheck_cache.a"
  "libicheck_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
