# Empty compiler generated dependencies file for icheck_cache.
# This may be replaced when dependencies are built.
