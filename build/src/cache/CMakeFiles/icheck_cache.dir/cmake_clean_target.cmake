file(REMOVE_RECURSE
  "libicheck_cache.a"
)
