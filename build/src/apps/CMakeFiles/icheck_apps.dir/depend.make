# Empty dependencies file for icheck_apps.
# This may be replaced when dependencies are built.
