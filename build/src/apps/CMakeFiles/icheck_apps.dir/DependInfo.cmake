
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_registry.cpp" "src/apps/CMakeFiles/icheck_apps.dir/app_registry.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/app_registry.cpp.o.d"
  "/root/repo/src/apps/apps_bitdet.cpp" "src/apps/CMakeFiles/icheck_apps.dir/apps_bitdet.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/apps_bitdet.cpp.o.d"
  "/root/repo/src/apps/apps_fp.cpp" "src/apps/CMakeFiles/icheck_apps.dir/apps_fp.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/apps_fp.cpp.o.d"
  "/root/repo/src/apps/apps_ndet.cpp" "src/apps/CMakeFiles/icheck_apps.dir/apps_ndet.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/apps_ndet.cpp.o.d"
  "/root/repo/src/apps/apps_small_struct.cpp" "src/apps/CMakeFiles/icheck_apps.dir/apps_small_struct.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/apps_small_struct.cpp.o.d"
  "/root/repo/src/apps/apps_streamcluster.cpp" "src/apps/CMakeFiles/icheck_apps.dir/apps_streamcluster.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/apps_streamcluster.cpp.o.d"
  "/root/repo/src/apps/characterize.cpp" "src/apps/CMakeFiles/icheck_apps.dir/characterize.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/characterize.cpp.o.d"
  "/root/repo/src/apps/scales.cpp" "src/apps/CMakeFiles/icheck_apps.dir/scales.cpp.o" "gcc" "src/apps/CMakeFiles/icheck_apps.dir/scales.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/icheck_check.dir/DependInfo.cmake"
  "/root/repo/build/src/mhm/CMakeFiles/icheck_mhm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/icheck_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/icheck_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
