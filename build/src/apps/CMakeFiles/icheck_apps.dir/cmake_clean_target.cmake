file(REMOVE_RECURSE
  "libicheck_apps.a"
)
