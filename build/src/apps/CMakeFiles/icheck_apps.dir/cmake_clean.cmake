file(REMOVE_RECURSE
  "CMakeFiles/icheck_apps.dir/app_registry.cpp.o"
  "CMakeFiles/icheck_apps.dir/app_registry.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/apps_bitdet.cpp.o"
  "CMakeFiles/icheck_apps.dir/apps_bitdet.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/apps_fp.cpp.o"
  "CMakeFiles/icheck_apps.dir/apps_fp.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/apps_ndet.cpp.o"
  "CMakeFiles/icheck_apps.dir/apps_ndet.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/apps_small_struct.cpp.o"
  "CMakeFiles/icheck_apps.dir/apps_small_struct.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/apps_streamcluster.cpp.o"
  "CMakeFiles/icheck_apps.dir/apps_streamcluster.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/characterize.cpp.o"
  "CMakeFiles/icheck_apps.dir/characterize.cpp.o.d"
  "CMakeFiles/icheck_apps.dir/scales.cpp.o"
  "CMakeFiles/icheck_apps.dir/scales.cpp.o.d"
  "libicheck_apps.a"
  "libicheck_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
