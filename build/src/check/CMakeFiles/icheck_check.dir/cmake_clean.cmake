file(REMOVE_RECURSE
  "CMakeFiles/icheck_check.dir/checker.cpp.o"
  "CMakeFiles/icheck_check.dir/checker.cpp.o.d"
  "CMakeFiles/icheck_check.dir/distribution.cpp.o"
  "CMakeFiles/icheck_check.dir/distribution.cpp.o.d"
  "CMakeFiles/icheck_check.dir/driver.cpp.o"
  "CMakeFiles/icheck_check.dir/driver.cpp.o.d"
  "CMakeFiles/icheck_check.dir/hw_inc.cpp.o"
  "CMakeFiles/icheck_check.dir/hw_inc.cpp.o.d"
  "CMakeFiles/icheck_check.dir/ignore.cpp.o"
  "CMakeFiles/icheck_check.dir/ignore.cpp.o.d"
  "CMakeFiles/icheck_check.dir/infer.cpp.o"
  "CMakeFiles/icheck_check.dir/infer.cpp.o.d"
  "CMakeFiles/icheck_check.dir/io_hash.cpp.o"
  "CMakeFiles/icheck_check.dir/io_hash.cpp.o.d"
  "CMakeFiles/icheck_check.dir/localize.cpp.o"
  "CMakeFiles/icheck_check.dir/localize.cpp.o.d"
  "CMakeFiles/icheck_check.dir/region.cpp.o"
  "CMakeFiles/icheck_check.dir/region.cpp.o.d"
  "CMakeFiles/icheck_check.dir/sw_inc.cpp.o"
  "CMakeFiles/icheck_check.dir/sw_inc.cpp.o.d"
  "CMakeFiles/icheck_check.dir/sw_tr.cpp.o"
  "CMakeFiles/icheck_check.dir/sw_tr.cpp.o.d"
  "libicheck_check.a"
  "libicheck_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
