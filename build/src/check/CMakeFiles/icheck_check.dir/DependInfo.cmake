
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/checker.cpp" "src/check/CMakeFiles/icheck_check.dir/checker.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/checker.cpp.o.d"
  "/root/repo/src/check/distribution.cpp" "src/check/CMakeFiles/icheck_check.dir/distribution.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/distribution.cpp.o.d"
  "/root/repo/src/check/driver.cpp" "src/check/CMakeFiles/icheck_check.dir/driver.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/driver.cpp.o.d"
  "/root/repo/src/check/hw_inc.cpp" "src/check/CMakeFiles/icheck_check.dir/hw_inc.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/hw_inc.cpp.o.d"
  "/root/repo/src/check/ignore.cpp" "src/check/CMakeFiles/icheck_check.dir/ignore.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/ignore.cpp.o.d"
  "/root/repo/src/check/infer.cpp" "src/check/CMakeFiles/icheck_check.dir/infer.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/infer.cpp.o.d"
  "/root/repo/src/check/io_hash.cpp" "src/check/CMakeFiles/icheck_check.dir/io_hash.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/io_hash.cpp.o.d"
  "/root/repo/src/check/localize.cpp" "src/check/CMakeFiles/icheck_check.dir/localize.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/localize.cpp.o.d"
  "/root/repo/src/check/region.cpp" "src/check/CMakeFiles/icheck_check.dir/region.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/region.cpp.o.d"
  "/root/repo/src/check/sw_inc.cpp" "src/check/CMakeFiles/icheck_check.dir/sw_inc.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/sw_inc.cpp.o.d"
  "/root/repo/src/check/sw_tr.cpp" "src/check/CMakeFiles/icheck_check.dir/sw_tr.cpp.o" "gcc" "src/check/CMakeFiles/icheck_check.dir/sw_tr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/icheck_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mhm/CMakeFiles/icheck_mhm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/icheck_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
