file(REMOVE_RECURSE
  "libicheck_check.a"
)
