# Empty dependencies file for icheck_check.
# This may be replaced when dependencies are built.
