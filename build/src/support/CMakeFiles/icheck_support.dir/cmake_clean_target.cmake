file(REMOVE_RECURSE
  "libicheck_support.a"
)
