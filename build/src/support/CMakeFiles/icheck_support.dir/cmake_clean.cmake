file(REMOVE_RECURSE
  "CMakeFiles/icheck_support.dir/logging.cpp.o"
  "CMakeFiles/icheck_support.dir/logging.cpp.o.d"
  "CMakeFiles/icheck_support.dir/stats.cpp.o"
  "CMakeFiles/icheck_support.dir/stats.cpp.o.d"
  "libicheck_support.a"
  "libicheck_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
