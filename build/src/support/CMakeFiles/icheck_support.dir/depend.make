# Empty dependencies file for icheck_support.
# This may be replaced when dependencies are built.
