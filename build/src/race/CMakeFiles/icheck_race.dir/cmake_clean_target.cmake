file(REMOVE_RECURSE
  "libicheck_race.a"
)
