# Empty dependencies file for icheck_race.
# This may be replaced when dependencies are built.
