
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/benign_filter.cpp" "src/race/CMakeFiles/icheck_race.dir/benign_filter.cpp.o" "gcc" "src/race/CMakeFiles/icheck_race.dir/benign_filter.cpp.o.d"
  "/root/repo/src/race/race_detector.cpp" "src/race/CMakeFiles/icheck_race.dir/race_detector.cpp.o" "gcc" "src/race/CMakeFiles/icheck_race.dir/race_detector.cpp.o.d"
  "/root/repo/src/race/vector_clock.cpp" "src/race/CMakeFiles/icheck_race.dir/vector_clock.cpp.o" "gcc" "src/race/CMakeFiles/icheck_race.dir/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/icheck_check.dir/DependInfo.cmake"
  "/root/repo/build/src/mhm/CMakeFiles/icheck_mhm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/icheck_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/icheck_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/icheck_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
