file(REMOVE_RECURSE
  "CMakeFiles/icheck_race.dir/benign_filter.cpp.o"
  "CMakeFiles/icheck_race.dir/benign_filter.cpp.o.d"
  "CMakeFiles/icheck_race.dir/race_detector.cpp.o"
  "CMakeFiles/icheck_race.dir/race_detector.cpp.o.d"
  "CMakeFiles/icheck_race.dir/vector_clock.cpp.o"
  "CMakeFiles/icheck_race.dir/vector_clock.cpp.o.d"
  "libicheck_race.a"
  "libicheck_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icheck_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
