# Empty dependencies file for ablation_hashwidth.
# This may be replaced when dependencies are built.
