file(REMOVE_RECURSE
  "CMakeFiles/ablation_hashwidth.dir/ablation_hashwidth.cpp.o"
  "CMakeFiles/ablation_hashwidth.dir/ablation_hashwidth.cpp.o.d"
  "ablation_hashwidth"
  "ablation_hashwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hashwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
