file(REMOVE_RECURSE
  "CMakeFiles/table1_determinism.dir/table1_determinism.cpp.o"
  "CMakeFiles/table1_determinism.dir/table1_determinism.cpp.o.d"
  "table1_determinism"
  "table1_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
