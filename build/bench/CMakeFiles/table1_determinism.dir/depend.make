# Empty dependencies file for table1_determinism.
# This may be replaced when dependencies are built.
