file(REMOVE_RECURSE
  "CMakeFiles/micro_mhm.dir/micro_mhm.cpp.o"
  "CMakeFiles/micro_mhm.dir/micro_mhm.cpp.o.d"
  "micro_mhm"
  "micro_mhm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mhm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
