# Empty dependencies file for micro_mhm.
# This may be replaced when dependencies are built.
