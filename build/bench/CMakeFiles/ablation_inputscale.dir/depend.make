# Empty dependencies file for ablation_inputscale.
# This may be replaced when dependencies are built.
