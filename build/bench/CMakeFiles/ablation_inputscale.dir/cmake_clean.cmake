file(REMOVE_RECURSE
  "CMakeFiles/ablation_inputscale.dir/ablation_inputscale.cpp.o"
  "CMakeFiles/ablation_inputscale.dir/ablation_inputscale.cpp.o.d"
  "ablation_inputscale"
  "ablation_inputscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inputscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
