file(REMOVE_RECURSE
  "CMakeFiles/fig5_distributions.dir/fig5_distributions.cpp.o"
  "CMakeFiles/fig5_distributions.dir/fig5_distributions.cpp.o.d"
  "fig5_distributions"
  "fig5_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
