# Empty dependencies file for fig8_bug_distributions.
# This may be replaced when dependencies are built.
