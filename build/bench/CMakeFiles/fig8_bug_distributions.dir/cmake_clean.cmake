file(REMOVE_RECURSE
  "CMakeFiles/fig8_bug_distributions.dir/fig8_bug_distributions.cpp.o"
  "CMakeFiles/fig8_bug_distributions.dir/fig8_bug_distributions.cpp.o.d"
  "fig8_bug_distributions"
  "fig8_bug_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bug_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
