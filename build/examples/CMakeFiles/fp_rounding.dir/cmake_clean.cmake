file(REMOVE_RECURSE
  "CMakeFiles/fp_rounding.dir/fp_rounding.cpp.o"
  "CMakeFiles/fp_rounding.dir/fp_rounding.cpp.o.d"
  "fp_rounding"
  "fp_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
