# Empty dependencies file for fp_rounding.
# This may be replaced when dependencies are built.
