# Empty dependencies file for race_filter.
# This may be replaced when dependencies are built.
