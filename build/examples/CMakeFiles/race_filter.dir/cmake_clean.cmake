file(REMOVE_RECURSE
  "CMakeFiles/race_filter.dir/race_filter.cpp.o"
  "CMakeFiles/race_filter.dir/race_filter.cpp.o.d"
  "race_filter"
  "race_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
