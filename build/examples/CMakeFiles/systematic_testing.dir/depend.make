# Empty dependencies file for systematic_testing.
# This may be replaced when dependencies are built.
