file(REMOVE_RECURSE
  "CMakeFiles/systematic_testing.dir/systematic_testing.cpp.o"
  "CMakeFiles/systematic_testing.dir/systematic_testing.cpp.o.d"
  "systematic_testing"
  "systematic_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systematic_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
