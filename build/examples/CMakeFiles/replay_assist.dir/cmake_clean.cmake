file(REMOVE_RECURSE
  "CMakeFiles/replay_assist.dir/replay_assist.cpp.o"
  "CMakeFiles/replay_assist.dir/replay_assist.cpp.o.d"
  "replay_assist"
  "replay_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
