# Empty compiler generated dependencies file for replay_assist.
# This may be replaced when dependencies are built.
