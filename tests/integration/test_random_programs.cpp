/**
 * @file
 * Property-based fuzzing of the whole stack: generate random parallel
 * programs (mixed-width stores, FP accumulation, locked sections,
 * malloc/free churn, barriers) and assert the system's core invariants on
 * each — tri-scheme hash equality, run reproducibility, and verdict
 * consistency across schemes.
 */

#include <gtest/gtest.h>
#include <memory>

#include "check/checker.hpp"
#include "check/driver.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace icheck
{
namespace
{

/**
 * A random program: @p rounds barrier-separated rounds; per round each
 * thread performs a seeded mix of typed stores, loads, locked FP
 * read-modify-writes, and allocation churn over a shared arena.
 */
check::ProgramFactory
randomProgram(std::uint64_t program_seed)
{
    return [program_seed] {
        struct Ids
        {
            sim::MutexId mutex = 0;
            sim::BarrierId barrier = 0;
        };
        auto ids = std::make_shared<Ids>();
        return std::make_unique<sim::LambdaProgram>(
            "fuzz" + std::to_string(program_seed), 4,
            [ids](sim::SetupCtx &ctx) {
                ctx.global("arena", mem::tArray(mem::tInt64(), 64));
                ctx.global("facc", mem::tDouble());
                ctx.init<double>(ctx.addressOf("facc"), 0.0005);
                ids->mutex = ctx.mutex();
                ids->barrier = ctx.barrier(4);
            },
            [ids, program_seed](sim::ThreadCtx &ctx) {
                Xoshiro256 gen(program_seed * 1000003 + ctx.tid());
                const Addr arena = ctx.global("arena");
                const Addr facc = ctx.global("facc");
                Addr block = 0;
                for (int round = 0; round < 3; ++round) {
                    for (int op = 0; op < 12; ++op) {
                        switch (gen.below(6)) {
                          case 0: {
                            // Typed store into this thread's arena slice.
                            const Addr slot =
                                arena +
                                8 * (ctx.tid() * 16 + gen.below(16));
                            switch (gen.below(3)) {
                              case 0:
                                ctx.store<std::uint8_t>(
                                    slot, static_cast<std::uint8_t>(
                                              gen.next()));
                                break;
                              case 1:
                                ctx.store<std::uint16_t>(
                                    slot + 2,
                                    static_cast<std::uint16_t>(
                                        gen.next()));
                                break;
                              default:
                                ctx.store<std::int64_t>(
                                    slot, static_cast<std::int64_t>(
                                              gen.next()));
                            }
                            break;
                          }
                          case 1:
                            (void)ctx.load<std::int64_t>(
                                arena + 8 * gen.below(64));
                            break;
                          case 2: {
                            // Locked FP accumulation (schedule-ordered).
                            ctx.lock(ids->mutex);
                            const double term =
                                1.0 / (2.0 + gen.below(7));
                            ctx.store<double>(
                                facc, ctx.load<double>(facc) + term);
                            ctx.unlock(ids->mutex);
                            break;
                          }
                          case 3:
                            if (block == 0) {
                                block = ctx.malloc(
                                    "fuzz.cpp:blk",
                                    mem::tArray(mem::tDouble(), 4));
                            }
                            break;
                          case 4:
                            if (block != 0) {
                                ctx.store<double>(
                                    block + 8 * gen.below(4),
                                    gen.uniform());
                            }
                            break;
                          default:
                            if (block != 0 && gen.chance(0.3)) {
                                ctx.free(block);
                                block = 0;
                            } else {
                                ctx.tick(5);
                            }
                        }
                    }
                    ctx.barrier(ids->barrier);
                }
                if (block != 0)
                    ctx.free(block);
            });
    };
}

std::vector<HashWord>
traceOf(const check::ProgramFactory &factory, check::Scheme scheme,
        std::uint64_t sched_seed, mem::ReplayLog *log,
        mem::DeterministicAllocator::Mode mode)
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = sched_seed;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 7;
    sim::Machine machine(cfg, log, mode);
    auto checker = check::makeChecker(scheme);
    checker->attach(machine);
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    std::vector<HashWord> trace;
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
        trace.push_back(checker->checkpointHash().raw());
    });
    auto program = factory();
    machine.run(*program);
    return trace;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomPrograms, TriSchemeEqualityHolds)
{
    const auto factory = randomProgram(GetParam());
    for (std::uint64_t sched_seed : {4u, 91u}) {
        mem::ReplayLog log;
        const auto hw =
            traceOf(factory, check::Scheme::HwInc, sched_seed, &log,
                    mem::DeterministicAllocator::Mode::Record);
        const auto sw =
            traceOf(factory, check::Scheme::SwInc, sched_seed, &log,
                    mem::DeterministicAllocator::Mode::Replay);
        const auto tr =
            traceOf(factory, check::Scheme::SwTr, sched_seed, &log,
                    mem::DeterministicAllocator::Mode::Replay);
        ASSERT_EQ(hw.size(), 4u) << "3 barriers + program end";
        EXPECT_EQ(hw, sw) << "sched seed " << sched_seed;
        EXPECT_EQ(hw, tr) << "sched seed " << sched_seed;
    }
}

TEST_P(RandomPrograms, RunsAreReproducible)
{
    const auto factory = randomProgram(GetParam());
    mem::ReplayLog log_a, log_b;
    const auto a = traceOf(factory, check::Scheme::HwInc, 17, &log_a,
                           mem::DeterministicAllocator::Mode::Record);
    const auto b = traceOf(factory, check::Scheme::HwInc, 17, &log_b,
                           mem::DeterministicAllocator::Mode::Record);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto &info) {
                             return "p" + std::to_string(info.param);
                         });

} // namespace
} // namespace icheck
