/**
 * @file
 * The strongest whole-system property: on every one of the 17 workloads,
 * for the same seed, HW-InstantCheck-Inc, SW-InstantCheck-Inc, and
 * SW-InstantCheck-Tr produce bit-identical checkpoint hash sequences —
 * hardware hashing, instrumented-store hashing, and full-state traversal
 * all distill the same state.
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "check/checker.hpp"
#include "sim/machine.hpp"

namespace icheck
{
namespace
{

std::vector<HashWord>
runScheme(const apps::AppInfo &app, check::Scheme scheme,
          std::uint64_t seed, mem::ReplayLog *log,
          mem::DeterministicAllocator::Mode mode)
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.schedSeed = seed;
    cfg.fpRoundingEnabled = true;
    sim::Machine machine(cfg, log, mode);
    auto checker = check::makeChecker(scheme, app.ignores);
    checker->attach(machine);
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    std::vector<HashWord> trace;
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
        trace.push_back(checker->checkpointHash().raw());
    });
    auto program = app.factory();
    machine.run(*program);
    return trace;
}

class CrossSchemeApps : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CrossSchemeApps, ThreeSchemesProduceIdenticalHashes)
{
    const apps::AppInfo &app = apps::findApp(GetParam());
    for (std::uint64_t seed : {3u, 77u}) {
        mem::ReplayLog log;
        const auto hw =
            runScheme(app, check::Scheme::HwInc, seed, &log,
                      mem::DeterministicAllocator::Mode::Record);
        const auto sw =
            runScheme(app, check::Scheme::SwInc, seed, &log,
                      mem::DeterministicAllocator::Mode::Replay);
        const auto tr =
            runScheme(app, check::Scheme::SwTr, seed, &log,
                      mem::DeterministicAllocator::Mode::Replay);
        ASSERT_FALSE(hw.empty());
        EXPECT_EQ(hw, sw) << "seed " << seed;
        EXPECT_EQ(hw, tr) << "seed " << seed;
    }
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const apps::AppInfo &app : apps::registry())
        names.push_back(app.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, CrossSchemeApps,
                         ::testing::ValuesIn(appNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace icheck
