/**
 * @file
 * End-to-end reproductions of the paper's worked examples: the Figure 1/2
 * external-determinism example with its Thread Hash algebra, and the
 * Section 2.2 deletion example, run through the full machine + checker
 * stack.
 */

#include <gtest/gtest.h>
#include <memory>
#include <set>

#include "check/driver.hpp"
#include "check/sw_inc.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck
{
namespace
{

using check::Scheme;
using sim::LambdaProgram;

/** The Figure 1 fragment: two threads do G += L under a lock. */
std::unique_ptr<LambdaProgram>
figure1(std::shared_ptr<sim::MutexId> mutex_id)
{
    return std::make_unique<LambdaProgram>(
        "figure1", 2,
        [mutex_id](sim::SetupCtx &ctx) {
            const Addr g = ctx.global("G", mem::tInt64());
            ctx.init<std::int64_t>(g, 2);
            *mutex_id = ctx.mutex();
        },
        [mutex_id](sim::ThreadCtx &ctx) {
            const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
            ctx.lock(*mutex_id);
            const auto g = ctx.load<std::int64_t>(ctx.global("G"));
            ctx.store<std::int64_t>(ctx.global("G"), g + local);
            ctx.unlock(*mutex_id);
        });
}

struct Fig1Run
{
    HashWord stateHash;
    HashWord th0;
    HashWord th1;
    std::int64_t finalG;
};

Fig1Run
runFigure1(std::uint64_t sched_seed)
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = sched_seed;
    sim::Machine machine(cfg);
    auto checker = std::make_unique<check::SwInstantCheckInc>(
        check::IgnoreSpec{}, true);
    checker->attach(machine);
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    Fig1Run out{};
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &info) {
        if (info.kind == sim::CheckpointKind::ProgramEnd) {
            out.stateHash = checker->checkpointHash().raw();
            out.th0 = checker->threadHash(0).raw();
            out.th1 = checker->threadHash(1).raw();
        }
    });
    auto mutex_id = std::make_shared<sim::MutexId>();
    auto prog = figure1(mutex_id);
    machine.run(*prog);
    out.finalG = static_cast<std::int64_t>(machine.memory().readValue(
        machine.staticSegment().addressOf("G"), 8));
    return out;
}

TEST(PaperExamples, Figure1ExternallyDeterministic)
{
    // Across many schedules: G always ends at 12 and the State Hash is
    // identical, while the per-thread hashes differ between the
    // "thread 0 first" and "thread 1 first" orders (Figure 2).
    std::set<HashWord> state_hashes;
    std::set<std::pair<HashWord, HashWord>> th_pairs;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        const Fig1Run run = runFigure1(seed);
        EXPECT_EQ(run.finalG, 12);
        state_hashes.insert(run.stateHash);
        th_pairs.insert({run.th0, run.th1});
    }
    EXPECT_EQ(state_hashes.size(), 1u)
        << "external determinism: one State Hash";
    EXPECT_GT(th_pairs.size(), 1u)
        << "internal nondeterminism: different TH splits (Figure 2)";
}

TEST(PaperExamples, Figure1WithoutLockIsNondeterministic)
{
    // Remove the lock: the load/store pair races and some interleavings
    // lose an update (G == 9 or G == 5 instead of 12). InstantCheck must
    // flag it.
    check::DriverConfig cfg;
    cfg.scheme = Scheme::HwInc;
    cfg.runs = 20;
    cfg.machine.numCores = 2;
    cfg.machine.minQuantum = 1;
    cfg.machine.maxQuantum = 3;
    check::DeterminismDriver driver(cfg);
    const auto report = driver.check([] {
        return std::make_unique<LambdaProgram>(
            "fig1racy", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
            });
    });
    EXPECT_FALSE(report.deterministic());
}

TEST(PaperExamples, BarrierOverlapsHashGathering)
{
    // Section 2.2: the State Hash is typically computed at barriers. Check
    // that N barrier checkpoints produce N identical hashes across seeds
    // for a phase-structured deterministic program.
    auto factory = [] {
        auto barrier_id = std::make_shared<sim::BarrierId>();
        return std::make_unique<LambdaProgram>(
            "phases", 4,
            [barrier_id](sim::SetupCtx &ctx) {
                ctx.global("grid", mem::tArray(mem::tInt64(), 32));
                *barrier_id = ctx.barrier(4);
            },
            [barrier_id](sim::ThreadCtx &ctx) {
                const Addr grid = ctx.global("grid");
                for (int phase = 0; phase < 4; ++phase) {
                    // Owner-computes: disjoint slices, deterministic.
                    for (int i = 0; i < 8; ++i) {
                        const Addr slot =
                            grid + 8 * (ctx.tid() * 8 + i);
                        ctx.store<std::int64_t>(
                            slot, ctx.load<std::int64_t>(slot) +
                                      phase * 10 + ctx.tid());
                    }
                    ctx.barrier(*barrier_id);
                }
            });
    };
    check::DriverConfig cfg;
    cfg.scheme = Scheme::HwInc;
    cfg.runs = 10;
    cfg.machine.numCores = 4;
    check::DeterminismDriver driver(cfg);
    const auto report = driver.check(factory);
    EXPECT_TRUE(report.deterministic());
    EXPECT_EQ(report.distributions.size(), 5u) << "4 barriers + end";
    EXPECT_EQ(report.detPoints, 5u);
}

} // namespace
} // namespace icheck
