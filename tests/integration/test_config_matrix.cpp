/**
 * @file
 * End-to-end configuration matrix: the State Hash of a run must be
 * invariant to *implementation* choices — location hasher construction
 * cannot change verdicts, the clustered MHM must equal the basic MHM, and
 * write-buffer drain policy must not matter (Section 3.2's ordering
 * freedom, verified through the whole machine rather than unit-level).
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "check/checker.hpp"
#include "sim/machine.hpp"

namespace icheck
{
namespace
{

struct MatrixParam
{
    hashing::HasherKind hasher;
    bool clustered;
    std::size_t clusters;
    mhm::DispatchPolicy dispatch;
    cache::DrainPolicy drain;
    std::string label;
};

std::vector<HashWord>
runWith(const MatrixParam &param, const apps::AppInfo &app,
        std::uint64_t seed)
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.schedSeed = seed;
    cfg.hasherKind = param.hasher;
    cfg.mhmCfg.clustered = param.clustered;
    cfg.mhmCfg.clusters = param.clusters;
    cfg.mhmCfg.dispatch = param.dispatch;
    cfg.mhmCfg.dispatchSeed = seed * 31 + 7;
    cfg.wbPolicy = param.drain;
    sim::Machine machine(cfg);
    auto checker = check::makeChecker(check::Scheme::HwInc, app.ignores);
    checker->attach(machine);
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    std::vector<HashWord> trace;
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
        trace.push_back(checker->checkpointHash().raw());
    });
    auto program = app.factory();
    machine.run(*program);
    return trace;
}

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

TEST_P(ConfigMatrix, MicroarchitectureChoicesDoNotChangeTheHash)
{
    const MatrixParam &param = GetParam();
    // Reference: same hasher, basic MHM, FIFO drain. The hash value
    // itself depends on the hasher kind, so compare within-kind.
    MatrixParam reference = param;
    reference.clustered = false;
    reference.drain = cache::DrainPolicy::Fifo;

    for (const char *name : {"fft", "cholesky", "canneal"}) {
        const apps::AppInfo &app = apps::findApp(name);
        const auto expected = runWith(reference, app, 11);
        const auto actual = runWith(param, app, 11);
        EXPECT_EQ(actual, expected) << name << " under " << param.label;
    }
}

TEST_P(ConfigMatrix, VerdictsAreImplementationIndependent)
{
    // A deterministic app stays deterministic and a nondeterministic one
    // stays nondeterministic under every microarchitecture.
    const MatrixParam &param = GetParam();
    auto hashes_for = [&](const char *name, std::uint64_t seed) {
        return runWith(param, apps::findApp(name), seed);
    };
    EXPECT_EQ(hashes_for("radix", 21), hashes_for("radix", 22))
        << "radix must stay deterministic under " << param.label;
    std::set<std::vector<HashWord>> canneal_traces;
    for (std::uint64_t seed = 31; seed < 37; ++seed)
        canneal_traces.insert(hashes_for("canneal", seed));
    EXPECT_GT(canneal_traces.size(), 1u)
        << "canneal must stay nondeterministic under " << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Microarchitectures, ConfigMatrix,
    ::testing::Values(
        MatrixParam{hashing::HasherKind::Crc64, false, 0,
                    mhm::DispatchPolicy::RoundRobin,
                    cache::DrainPolicy::Fifo, "crc64_basic_fifo"},
        MatrixParam{hashing::HasherKind::Mix64, false, 0,
                    mhm::DispatchPolicy::RoundRobin,
                    cache::DrainPolicy::Fifo, "mix64_basic_fifo"},
        MatrixParam{hashing::HasherKind::Crc64, true, 4,
                    mhm::DispatchPolicy::RoundRobin,
                    cache::DrainPolicy::Fifo, "crc64_clustered4_fifo"},
        MatrixParam{hashing::HasherKind::Crc64, true, 8,
                    mhm::DispatchPolicy::Random,
                    cache::DrainPolicy::Fifo,
                    "crc64_clustered8rand_fifo"},
        MatrixParam{hashing::HasherKind::Crc64, false, 0,
                    mhm::DispatchPolicy::RoundRobin,
                    cache::DrainPolicy::Lifo, "crc64_basic_lifo"},
        MatrixParam{hashing::HasherKind::Crc64, true, 16,
                    mhm::DispatchPolicy::Random,
                    cache::DrainPolicy::Random,
                    "crc64_clustered16rand_randomdrain"},
        MatrixParam{hashing::HasherKind::Mix64, true, 2,
                    mhm::DispatchPolicy::Random,
                    cache::DrainPolicy::Random,
                    "mix64_clustered2rand_randomdrain"}),
    [](const auto &info) { return info.param.label; });

} // namespace
} // namespace icheck
