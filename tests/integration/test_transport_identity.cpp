/**
 * @file
 * Byte-identity contract of the event transport: the canonical rendered
 * report of a campaign (`icheck check --json` bytes) must be identical
 * with the transport off, inline, or async, at any ring capacity, and at
 * any worker count. The transport is pure plumbing — if it ever changes a
 * verdict byte, it has reordered or dropped an event.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/driver.hpp"
#include "check/report_json.hpp"
#include "runtime/parallel_driver.hpp"
#include "sim/lambda_program.hpp"

namespace icheck
{
namespace
{

using check::DriverConfig;
using check::ProgramFactory;
using check::Scheme;
using check::TransportMode;
using sim::LambdaProgram;

DriverConfig
baseConfig()
{
    DriverConfig cfg;
    cfg.scheme = Scheme::HwInc;
    cfg.runs = 8;
    cfg.machine.numCores = 4;
    cfg.machine.minQuantum = 2;
    cfg.machine.maxQuantum = 10;
    return cfg;
}

/** Deterministic: per-thread partial sums merged under a lock. */
ProgramFactory
deterministicFactory()
{
    return [] {
        auto ids = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "det", 4,
            [ids](sim::SetupCtx &ctx) {
                ctx.global("sum", mem::tInt64());
                *ids = ctx.mutex();
            },
            [ids](sim::ThreadCtx &ctx) {
                std::int64_t local = 0;
                for (int i = 0; i < 8; ++i)
                    local += ctx.tid() * 8 + i;
                ctx.lock(*ids);
                const Addr sum = ctx.global("sum");
                ctx.store<std::int64_t>(
                    sum, ctx.load<std::int64_t>(sum) + local);
                ctx.unlock(*ids);
                ctx.outputValue<std::int64_t>(local);
            });
    };
}

/** Racy last-writer-wins: nondeterministic, so the report carries
 *  divergence structure that must also be reproduced byte for byte. */
ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racy", 4,
            [](sim::SetupCtx &ctx) { ctx.global("w", mem::tInt64()); },
            [](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 10; ++i)
                    ctx.store<std::int64_t>(ctx.global("w"),
                                            ctx.tid() * 100 + i);
                ctx.outputValue<std::int64_t>(
                    ctx.load<std::int64_t>(ctx.global("w")));
            });
    };
}

std::string
renderWith(const ProgramFactory &factory, TransportMode mode,
           std::size_t ring_capacity, int jobs)
{
    DriverConfig cfg = baseConfig();
    cfg.transport = mode;
    cfg.transportRingCapacity = ring_capacity;
    runtime::CampaignOptions options;
    options.jobs = jobs;
    const check::DriverReport report =
        runtime::runCampaign(cfg, factory, options);
    return check::renderReportJson(report);
}

class TransportIdentity : public ::testing::TestWithParam<bool>
{
  protected:
    ProgramFactory
    factory() const
    {
        return GetParam() ? racyFactory() : deterministicFactory();
    }
};

TEST_P(TransportIdentity, ReportBytesInvariantToTransportMode)
{
    const ProgramFactory factory = this->factory();
    const std::string off = renderWith(factory, TransportMode::Off, 1024, 1);
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(renderWith(factory, TransportMode::Inline, 1024, 1), off);
    EXPECT_EQ(renderWith(factory, TransportMode::Async, 1024, 1), off);
}

TEST_P(TransportIdentity, ReportBytesInvariantToRingCapacity)
{
    const ProgramFactory factory = this->factory();
    const std::string off = renderWith(factory, TransportMode::Off, 1024, 1);
    for (std::size_t capacity : {1u, 2u, 64u}) {
        EXPECT_EQ(renderWith(factory, TransportMode::Inline, capacity, 1),
                  off)
            << "inline capacity " << capacity;
        EXPECT_EQ(renderWith(factory, TransportMode::Async, capacity, 1),
                  off)
            << "async capacity " << capacity;
    }
}

TEST_P(TransportIdentity, ReportBytesInvariantToJobs)
{
    const ProgramFactory factory = this->factory();
    const std::string off = renderWith(factory, TransportMode::Off, 1024, 1);
    for (int jobs : {2, 4}) {
        EXPECT_EQ(renderWith(factory, TransportMode::Off, 1024, jobs), off)
            << "off jobs " << jobs;
        EXPECT_EQ(renderWith(factory, TransportMode::Inline, 16, jobs), off)
            << "inline jobs " << jobs;
        EXPECT_EQ(renderWith(factory, TransportMode::Async, 16, jobs), off)
            << "async jobs " << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(DetAndRacy, TransportIdentity,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "racy" : "deterministic";
                         });

} // namespace
} // namespace icheck
