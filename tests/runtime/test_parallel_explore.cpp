/**
 * @file
 * Parallel exploration frontier: exhaustive parallel search covers
 * exactly the sequential explorer's schedule tree (same run count, same
 * final states), and pruned parallel search converges to the same final
 * states with sound (never-unsound) pruning.
 */

#include <gtest/gtest.h>

#include <memory>

#include "runtime/parallel_explore.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::runtime
{
namespace
{

using sim::LambdaProgram;

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

/** Racy increment: distinct final states per interleaving class. */
check::ProgramFactory
racyIncrement()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racyinc", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 0);
            },
            [](sim::ThreadCtx &ctx) {
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + 1);
            });
    };
}

explore::ExploreConfig
exhaustiveConfig()
{
    explore::ExploreConfig cfg;
    cfg.prune = explore::PruneMode::None;
    cfg.maxRuns = 5000;
    return cfg;
}

TEST(ParallelExplore, ExhaustiveSearchMatchesSequential)
{
    const auto factory = racyIncrement();
    const explore::ExploreConfig cfg = exhaustiveConfig();

    const explore::ExploreResult sequential =
        explore::explore(factory, machineConfig(), cfg);
    ASSERT_TRUE(sequential.exhausted);

    for (const int jobs : {2, 4}) {
        const explore::ExploreResult parallel =
            exploreParallel(factory, machineConfig(), cfg, jobs);
        EXPECT_TRUE(parallel.exhausted);
        // Without pruning each prefix is generated exactly once by its
        // designated parent, so the executed set is schedule-independent.
        EXPECT_EQ(parallel.runsExecuted, sequential.runsExecuted)
            << "jobs=" << jobs;
        EXPECT_EQ(parallel.finalStates, sequential.finalStates)
            << "jobs=" << jobs;
    }
}

TEST(ParallelExplore, StatePruningFindsAllFinalStates)
{
    const auto factory = racyIncrement();
    explore::ExploreConfig cfg = exhaustiveConfig();
    cfg.prune = explore::PruneMode::StateHash;

    const explore::ExploreResult sequential =
        explore::explore(factory, machineConfig(), cfg);
    const explore::ExploreResult parallel =
        exploreParallel(factory, machineConfig(), cfg, 4);

    // Which run first claims a signature is timing-dependent, so run
    // counts may differ — but pruning only skips continuations of
    // already-reached states, so an exhausted search finds every state.
    ASSERT_TRUE(sequential.exhausted);
    ASSERT_TRUE(parallel.exhausted);
    EXPECT_EQ(parallel.finalStates, sequential.finalStates);
    EXPECT_LE(parallel.runsExecuted,
              exhaustiveConfig().maxRuns);
}

TEST(ParallelExplore, RespectsMaxRunsCap)
{
    const auto factory = racyIncrement();
    explore::ExploreConfig cfg = exhaustiveConfig();
    cfg.maxRuns = 3;

    const explore::ExploreResult parallel =
        exploreParallel(factory, machineConfig(), cfg, 4);
    EXPECT_LE(parallel.runsExecuted, 3);
    EXPECT_FALSE(parallel.exhausted);
}

TEST(ParallelExplore, SingleJobDelegatesToSequentialEngine)
{
    const auto factory = racyIncrement();
    const explore::ExploreConfig cfg = exhaustiveConfig();
    const explore::ExploreResult sequential =
        explore::explore(factory, machineConfig(), cfg);
    const explore::ExploreResult one_job =
        exploreParallel(factory, machineConfig(), cfg, 1);
    EXPECT_EQ(one_job.runsExecuted, sequential.runsExecuted);
    EXPECT_EQ(one_job.finalStates, sequential.finalStates);
    EXPECT_EQ(one_job.exhausted, sequential.exhausted);
}

} // namespace
} // namespace icheck::runtime
