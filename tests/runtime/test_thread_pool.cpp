/**
 * @file
 * The work-stealing pool's contracts: submission-order execution on one
 * worker, full coverage under parallelFor, exception propagation through
 * futures and parallelFor, destructor drain, and counter plausibility.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace icheck::runtime
{
namespace
{

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    std::vector<int> order;
    {
        ThreadPool pool(1);
        for (int i = 0; i < 64; ++i)
            pool.submit([&order, i] { order.push_back(i); });
    } // destructor drains
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&hits](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const std::atomic<int> &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(50, [&completed](std::size_t i) {
            if (i == 7 || i == 31)
                throw std::out_of_range("iteration " + std::to_string(i));
            ++completed;
        });
        FAIL() << "expected an exception";
    } catch (const std::out_of_range &error) {
        EXPECT_STREQ(error.what(), "iteration 7");
    }
    // Every non-throwing iteration still ran to completion.
    EXPECT_EQ(completed.load(), 48);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&executed] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++executed;
            });
        }
        // Destruction must wait for all 100, not just in-flight ones.
    }
    EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, CountsExecutedTasksAndQueueDepth)
{
    ThreadPool pool(2);
    pool.parallelFor(32, [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.tasksExecuted, 32u);
    EXPECT_GE(stats.maxQueueDepth, 1u);
    EXPECT_GT(stats.busySeconds, 0.0);
}

TEST(ThreadPool, DefaultSizeUsesHardwareWorkers)
{
    ThreadPool pool;
    EXPECT_EQ(pool.workerCount(), ThreadPool::hardwareWorkers());
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
}

} // namespace
} // namespace icheck::runtime
