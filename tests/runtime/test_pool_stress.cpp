/**
 * @file
 * Contention stress for the work-stealing pool, written to give TSan
 * something to chew on: many producers submitting from outside the
 * pool while a deliberately undersized worker set steals across
 * deques, plus exception-heavy loads through both futures and
 * parallelFor. The assertions are deliberately coarse (totals, not
 * orders) — the point of these tests is the interleaving they force,
 * and the sanitizer verdict on it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace icheck::runtime
{
namespace
{

TEST(PoolStress, ManyProducersFewWorkers)
{
    constexpr int kProducers = 8;
    constexpr int kTasksPerProducer = 200;

    // Two workers for eight producers: every deque stays contended and
    // the stealing path runs constantly.
    ThreadPool pool(2);
    std::atomic<int> executed{0};

    std::vector<std::thread> producers;
    std::vector<std::vector<std::future<int>>> futures(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&pool, &executed, &futures, p] {
            for (int t = 0; t < kTasksPerProducer; ++t) {
                futures[p].push_back(pool.submit([&executed, p, t] {
                    executed.fetch_add(1, std::memory_order_relaxed);
                    return p * kTasksPerProducer + t;
                }));
            }
        });
    }
    for (std::thread &producer : producers)
        producer.join();

    int sum = 0;
    for (int p = 0; p < kProducers; ++p) {
        for (std::future<int> &future : futures[p])
            sum += future.get();
    }
    EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
    const int n = kProducers * kTasksPerProducer;
    EXPECT_EQ(sum, n * (n - 1) / 2);

    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.tasksExecuted,
              static_cast<std::uint64_t>(kProducers * kTasksPerProducer));
}

TEST(PoolStress, ExceptionsUnderContention)
{
    ThreadPool pool(3);
    constexpr int kTasks = 300;

    std::vector<std::future<int>> futures;
    futures.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
        futures.push_back(pool.submit([t]() -> int {
            if (t % 7 == 0)
                throw std::runtime_error("planned failure");
            return t;
        }));
    }

    int failures = 0;
    for (int t = 0; t < kTasks; ++t) {
        try {
            EXPECT_EQ(futures[static_cast<std::size_t>(t)].get(), t);
        } catch (const std::runtime_error &) {
            ++failures;
            EXPECT_EQ(t % 7, 0);
        }
    }
    EXPECT_EQ(failures, (kTasks + 6) / 7);
}

TEST(PoolStress, ParallelForExceptionUnderContention)
{
    ThreadPool pool(4);
    std::atomic<int> settled{0};

    bool threw = false;
    try {
        pool.parallelFor(500, [&settled](std::size_t i) {
            settled.fetch_add(1, std::memory_order_relaxed);
            if (i % 41 == 0)
                throw std::out_of_range("planned");
        });
    } catch (const std::out_of_range &) {
        threw = true;
    }
    EXPECT_TRUE(threw);
    // parallelFor settles every iteration before rethrowing.
    EXPECT_EQ(settled.load(), 500);
}

TEST(PoolStress, DestructorDrainsWhileProducersRace)
{
    std::atomic<int> executed{0};
    constexpr int kTasks = 400;
    {
        ThreadPool pool(2);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&executed] {
                executed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destruction races the workers through the drain path.
    }
    EXPECT_EQ(executed.load(), kTasks);
}

TEST(PoolStress, StatsSnapshotsRaceExecution)
{
    ThreadPool pool(2);
    std::atomic<bool> stop{false};

    // Hammer the stats() reader while tasks execute: TSan verifies the
    // snapshot lock actually covers the counters.
    std::thread reader([&pool, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            const PoolStats stats = pool.stats();
            EXPECT_LE(stats.tasksStolen, stats.tasksExecuted);
        }
    });

    std::vector<std::future<void>> futures;
    for (int t = 0; t < 200; ++t)
        futures.push_back(pool.submit([] {
            std::this_thread::yield();
        }));
    for (std::future<void> &future : futures)
        future.get();

    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_EQ(pool.stats().tasksExecuted, 200u);
}

} // namespace
} // namespace icheck::runtime
