/**
 * @file
 * The parallel campaign executor's contract: for any worker count the
 * DriverReport — checkpoint hash sequences, distributions, det/ndet
 * verdicts, firstNdetRun, and overhead statistics — is bit-identical to
 * the sequential DeterminismDriver's, for deterministic and
 * nondeterministic apps alike. Also covers the result sink's streaming
 * counters and JSONL output.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "runtime/parallel_driver.hpp"
#include "runtime/result_sink.hpp"

namespace icheck::runtime
{
namespace
{

check::DriverConfig
campaignConfig(const apps::AppInfo &app, int runs)
{
    check::DriverConfig cfg;
    cfg.runs = runs;
    cfg.machine.numCores = 8;
    cfg.ignores = app.ignores;
    return cfg;
}

/** Assert every field the report derives is equal, run records included. */
void
expectBitIdentical(const check::DriverReport &expected,
                   const check::DriverReport &actual)
{
    EXPECT_EQ(expected.app, actual.app);
    EXPECT_EQ(expected.scheme, actual.scheme);
    EXPECT_EQ(expected.runs, actual.runs);
    ASSERT_EQ(expected.records.size(), actual.records.size());
    for (std::size_t i = 0; i < expected.records.size(); ++i) {
        const check::RunRecord &e = expected.records[i];
        const check::RunRecord &a = actual.records[i];
        EXPECT_EQ(e.checkpointHashes, a.checkpointHashes) << "run " << i;
        EXPECT_EQ(e.outputHash, a.outputHash) << "run " << i;
        EXPECT_EQ(e.outputBytes, a.outputBytes) << "run " << i;
        EXPECT_EQ(e.result.nativeInstrs, a.result.nativeInstrs)
            << "run " << i;
        EXPECT_EQ(e.result.overheadInstrs, a.result.overheadInstrs)
            << "run " << i;
        EXPECT_EQ(e.checkerOverheadInstrs, a.checkerOverheadInstrs)
            << "run " << i;
    }
    EXPECT_EQ(expected.checkpointCountsMatch, actual.checkpointCountsMatch);
    ASSERT_EQ(expected.distributions.size(), actual.distributions.size());
    for (std::size_t cp = 0; cp < expected.distributions.size(); ++cp)
        EXPECT_EQ(expected.distributions[cp], actual.distributions[cp])
            << "checkpoint " << cp;
    EXPECT_EQ(expected.detPoints, actual.detPoints);
    EXPECT_EQ(expected.ndetPoints, actual.ndetPoints);
    EXPECT_EQ(expected.detAtEnd, actual.detAtEnd);
    EXPECT_EQ(expected.outputDeterministic, actual.outputDeterministic);
    EXPECT_EQ(expected.firstNdetRun, actual.firstNdetRun);
    EXPECT_EQ(expected.deterministic(), actual.deterministic());
    EXPECT_EQ(expected.avgNativeInstrs, actual.avgNativeInstrs);
    EXPECT_EQ(expected.avgOverheadInstrs, actual.avgOverheadInstrs);
    EXPECT_EQ(expected.overheadFactor(), actual.overheadFactor());
}

class ParallelDriverIdentity
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ParallelDriverIdentity, MatchesSequentialReport)
{
    const auto [app_name, jobs] = GetParam();
    const apps::AppInfo &app = apps::findApp(app_name);
    const check::DriverConfig cfg = campaignConfig(app, /*runs=*/10);

    const check::DriverReport sequential =
        check::DeterminismDriver(cfg).check(app.factory);

    CampaignOptions options;
    options.jobs = jobs;
    const check::DriverReport parallel =
        runCampaign(cfg, app.factory, options);

    expectBitIdentical(sequential, parallel);
}

// radix is bit-by-bit deterministic; barnes is nondeterministic (tree
// shape depends on the interleaving), so firstNdetRun and per-checkpoint
// distributions are all exercised.
INSTANTIATE_TEST_SUITE_P(
    DetAndNdetAppsAcrossJobCounts, ParallelDriverIdentity,
    ::testing::Combine(::testing::Values("radix", "barnes"),
                       ::testing::Values(1, 2, 8)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_jobs" +
               std::to_string(std::get<1>(info.param));
    });

TEST(ParallelDriver, AllSchemesMatchSequential)
{
    const apps::AppInfo &app = apps::findApp("fluidanimate");
    for (const check::Scheme scheme :
         {check::Scheme::HwInc, check::Scheme::SwInc,
          check::Scheme::SwTr}) {
        check::DriverConfig cfg = campaignConfig(app, /*runs=*/6);
        cfg.scheme = scheme;
        const check::DriverReport sequential =
            check::DeterminismDriver(cfg).check(app.factory);
        CampaignOptions options;
        options.jobs = 4;
        expectBitIdentical(sequential,
                           runCampaign(cfg, app.factory, options));
    }
}

TEST(ParallelDriver, ReusesExternalPool)
{
    const apps::AppInfo &app = apps::findApp("radix");
    const check::DriverConfig cfg = campaignConfig(app, /*runs=*/8);
    const check::DriverReport sequential =
        check::DeterminismDriver(cfg).check(app.factory);

    ThreadPool pool(4);
    CampaignOptions options;
    options.pool = &pool;
    expectBitIdentical(sequential, runCampaign(cfg, app.factory, options));
    // The pool executed the fanned-out replay runs (all but run 0).
    EXPECT_EQ(pool.stats().tasksExecuted, 7u);
}

TEST(ParallelDriver, SinkStreamsEveryRunAndCampaignCounters)
{
    const apps::AppInfo &app = apps::findApp("radix");
    const check::DriverConfig cfg = campaignConfig(app, /*runs=*/8);

    std::ostringstream jsonl;
    ResultSink sink(&jsonl);
    CampaignOptions options;
    options.jobs = 4;
    options.sink = &sink;
    runCampaign(cfg, app.factory, options);

    EXPECT_EQ(sink.runsRecorded(), 8);
    const CampaignCounters counters = sink.lastCampaign();
    EXPECT_EQ(counters.app, "radix");
    EXPECT_EQ(counters.runs, 8);
    EXPECT_EQ(counters.jobs, 4);
    EXPECT_GT(counters.runsPerSec, 0.0);
    EXPECT_GT(counters.workerUtilization, 0.0);

    // One JSONL line per run plus the campaign line.
    const std::string text = jsonl.str();
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 9u);
    EXPECT_NE(text.find("\"type\":\"run\""), std::string::npos);
    EXPECT_NE(text.find("\"type\":\"campaign\""), std::string::npos);
}

} // namespace
} // namespace icheck::runtime
