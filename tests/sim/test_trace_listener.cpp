/**
 * @file
 * Event tracing: the exec-trace debugging facility.
 */

#include <gtest/gtest.h>
#include <algorithm>

#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/trace_listener.hpp"

namespace icheck::sim
{
namespace
{

bool
anyLineContains(const std::vector<std::string> &lines,
                const std::string &needle)
{
    return std::any_of(lines.begin(), lines.end(),
                       [&](const std::string &line) {
                           return line.find(needle) != std::string::npos;
                       });
}

TEST(TraceListener, CapturesAllEventKinds)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 3;
    Machine machine(cfg);
    machine.setInstrumentation(true);
    TraceListener trace;
    machine.addListener(&trace);
    MutexId mutex_id = 0;
    BarrierId barrier_id = 0;
    LambdaProgram prog(
        "traced", 2,
        [&](SetupCtx &ctx) {
            ctx.global("g", mem::tInt64());
            mutex_id = ctx.mutex();
            barrier_id = ctx.barrier(2);
        },
        [&](ThreadCtx &ctx) {
            const Addr block =
                ctx.malloc("traced.cpp:b", mem::tInt64());
            ctx.lock(mutex_id);
            ctx.store<std::int64_t>(ctx.global("g"),
                                    ctx.load<std::int64_t>(
                                        ctx.global("g")) +
                                        1);
            ctx.unlock(mutex_id);
            ctx.barrier(barrier_id);
            ctx.free(block);
            if (ctx.tid() == 0)
                ctx.outputValue<std::uint32_t>(7);
        });
    machine.run(prog);

    const auto &lines = trace.lines();
    EXPECT_TRUE(anyLineContains(lines, "store64"));
    EXPECT_TRUE(anyLineContains(lines, "load64"));
    EXPECT_TRUE(anyLineContains(lines, "lock #0"));
    EXPECT_TRUE(anyLineContains(lines, "unlock #0"));
    EXPECT_TRUE(anyLineContains(lines, "barrier-arrive #0 epoch 0"));
    EXPECT_TRUE(anyLineContains(lines, "barrier-leave #0 epoch 0"));
    EXPECT_TRUE(anyLineContains(lines, "alloc traced.cpp:b#0"));
    EXPECT_TRUE(anyLineContains(lines, "free traced.cpp:b#"));
    EXPECT_TRUE(anyLineContains(lines, "output 4B"));
    EXPECT_TRUE(anyLineContains(lines, "[instr]"))
        << "zeroing stores must be marked as instrumentation";
    EXPECT_TRUE(anyLineContains(lines, "thread-start"));
    EXPECT_TRUE(anyLineContains(lines, "thread-finish"));
}

TEST(TraceListener, LoadTracingCanBeDisabled)
{
    MachineConfig cfg;
    cfg.numCores = 1;
    Machine machine(cfg);
    TraceListener trace;
    trace.setTraceLoads(false);
    machine.addListener(&trace);
    LambdaProgram prog(
        "quiet", 1,
        [](SetupCtx &ctx) { ctx.global("g", mem::tInt64()); },
        [](ThreadCtx &ctx) {
            ctx.store<std::int64_t>(ctx.global("g"), 1);
            (void)ctx.load<std::int64_t>(ctx.global("g"));
        });
    machine.run(prog);
    EXPECT_TRUE(anyLineContains(trace.lines(), "store64"));
    EXPECT_FALSE(anyLineContains(trace.lines(), "load64"));
}

TEST(TraceListener, SinkVariantStreamsLines)
{
    std::vector<std::string> received;
    TraceListener trace(
        [&](const std::string &line) { received.push_back(line); });
    MachineConfig cfg;
    cfg.numCores = 1;
    Machine machine(cfg);
    machine.addListener(&trace);
    LambdaProgram prog("sink", 1, nullptr, [](ThreadCtx &ctx) {
        ctx.tick(1);
        ctx.outputValue<std::uint8_t>(1);
    });
    machine.run(prog);
    EXPECT_TRUE(anyLineContains(received, "output 1B"));
    EXPECT_TRUE(trace.lines().empty()) << "sink mode does not capture";
}

TEST(TraceListener, UnhashedStoresAreMarked)
{
    MachineConfig cfg;
    cfg.numCores = 1;
    Machine machine(cfg);
    TraceListener trace;
    machine.addListener(&trace);
    LambdaProgram prog("window", 1, nullptr, [](ThreadCtx &ctx) {
        ctx.stopHashing();
        ctx.store<std::int64_t>(ctx.scratch(), 1);
        ctx.startHashing();
    });
    machine.run(prog);
    EXPECT_TRUE(anyLineContains(trace.lines(), "[unhashed]"));
}

} // namespace
} // namespace icheck::sim
