/**
 * @file
 * Reproducibility of the simulator itself: a run is a pure function of
 * (program, input seed, scheduler seed). This property underpins the
 * paper's methodology (re-running differing seeds for localization) and
 * the replay tooling.
 */

#include <gtest/gtest.h>

#include "hashing/crc64.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::sim
{
namespace
{

/** A racy workload whose final state depends on the schedule. */
LambdaProgram
racyProgram()
{
    return LambdaProgram(
        "racy", 4,
        [](SetupCtx &ctx) {
            ctx.global("data", mem::tArray(mem::tInt64(), 32));
        },
        [](ThreadCtx &ctx) {
            const Addr data = ctx.global("data");
            for (int i = 0; i < 64; ++i) {
                const Addr slot = data + 8 * (i % 32);
                const auto v = ctx.load<std::int64_t>(slot);
                ctx.store<std::int64_t>(slot,
                                        v * 3 + ctx.tid() + 1);
            }
        });
}

/** CRC fingerprint of the interesting state after a run. */
std::uint64_t
fingerprint(Machine &machine)
{
    const Addr data = machine.staticSegment().addressOf("data");
    std::uint8_t bytes[32 * 8];
    machine.memory().readBytes(data, bytes, sizeof(bytes));
    return hashing::Crc64::compute(bytes, sizeof(bytes));
}

MachineConfig
config(std::uint64_t sched_seed)
{
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = sched_seed;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 8;
    return cfg;
}

TEST(SimDeterminism, SameSeedsSameEverything)
{
    std::uint64_t fp_a, fp_b;
    RunResult res_a, res_b;
    {
        Machine machine(config(99));
        auto prog = racyProgram();
        res_a = machine.run(prog);
        fp_a = fingerprint(machine);
    }
    {
        Machine machine(config(99));
        auto prog = racyProgram();
        res_b = machine.run(prog);
        fp_b = fingerprint(machine);
    }
    EXPECT_EQ(fp_a, fp_b);
    EXPECT_EQ(res_a.nativeInstrs, res_b.nativeInstrs);
    EXPECT_EQ(res_a.cacheHits, res_b.cacheHits);
    EXPECT_EQ(res_a.cacheMisses, res_b.cacheMisses);
}

TEST(SimDeterminism, DifferentSeedsReachDifferentStates)
{
    // The workload is racy by construction; across a handful of seeds at
    // least two schedules must differ in final state.
    std::set<std::uint64_t> fingerprints;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Machine machine(config(seed));
        auto prog = racyProgram();
        machine.run(prog);
        fingerprints.insert(fingerprint(machine));
    }
    EXPECT_GT(fingerprints.size(), 1u);
}

/** Software mirror of the TH registers, fed by listener events. */
class ThMirror : public AccessListener
{
  public:
    explicit ThMirror(const hashing::StateHasher &hasher) : hasher(hasher)
    {}

    void
    onStore(const StoreEvent &event) override
    {
        if (event.tid >= ths.size())
            ths.resize(event.tid + 1);
        ths[event.tid] += hasher.storeDelta(event.addr, event.oldBits,
                                            event.newBits, event.width,
                                            event.cls);
    }

    hashing::ModHash
    sum() const
    {
        hashing::ModHash total;
        for (const auto &th : ths)
            total += th;
        return total;
    }

    const hashing::StateHasher &hasher;
    std::vector<hashing::ModHash> ths;
};

TEST(SimDeterminism, ThreadHashVirtualizationSurvivesMigration)
{
    // Few cores, many threads, heavy migration: the hardware TH registers
    // (saved/restored at every context switch and migration) must agree,
    // per thread and in sum, with a software mirror of the same stores.
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 4242;
    cfg.migrateProb = 0.5;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 6;
    Machine machine(cfg);
    const hashing::StateHasher mirror_hasher(machine.hasher(),
                                             machine.effectiveFpMode());
    ThMirror mirror(mirror_hasher);
    machine.addListener(&mirror);
    auto prog = racyProgram();
    machine.run(prog);
    ASSERT_GT(machine.stats().get("migrations"), 0u);

    hashing::ModHash hw_sum;
    for (ThreadId t = 0; t < machine.numThreads(); ++t) {
        hw_sum += hashing::ModHash(machine.threadHash(t));
        EXPECT_EQ(machine.threadHash(t), mirror.ths[t].raw())
            << "thread " << t;
    }
    EXPECT_EQ(hw_sum, mirror.sum());
}

TEST(SimDeterminism, SlicesAndMigrationsAreCounted)
{
    MachineConfig cfg = config(5);
    cfg.migrateProb = 0.5;
    cfg.numCores = 4;
    Machine machine(cfg);
    auto prog = racyProgram();
    machine.run(prog);
    EXPECT_GT(machine.stats().get("slices"), 0u);
    EXPECT_GT(machine.stats().get("migrations"), 0u);
}

} // namespace
} // namespace icheck::sim
