/**
 * @file
 * EventTransport: ring-buffer event delivery must be indistinguishable
 * from synchronous listener dispatch — same events, same order, at any
 * ring capacity, inline or async.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/transport.hpp"

namespace icheck::sim
{
namespace
{

/** Serializes every callback into one string per event. */
class RecordingListener : public AccessListener
{
  public:
    void
    onStore(const StoreEvent &e) override
    {
        std::ostringstream os;
        os << "S t" << e.tid << " a" << e.addr << " o" << e.oldBits
           << " n" << e.newBits << " w" << e.width << " h" << e.hashed;
        log.push_back(os.str());
    }

    void
    onLoad(const LoadEvent &e) override
    {
        std::ostringstream os;
        os << "L t" << e.tid << " a" << e.addr << " w" << e.width;
        log.push_back(os.str());
    }

    void
    onSync(const SyncEvent &e) override
    {
        std::ostringstream os;
        os << "Y k" << static_cast<int>(e.kind) << " t" << e.tid << " o"
           << e.object << " e" << e.epoch;
        log.push_back(os.str());
    }

    void
    onAlloc(const mem::Block &block) override
    {
        log.push_back("A " + block.site + " sz" +
                      std::to_string(block.size));
    }

    void
    onFree(const mem::Block &block) override
    {
        log.push_back("F " + block.site);
    }

    void
    onOutput(ThreadId tid, const std::uint8_t *data,
             std::size_t len) override
    {
        std::string s = "O t" + std::to_string(tid) + " ";
        for (std::size_t i = 0; i < len; ++i)
            s += std::to_string(data[i]) + ",";
        log.push_back(s);
    }

    std::vector<std::string> log;
};

std::unique_ptr<LambdaProgram>
makeProgram(std::shared_ptr<MutexId> mutex_id,
            std::shared_ptr<BarrierId> barrier_id)
{
    return std::make_unique<LambdaProgram>(
        "transport-prog", 2,
        [mutex_id, barrier_id](SetupCtx &ctx) {
            ctx.global("g", mem::tArray(mem::tInt64(), 8));
            *mutex_id = ctx.mutex();
            *barrier_id = ctx.barrier(2);
        },
        [mutex_id, barrier_id](ThreadCtx &ctx) {
            const Addr g = ctx.global("g");
            const Addr block = ctx.malloc("transport.cpp:b", mem::tInt64());
            for (int i = 0; i < 16; ++i) {
                const Addr slot = g + 8 * ((ctx.tid() * 4 + i) % 8);
                ctx.lock(*mutex_id);
                ctx.store<std::int64_t>(
                    slot, ctx.load<std::int64_t>(slot) + i);
                ctx.unlock(*mutex_id);
            }
            ctx.barrier(*barrier_id);
            ctx.outputValue<std::uint32_t>(ctx.tid());
            ctx.free(block);
        });
}

/** Run the program with a synchronous listener, or through the transport
 *  with the given shape; return the observed event log. */
std::vector<std::string>
runOnce(bool via_transport, TransportConfig shape = {},
        ConsumerInterest interest = {})
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 11;
    RecordingListener listener;
    EventTransport transport(shape);
    Machine machine(cfg);
    if (via_transport) {
        transport.addListener(&listener, interest);
        machine.setTransport(&transport);
    } else {
        machine.addListener(&listener);
    }
    auto mutex_id = std::make_shared<MutexId>();
    auto barrier_id = std::make_shared<BarrierId>();
    auto prog = makeProgram(mutex_id, barrier_id);
    machine.run(*prog);
    machine.setTransport(nullptr);
    return listener.log;
}

TEST(Transport, InlineMatchesSynchronousDispatchExactly)
{
    const auto sync_log = runOnce(false);
    ASSERT_FALSE(sync_log.empty());
    EXPECT_EQ(runOnce(true), sync_log);
}

TEST(Transport, AsyncMatchesSynchronousDispatchExactly)
{
    const auto sync_log = runOnce(false);
    TransportConfig shape;
    shape.async = true;
    EXPECT_EQ(runOnce(true, shape), sync_log);
}

TEST(Transport, TinyRingsBlockAndStillDeliverEverything)
{
    const auto sync_log = runOnce(false);
    for (std::size_t capacity : {1u, 2u, 8u}) {
        TransportConfig shape;
        shape.ringCapacity = capacity;
        EXPECT_EQ(runOnce(true, shape), sync_log)
            << "capacity " << capacity;
        shape.async = true;
        EXPECT_EQ(runOnce(true, shape), sync_log)
            << "async capacity " << capacity;
    }
}

TEST(Transport, OverflowStallsAreCountedNeverDropped)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 11;
    RecordingListener listener;
    TransportConfig shape;
    shape.ringCapacity = 1;
    EventTransport transport(shape);
    Machine machine(cfg);
    transport.addListener(&listener);
    machine.setTransport(&transport);
    auto mutex_id = std::make_shared<MutexId>();
    auto barrier_id = std::make_shared<BarrierId>();
    auto prog = makeProgram(mutex_id, barrier_id);
    machine.run(*prog);
    machine.setTransport(nullptr);
    EXPECT_GT(transport.overflowStalls(), 0u);
    EXPECT_EQ(transport.publishedCount(), transport.deliveredCount());
    EXPECT_EQ(listener.log, runOnce(false));
}

TEST(Transport, LoadsAreDroppedForLoadBlindConsumers)
{
    ConsumerInterest interest;
    interest.loads = false;
    const auto log = runOnce(true, {}, interest);
    for (const std::string &line : log)
        EXPECT_NE(line[0], 'L') << line;
    // Everything else still flows.
    bool saw_store = false, saw_sync = false, saw_output = false;
    for (const std::string &line : log) {
        saw_store |= line[0] == 'S';
        saw_sync |= line[0] == 'Y';
        saw_output |= line[0] == 'O';
    }
    EXPECT_TRUE(saw_store);
    EXPECT_TRUE(saw_sync);
    EXPECT_TRUE(saw_output);
}

TEST(Transport, AccessBlindConsumersSkipTheWholeAccessStream)
{
    ConsumerInterest interest;
    interest.loads = false;
    interest.stores = false;
    interest.storeValues = false;
    const auto log = runOnce(true, {}, interest);
    for (const std::string &line : log) {
        EXPECT_NE(line[0], 'L') << line;
        EXPECT_NE(line[0], 'S') << line;
    }
    bool saw_output = false;
    for (const std::string &line : log)
        saw_output |= line[0] == 'O';
    EXPECT_TRUE(saw_output);
}

TEST(Transport, StoreValuesInterestImpliesStores)
{
    // storeValues=true with stores=false still delivers stores (with
    // values): the union normalizes the mask instead of losing events.
    ConsumerInterest interest;
    interest.stores = false;
    interest.storeValues = true;
    const auto log = runOnce(true, {}, interest);
    bool saw_store = false;
    for (const std::string &line : log)
        saw_store |= line[0] == 'S';
    EXPECT_TRUE(saw_store);
}

TEST(Transport, ValuesBlindStoresCarryZeroOldBits)
{
    // With the hash gate closed and no consumer declaring storeValues,
    // the producer skips the old-value read entirely; records then carry
    // oldBits = 0 deterministically. (With hashing armed the MHM needs
    // the old value anyway, so it rides along for free.)
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 11;
    cfg.hashingArmed = false;
    RecordingListener listener;
    ConsumerInterest interest;
    interest.storeValues = false;
    EventTransport transport;
    Machine machine(cfg);
    transport.addListener(&listener, interest);
    machine.setTransport(&transport);
    auto mutex_id = std::make_shared<MutexId>();
    auto barrier_id = std::make_shared<BarrierId>();
    auto prog = makeProgram(mutex_id, barrier_id);
    machine.run(*prog);
    machine.setTransport(nullptr);
    bool saw_store = false;
    for (const std::string &line : listener.log)
        if (line[0] == 'S') {
            saw_store = true;
            EXPECT_NE(line.find(" o0 "), std::string::npos) << line;
        }
    EXPECT_TRUE(saw_store);
}

TEST(Transport, PerConsumerMasksAreIndependent)
{
    // One consumer wants everything, one is access-blind: production is
    // the union, delivery honors each mask.
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 11;
    RecordingListener full;
    RecordingListener blind;
    ConsumerInterest blind_interest;
    blind_interest.loads = false;
    blind_interest.stores = false;
    blind_interest.storeValues = false;
    EventTransport transport;
    Machine machine(cfg);
    transport.addListener(&full);
    transport.addListener(&blind, blind_interest);
    machine.setTransport(&transport);
    auto mutex_id = std::make_shared<MutexId>();
    auto barrier_id = std::make_shared<BarrierId>();
    auto prog = makeProgram(mutex_id, barrier_id);
    machine.run(*prog);
    machine.setTransport(nullptr);

    EXPECT_EQ(full.log, runOnce(false));
    for (const std::string &line : blind.log) {
        EXPECT_NE(line[0], 'L') << line;
        EXPECT_NE(line[0], 'S') << line;
    }
}

TEST(Transport, RemoveListenerStopsDelivery)
{
    RecordingListener listener;
    EventTransport transport;
    transport.addListener(&listener);
    EXPECT_TRUE(transport.armed());
    transport.removeListener(&listener);
    EXPECT_FALSE(transport.armed());

    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 11;
    Machine machine(cfg);
    machine.setTransport(&transport);
    auto mutex_id = std::make_shared<MutexId>();
    auto barrier_id = std::make_shared<BarrierId>();
    auto prog = makeProgram(mutex_id, barrier_id);
    machine.run(*prog);
    machine.setTransport(nullptr);
    EXPECT_TRUE(listener.log.empty());
    EXPECT_EQ(transport.publishedCount(), transport.deliveredCount());
}

TEST(Transport, ScopedListenerDetachesSynchronousObservers)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 11;
    RecordingListener outer;
    Machine first(cfg);
    {
        ScopedListener scope(first, outer);
        auto mutex_id = std::make_shared<MutexId>();
        auto barrier_id = std::make_shared<BarrierId>();
        auto prog = makeProgram(mutex_id, barrier_id);
        first.run(*prog);
    }
    const std::size_t observed = outer.log.size();
    EXPECT_GT(observed, 0u);
    // The scope detached the listener before `first` was torn down; a
    // fresh machine without it adds nothing to the log.
    Machine second(cfg);
    auto mutex_id = std::make_shared<MutexId>();
    auto barrier_id = std::make_shared<BarrierId>();
    auto prog = makeProgram(mutex_id, barrier_id);
    second.run(*prog);
    EXPECT_EQ(outer.log.size(), observed);
}

TEST(Transport, ReattachAcrossRunsReplaysIdentically)
{
    // One transport instance driving two machines back to back: bind()
    // must fully reset rings and counters.
    const auto sync_log = runOnce(false);
    RecordingListener listener;
    EventTransport transport;
    transport.addListener(&listener);
    for (int round = 0; round < 2; ++round) {
        MachineConfig cfg;
        cfg.numCores = 2;
        cfg.schedSeed = 11;
        Machine machine(cfg);
        machine.setTransport(&transport);
        auto mutex_id = std::make_shared<MutexId>();
        auto barrier_id = std::make_shared<BarrierId>();
        auto prog = makeProgram(mutex_id, barrier_id);
        machine.run(*prog);
        machine.setTransport(nullptr);
    }
    ASSERT_EQ(listener.log.size(), 2 * sync_log.size());
    for (std::size_t i = 0; i < sync_log.size(); ++i) {
        EXPECT_EQ(listener.log[i], sync_log[i]);
        EXPECT_EQ(listener.log[sync_log.size() + i], sync_log[i]);
    }
}

} // namespace
} // namespace icheck::sim
