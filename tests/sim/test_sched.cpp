/**
 * @file
 * Scheduler unit behaviour: random choice reproducibility, round-robin
 * fairness, scripted replay of decisions.
 */

#include <gtest/gtest.h>

#include "sim/sched.hpp"

namespace icheck::sim
{
namespace
{

TEST(RandomScheduler, ReproducibleGivenSeed)
{
    RandomScheduler a(77, 10, 100, 0.1);
    RandomScheduler b(77, 10, 100, 0.1);
    const std::vector<ThreadId> runnable{0, 1, 2, 3, 4};
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.pick(runnable), b.pick(runnable));
        EXPECT_EQ(a.quantum(), b.quantum());
        EXPECT_EQ(a.coreFor(1, 1, 8), b.coreFor(1, 1, 8));
    }
}

TEST(RandomScheduler, QuantaInRange)
{
    RandomScheduler sched(5, 20, 200, 0.0);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t q = sched.quantum();
        EXPECT_GE(q, 20u);
        EXPECT_LE(q, 200u);
    }
}

TEST(RandomScheduler, EventuallyPicksEveryThread)
{
    RandomScheduler sched(5, 1, 2, 0.0);
    const std::vector<ThreadId> runnable{0, 1, 2, 3};
    std::set<ThreadId> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(sched.pick(runnable));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomScheduler, NoMigrationWhenDisabled)
{
    RandomScheduler sched(5, 1, 2, 0.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sched.coreFor(3, 3, 8), 3u);
}

TEST(RoundRobinScheduler, CyclesThroughRunnable)
{
    RoundRobinScheduler sched(10);
    const std::vector<ThreadId> runnable{0, 1, 2};
    EXPECT_EQ(sched.pick(runnable), 0u);
    EXPECT_EQ(sched.pick(runnable), 1u);
    EXPECT_EQ(sched.pick(runnable), 2u);
    EXPECT_EQ(sched.pick(runnable), 0u);
}

TEST(RoundRobinScheduler, SkipsBlockedThreads)
{
    RoundRobinScheduler sched(10);
    EXPECT_EQ(sched.pick({0, 1, 2, 3}), 0u);
    // Thread 1 blocked: next pick after 0 is 2.
    EXPECT_EQ(sched.pick({0, 2, 3}), 2u);
    EXPECT_EQ(sched.pick({0, 3}), 3u);
    EXPECT_EQ(sched.pick({0, 3}), 0u);
}

TEST(ScriptedScheduler, FollowsScriptThenDefaults)
{
    ScriptedScheduler sched({2, 0, 1}, 50);
    const std::vector<ThreadId> runnable{10, 20, 30};
    EXPECT_EQ(sched.pick(runnable), 30u);
    EXPECT_EQ(sched.pick(runnable), 10u);
    EXPECT_EQ(sched.pick(runnable), 20u);
    // Script exhausted: index 0.
    EXPECT_EQ(sched.pick(runnable), 10u);
    EXPECT_EQ(sched.consumed(), 3u);
    EXPECT_EQ(sched.decisionFanout().size(), 4u);
    EXPECT_EQ(sched.decisionFanout()[0], 3u);
}

TEST(ScriptedScheduler, ClampsOutOfRangeChoices)
{
    ScriptedScheduler sched({9}, 50);
    EXPECT_EQ(sched.pick({4, 5}), 5u) << "choice past end clamps to last";
}

} // namespace
} // namespace icheck::sim
