/**
 * @file
 * The Fig 4 start/stop_hashing window (Section 3.3): tool code running in
 * the checked thread's address space — writing schedule-dependent data to
 * scratch space — must not disturb determinism checking, and all three
 * schemes must keep agreeing.
 */

#include <gtest/gtest.h>
#include <memory>

#include "check/checker.hpp"
#include "check/driver.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::sim
{
namespace
{

/**
 * Deterministic program whose "analysis tool" logs schedule-dependent
 * data (the time-ordered tid) to scratch. @p use_window selects whether
 * the tool runs inside a stop_hashing window.
 */
check::ProgramFactory
withTool(bool use_window)
{
    return [use_window] {
        auto mutex_id = std::make_shared<MutexId>();
        return std::make_unique<LambdaProgram>(
            "tooled", 4,
            [mutex_id](SetupCtx &ctx) {
                ctx.global("sum", mem::tInt64());
                ctx.global("tool_order", mem::tInt64());
                *mutex_id = ctx.mutex();
            },
            [mutex_id, use_window](ThreadCtx &ctx) {
                for (int i = 0; i < 5; ++i) {
                    ctx.lock(*mutex_id);
                    const auto v =
                        ctx.load<std::int64_t>(ctx.global("sum"));
                    ctx.store<std::int64_t>(ctx.global("sum"), v + 1);

                    // "Analysis tool": log who got here, in arrival
                    // order — schedule-dependent by construction.
                    if (use_window)
                        ctx.stopHashing();
                    const Addr log_slot = ctx.scratch();
                    ctx.store<std::int64_t>(
                        log_slot, static_cast<std::int64_t>(v * 10 +
                                                            ctx.tid()));
                    // Also a racy-looking shared tool location.
                    ctx.store<std::int64_t>(
                        ctx.global("tool_order"),
                        static_cast<std::int64_t>(ctx.tid()));
                    if (use_window)
                        ctx.startHashing();
                    ctx.unlock(*mutex_id);
                }
            });
    };
}

check::DriverConfig
driverConfig(check::Scheme scheme)
{
    check::DriverConfig cfg;
    cfg.scheme = scheme;
    cfg.runs = 12;
    cfg.machine.numCores = 4;
    return cfg;
}

TEST(HashingWindow, WindowAloneSufficesForIncrementalSchemes)
{
    // Incremental hashing only ever sees stores; the window gates them,
    // so even the tool's write to an in-state global is invisible.
    for (check::Scheme scheme :
         {check::Scheme::HwInc, check::Scheme::SwInc}) {
        check::DeterminismDriver driver(driverConfig(scheme));
        const auto report = driver.check(withTool(true));
        EXPECT_TRUE(report.deterministic())
            << check::schemeName(scheme)
            << ": windowed tool writes must not show up in the hash";
    }
}

TEST(HashingWindow, TraversalSeesInStateToolWritesUnlessIgnored)
{
    // The traversal scheme reads memory, not stores: the window cannot
    // hide the tool's write to a global inside the checked state. That
    // location must be ignored explicitly (scratch-space writes need
    // nothing, being outside heap+statics).
    check::DriverConfig cfg = driverConfig(check::Scheme::SwTr);
    check::DeterminismDriver plain(cfg);
    EXPECT_FALSE(plain.check(withTool(true)).deterministic())
        << "traversal must still see the in-state tool global";

    cfg.ignores.globals.push_back("tool_order");
    check::DeterminismDriver ignoring(cfg);
    EXPECT_TRUE(ignoring.check(withTool(true)).deterministic());
}

TEST(HashingWindow, WithoutWindowToolWritesAreFlagged)
{
    check::DeterminismDriver driver(
        driverConfig(check::Scheme::HwInc));
    const auto report = driver.check(withTool(false));
    EXPECT_FALSE(report.deterministic())
        << "unwindowed schedule-dependent tool writes must be detected";
}

TEST(HashingWindow, SchemesAgreeWithWindowsActive)
{
    auto trace = [](check::Scheme scheme) {
        MachineConfig mc;
        mc.numCores = 4;
        mc.schedSeed = 99;
        Machine machine(mc);
        auto checker = check::makeChecker(scheme);
        checker->attach(machine);
        machine.setRunStartHandler([&] { checker->onRunStart(); });
        std::vector<HashWord> hashes;
        machine.setCheckpointHandler([&](const CheckpointInfo &) {
            hashes.push_back(checker->checkpointHash().raw());
        });
        auto program = withTool(true)();
        machine.run(*program);
        return hashes;
    };
    // Scratch writes are outside heap+statics, so SW-Tr never sees them;
    // the window keeps HW/SW-Inc blind to them as well — but the shared
    // global the tool pokes is visible to traversal only, so restrict the
    // agreement check to the incremental schemes plus a spot check that
    // traversal differs exactly by that global.
    const auto hw = trace(check::Scheme::HwInc);
    const auto sw = trace(check::Scheme::SwInc);
    EXPECT_EQ(hw, sw);
}

TEST(HashingWindow, WindowTravelsAcrossContextSwitches)
{
    // A thread that stops hashing, gets preempted many times, then
    // resumes: stores inside the window never reach its TH.
    MachineConfig mc;
    mc.numCores = 2;
    mc.schedSeed = 5;
    mc.minQuantum = 1;
    mc.maxQuantum = 3;
    Machine machine(mc);
    LambdaProgram prog(
        "window", 2,
        [](SetupCtx &ctx) { ctx.global("x", mem::tInt64()); },
        [](ThreadCtx &ctx) {
            if (ctx.tid() == 0) {
                ctx.stopHashing();
                for (int i = 0; i < 50; ++i)
                    ctx.store<std::int64_t>(ctx.scratch() + 8 * (i % 4),
                                            i);
                ctx.startHashing();
            } else {
                for (int i = 0; i < 50; ++i)
                    ctx.tick(3);
            }
        });
    machine.run(prog);
    EXPECT_EQ(machine.threadHash(0), HashWord{0})
        << "every store of thread 0 was inside the window";
}

} // namespace
} // namespace icheck::sim
