/**
 * @file
 * Machine checkpoint()/restore(): a restored machine must be bit-
 * identical to a cold machine at the same scheduling decision — same
 * thread hashes, same state signature, same rendered statistics — so
 * every downstream report is byte-identical with snapshots on or off.
 */

#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/sched.hpp"

namespace icheck::sim
{
namespace
{

/** Racy increments: the final state depends on the schedule. */
check::ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "snap-racy", 2,
            [](SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                for (int i = 0; i < 6; ++i) {
                    const auto g =
                        ctx.load<std::int64_t>(ctx.global("G"));
                    ctx.store<std::int64_t>(ctx.global("G"),
                                            g * 2 + local);
                }
            });
    };
}

MachineConfig
machineConfig()
{
    MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

/** All observable outcomes of one finished run. */
struct Outcome
{
    std::vector<HashWord> threadHashes;
    std::uint64_t signature = 0;
    std::string stats;

    bool operator==(const Outcome &) const = default;
};

Outcome
observe(const Machine &machine)
{
    Outcome out;
    for (ThreadId t = 0; t < machine.numThreads(); ++t)
        out.threadHashes.push_back(machine.threadHash(t));
    out.signature = machine.stateSignature();
    out.stats = machine.renderStats();
    return out;
}

/**
 * A machine driven through the session API with a scripted scheduler,
 * checkpointing at @p checkpoint_decision; keeps everything needed to
 * resume the scheduler at that decision.
 */
struct Session
{
    Machine machine;
    std::unique_ptr<Program> program;
    ScriptedScheduler *sched = nullptr;
    std::shared_ptr<const MachineSnapshot> snap;
    std::vector<std::uint32_t> fanout, chosen;
    std::vector<std::int32_t> prevIdx;
    ThreadId lastPick = invalidThreadId;
    std::size_t decision = 0;

    Session(const check::ProgramFactory &factory,
            std::vector<std::uint32_t> script,
            std::size_t checkpoint_decision)
        : machine(machineConfig()), program(factory())
    {
        auto scripted = std::make_unique<ScriptedScheduler>(
            std::move(script), /*fixed_quantum=*/2);
        sched = scripted.get();
        machine.setScheduler(std::move(scripted));
        machine.setDecisionHandler([this, checkpoint_decision](
                                       const std::vector<ThreadId> &) {
            if (decision == checkpoint_decision) {
                snap = machine.checkpoint();
                fanout = sched->decisionFanout();
                chosen = sched->chosenIndices();
                prevIdx = sched->previousIndices();
                lastPick = sched->lastPicked();
            }
            ++decision;
        });
        machine.beginRun(*program);
    }

    Outcome
    finish()
    {
        machine.finishRun();
        return observe(machine);
    }

    /** Restore the checkpoint and re-run the suffix under @p script. */
    Outcome
    resume(std::vector<std::uint32_t> script)
    {
        auto scripted = std::make_unique<ScriptedScheduler>(
            std::move(script), /*fixed_quantum=*/2);
        scripted->resumeAt(fanout, chosen, prevIdx, lastPick);
        sched = scripted.get();
        machine.restore(*snap);
        machine.setScheduler(std::move(scripted));
        decision = chosen.size();
        machine.finishRun();
        return observe(machine);
    }
};

TEST(MachineSnapshot, RestoredSuffixMatchesColdRun)
{
    if (!Machine::snapshotSupported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    const std::vector<std::uint32_t> script = {0, 1, 1, 0, 1, 0, 0, 1};
    Session session(racyFactory(), script, /*checkpoint_decision=*/4);
    const Outcome cold = session.finish();
    ASSERT_NE(session.snap, nullptr) << "checkpoint was never taken";
    EXPECT_EQ(session.chosen.size(), 4u)
        << "scheduler history must hold exactly the checkpointed prefix";

    const Outcome warm = session.resume(script);
    EXPECT_EQ(warm, cold)
        << "restore + identical suffix must replay bit-identically";
}

TEST(MachineSnapshot, RestoreIsRepeatable)
{
    if (!Machine::snapshotSupported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    const std::vector<std::uint32_t> script = {1, 0, 0, 1, 1, 0};
    Session session(racyFactory(), script, /*checkpoint_decision=*/3);
    const Outcome cold = session.finish();
    ASSERT_NE(session.snap, nullptr);

    const Outcome first = session.resume(script);
    const Outcome second = session.resume(script);
    EXPECT_EQ(first, cold);
    EXPECT_EQ(second, cold)
        << "a snapshot must survive being restored more than once";
}

TEST(MachineSnapshot, DivergentSuffixMatchesColdScriptedRun)
{
    if (!Machine::snapshotSupported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    // Shared prefix of 3 decisions, then two different continuations.
    const std::vector<std::uint32_t> base = {0, 1, 0, 0, 0, 1, 1};
    std::vector<std::uint32_t> other = base;
    other[4] ^= 1u; // diverge right after the checkpoint
    other[6] ^= 1u;

    Session session(racyFactory(), base, /*checkpoint_decision=*/3);
    const Outcome cold_base = session.finish();
    ASSERT_NE(session.snap, nullptr);

    // Cold reference for the divergent schedule: a fresh machine.
    Session reference(racyFactory(), other, /*checkpoint_decision=*/3);
    const Outcome cold_other = reference.finish();
    EXPECT_NE(cold_other, cold_base)
        << "the racy program must actually distinguish the schedules";

    const Outcome warm_other = session.resume(other);
    EXPECT_EQ(warm_other, cold_other)
        << "restoring and taking a different branch must equal the "
           "cold run of that branch";

    const Outcome warm_base = session.resume(base);
    EXPECT_EQ(warm_base, cold_base);
}

TEST(MachineSnapshot, RootCheckpointRestartsWholeRun)
{
    if (!Machine::snapshotSupported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    const std::vector<std::uint32_t> script = {1, 1, 0, 0, 1};
    Session session(racyFactory(), script, /*checkpoint_decision=*/0);
    const Outcome cold = session.finish();
    ASSERT_NE(session.snap, nullptr);
    EXPECT_TRUE(session.chosen.empty());

    const Outcome warm = session.resume(script);
    EXPECT_EQ(warm, cold)
        << "a decision-0 snapshot must replay the entire run";
}

TEST(MachineSnapshot, SnapshotReportsFootprint)
{
    if (!Machine::snapshotSupported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    Session session(racyFactory(), {0, 0, 1}, /*checkpoint_decision=*/2);
    session.finish();
    ASSERT_NE(session.snap, nullptr);
    EXPECT_GT(session.snap->bytes(), sizeof(MachineSnapshot))
        << "footprint must account for owned state beyond the struct";
}

} // namespace
} // namespace icheck::sim
