/**
 * @file
 * Synchronization semantics: mutual exclusion, barriers (and their
 * determinism checkpoints), condition variables, deadlock detection.
 */

#include <gtest/gtest.h>

#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::sim
{
namespace
{

MachineConfig
config(std::uint64_t seed)
{
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = seed;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 5; // aggressive preemption stresses the protocol
    return cfg;
}

TEST(Sync, MutexProvidesMutualExclusion)
{
    // 4 threads × 200 unprotected-looking increments under a lock: the
    // final counter must be exact for every seed.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Machine machine(config(seed));
        MutexId mutex_id = 0;
        LambdaProgram prog(
            "mutex", 4,
            [&](SetupCtx &ctx) {
                ctx.global("counter", mem::tInt64());
                mutex_id = ctx.mutex();
            },
            [&](ThreadCtx &ctx) {
                const Addr counter = ctx.global("counter");
                for (int i = 0; i < 200; ++i) {
                    ctx.lock(mutex_id);
                    const auto v = ctx.load<std::int64_t>(counter);
                    ctx.store<std::int64_t>(counter, v + 1);
                    ctx.unlock(mutex_id);
                }
            });
        machine.run(prog);
        EXPECT_EQ(machine.memory().readValue(
                      machine.staticSegment().addressOf("counter"), 8),
                  800u)
            << "seed " << seed;
    }
}

TEST(Sync, UnprotectedIncrementsLoseUpdates)
{
    // The same loop without the lock must lose updates under at least one
    // seed — otherwise the scheduler isn't interleaving finely enough to
    // expose races, and the whole evaluation would be vacuous.
    bool lost_somewhere = false;
    for (std::uint64_t seed = 1; seed <= 10 && !lost_somewhere; ++seed) {
        Machine machine(config(seed));
        LambdaProgram prog(
            "racy", 4,
            [](SetupCtx &ctx) { ctx.global("counter", mem::tInt64()); },
            [](ThreadCtx &ctx) {
                const Addr counter = ctx.global("counter");
                for (int i = 0; i < 200; ++i) {
                    const auto v = ctx.load<std::int64_t>(counter);
                    ctx.store<std::int64_t>(counter, v + 1);
                }
            });
        machine.run(prog);
        const auto final_value = machine.memory().readValue(
            machine.staticSegment().addressOf("counter"), 8);
        if (final_value != 800)
            lost_somewhere = true;
    }
    EXPECT_TRUE(lost_somewhere);
}

TEST(Sync, BarrierReleasesAllAndCheckpoints)
{
    Machine machine(config(11));
    std::uint64_t barrier_checkpoints = 0;
    machine.setCheckpointHandler([&](const CheckpointInfo &info) {
        if (info.kind == CheckpointKind::Barrier)
            ++barrier_checkpoints;
    });
    BarrierId barrier_id = 0;
    LambdaProgram prog(
        "barrier", 4,
        [&](SetupCtx &ctx) {
            ctx.global("phase", mem::tArray(mem::tInt32(), 4));
            barrier_id = ctx.barrier(4);
        },
        [&](ThreadCtx &ctx) {
            const Addr phase = ctx.global("phase");
            for (std::int32_t round = 1; round <= 5; ++round) {
                ctx.store<std::int32_t>(phase + 4 * ctx.tid(), round);
                ctx.barrier(barrier_id);
                // After the barrier every thread's phase must be current.
                for (ThreadId t = 0; t < 4; ++t)
                    EXPECT_EQ(ctx.load<std::int32_t>(phase + 4 * t),
                              round);
                ctx.barrier(barrier_id);
            }
        });
    machine.run(prog);
    EXPECT_EQ(barrier_checkpoints, 10u);
}

TEST(Sync, CondVarProducerConsumer)
{
    Machine machine(config(13));
    MutexId mutex_id = 0;
    CondId cond_id = 0;
    LambdaProgram prog(
        "condvar", 3,
        [&](SetupCtx &ctx) {
            ctx.global("queue", mem::tArray(mem::tInt64(), 64));
            ctx.global("head", mem::tInt64());
            ctx.global("tail", mem::tInt64());
            ctx.global("done", mem::tInt64());
            ctx.global("consumed", mem::tInt64());
            mutex_id = ctx.mutex();
            cond_id = ctx.cond();
        },
        [&](ThreadCtx &ctx) {
            const Addr queue = ctx.global("queue");
            const Addr head = ctx.global("head");
            const Addr tail = ctx.global("tail");
            const Addr done = ctx.global("done");
            const Addr consumed = ctx.global("consumed");
            if (ctx.tid() == 0) {
                // Producer: 20 items then a done flag.
                for (std::int64_t i = 1; i <= 20; ++i) {
                    ctx.lock(mutex_id);
                    const auto t = ctx.load<std::int64_t>(tail);
                    ctx.store<std::int64_t>(queue + 8 * (t % 64), i);
                    ctx.store<std::int64_t>(tail, t + 1);
                    ctx.condBroadcast(cond_id);
                    ctx.unlock(mutex_id);
                }
                ctx.lock(mutex_id);
                ctx.store<std::int64_t>(done, 1);
                ctx.condBroadcast(cond_id);
                ctx.unlock(mutex_id);
            } else {
                for (;;) {
                    ctx.lock(mutex_id);
                    while (ctx.load<std::int64_t>(head) ==
                               ctx.load<std::int64_t>(tail) &&
                           ctx.load<std::int64_t>(done) == 0) {
                        ctx.condWait(cond_id, mutex_id);
                    }
                    if (ctx.load<std::int64_t>(head) ==
                        ctx.load<std::int64_t>(tail)) {
                        ctx.unlock(mutex_id);
                        break; // done and drained
                    }
                    const auto h = ctx.load<std::int64_t>(head);
                    const auto item =
                        ctx.load<std::int64_t>(queue + 8 * (h % 64));
                    ctx.store<std::int64_t>(head, h + 1);
                    const auto c = ctx.load<std::int64_t>(consumed);
                    ctx.store<std::int64_t>(consumed, c + item);
                    ctx.unlock(mutex_id);
                }
            }
        });
    machine.run(prog);
    EXPECT_EQ(machine.memory().readValue(
                  machine.staticSegment().addressOf("consumed"), 8),
              static_cast<std::uint64_t>(20 * 21 / 2));
}

TEST(Sync, DeadlockIsDetected)
{
    // Classic AB/BA lock-ordering violation. Some seeds complete (one
    // thread wins both locks first); at least one seed in a small set must
    // interleave the first acquisitions, and the machine must report the
    // deadlock rather than hang.
    bool deadlocked = false;
    for (std::uint64_t seed = 1; seed <= 12 && !deadlocked; ++seed) {
        Machine machine(config(seed));
        MutexId a = 0, b = 0;
        LambdaProgram prog(
            "deadlock", 2,
            [&](SetupCtx &ctx) {
                a = ctx.mutex();
                b = ctx.mutex();
            },
            [&](ThreadCtx &ctx) {
                if (ctx.tid() == 0) {
                    ctx.lock(a);
                    ctx.tick(10);
                    ctx.lock(b);
                    ctx.unlock(b);
                    ctx.unlock(a);
                } else {
                    ctx.lock(b);
                    ctx.tick(10);
                    ctx.lock(a);
                    ctx.unlock(a);
                    ctx.unlock(b);
                }
            });
        try {
            machine.run(prog);
        } catch (const SimError &) {
            deadlocked = true;
        }
    }
    EXPECT_TRUE(deadlocked);
}

} // namespace
} // namespace icheck::sim
