/**
 * @file
 * EventRing: the SPSC queue under the event transport.
 */

#include <gtest/gtest.h>

#include "sim/event_ring.hpp"

namespace icheck::sim
{
namespace
{

EventRecord
loadRecord(std::uint64_t seq, Addr addr)
{
    EventRecord rec{};
    rec.seq = seq;
    rec.kind = EventKind::Load;
    rec.load = LoadEvent{1, 0, addr, 8};
    return rec;
}

TEST(EventRing, RecordStaysOneCacheLine)
{
    EXPECT_LE(sizeof(EventRecord), 64u);
    EXPECT_TRUE(std::is_trivially_copyable_v<EventRecord>);
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(EventRing(1).capacity(), 1u);
    EXPECT_EQ(EventRing(2).capacity(), 2u);
    EXPECT_EQ(EventRing(3).capacity(), 4u);
    EXPECT_EQ(EventRing(1000).capacity(), 1024u);
    EXPECT_EQ(EventRing(1024).capacity(), 1024u);
}

TEST(EventRing, PushPopRoundTrip)
{
    EventRing ring(8);
    EXPECT_TRUE(ring.empty());
    EXPECT_TRUE(ring.tryPush(loadRecord(1, 0x10)));
    EXPECT_TRUE(ring.tryPush(loadRecord(2, 0x20)));
    EXPECT_EQ(ring.size(), 2u);

    EventRecord out{};
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.seq, 1u);
    EXPECT_EQ(out.load.addr, 0x10u);
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.seq, 2u);
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_TRUE(ring.empty());
}

TEST(EventRing, FullRingRefusesWithoutDropping)
{
    EventRing ring(4);
    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(ring.tryPush(loadRecord(i, i)));
    // Overflow policy belongs to the caller: the ring only refuses.
    EXPECT_FALSE(ring.tryPush(loadRecord(5, 5)));
    EXPECT_EQ(ring.tryReserve(), nullptr);
    EXPECT_EQ(ring.size(), 4u);

    EventRecord out{};
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.seq, 1u); // Nothing was overwritten.
    EXPECT_TRUE(ring.tryPush(loadRecord(5, 5)));
}

TEST(EventRing, WrapAroundPreservesFifoOrder)
{
    EventRing ring(4);
    std::uint64_t next_push = 1;
    std::uint64_t next_pop = 1;
    // Cycle far past the capacity so indices wrap several times.
    for (int round = 0; round < 64; ++round) {
        while (ring.tryPush(loadRecord(next_push, next_push)))
            ++next_push;
        EventRecord out{};
        while (ring.tryPop(out)) {
            EXPECT_EQ(out.seq, next_pop);
            EXPECT_EQ(out.load.addr, next_pop);
            ++next_pop;
        }
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_GT(next_pop, 64u);
}

TEST(EventRing, SingleSlotRingAlternates)
{
    EventRing ring(1);
    ASSERT_EQ(ring.capacity(), 1u);
    for (std::uint64_t i = 1; i <= 16; ++i) {
        EXPECT_TRUE(ring.tryPush(loadRecord(i, i)));
        EXPECT_FALSE(ring.tryPush(loadRecord(i + 100, 0)));
        EventRecord out{};
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out.seq, i);
        EXPECT_FALSE(ring.tryPop(out));
    }
}

TEST(EventRing, ReserveCommitBuildsInPlace)
{
    EventRing ring(2);
    EventRecord *slot = ring.tryReserve();
    ASSERT_NE(slot, nullptr);
    // The reserved slot stays invisible until commit().
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.front(), nullptr);

    slot->seq = 7;
    slot->kind = EventKind::Store;
    slot->store = StoreEvent{2,    1,    0x40, 0, 9, 8, hashing::ValueClass::Integer,
                             CostDomain::Native, true};
    ring.commit();

    const EventRecord *front = ring.front();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(front, slot); // Zero-copy: dispatch reads the slot itself.
    EXPECT_EQ(front->seq, 7u);
    EXPECT_EQ(front->store.newBits, 9u);
    EXPECT_EQ(front->store.tid, 2u);
    ring.popFront();
    EXPECT_TRUE(ring.empty());
}

TEST(EventRing, FrontIsStableUntilPopFront)
{
    EventRing ring(4);
    ASSERT_TRUE(ring.tryPush(loadRecord(1, 0xA)));
    const EventRecord *first = ring.front();
    ASSERT_NE(first, nullptr);
    ASSERT_TRUE(ring.tryPush(loadRecord(2, 0xB)));
    // A concurrent producer push must not move or clobber the front.
    EXPECT_EQ(ring.front(), first);
    EXPECT_EQ(first->load.addr, 0xAu);
    ring.popFront();
    ASSERT_NE(ring.front(), nullptr);
    EXPECT_EQ(ring.front()->load.addr, 0xBu);
}

TEST(EventRing, InitResizesAndResets)
{
    EventRing ring(2);
    ASSERT_TRUE(ring.tryPush(loadRecord(1, 1)));
    ring.init(8);
    EXPECT_EQ(ring.capacity(), 8u);
    EXPECT_TRUE(ring.empty()); // init discards queued records.
    for (std::uint64_t i = 1; i <= 8; ++i)
        EXPECT_TRUE(ring.tryPush(loadRecord(i, i)));
    EXPECT_FALSE(ring.tryPush(loadRecord(9, 9)));
}

} // namespace
} // namespace icheck::sim
