/**
 * @file
 * Section 5 library-call interception: gettimeofday and rand return
 * schedule-independent, per-thread-repeatable values, and history hashing
 * (the Light64-style load-history fingerprint) distinguishes internal
 * nondeterminism that state hashing correctly ignores.
 */

#include <gtest/gtest.h>
#include <set>

#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::sim
{
namespace
{

TEST(Interception, TimeOfDayIsVirtualAndRepeatable)
{
    auto collect = [](std::uint64_t sched_seed) {
        MachineConfig cfg;
        cfg.numCores = 4;
        cfg.schedSeed = sched_seed;
        Machine machine(cfg);
        std::vector<std::uint64_t> times;
        LambdaProgram prog(
            "time", 3, nullptr,
            [&](ThreadCtx &ctx) {
                for (int i = 0; i < 3; ++i) {
                    const std::uint64_t t = ctx.timeOfDayUs();
                    if (ctx.tid() == 1)
                        times.push_back(t);
                }
            });
        machine.run(prog);
        return times;
    };
    const auto a = collect(1);
    const auto b = collect(999);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b) << "virtual time is input, not schedule";
    EXPECT_LT(a[0], a[1]);
    EXPECT_LT(a[1], a[2]);
}

TEST(Interception, RandSequencesAreThreadDisjoint)
{
    MachineConfig cfg;
    cfg.numCores = 4;
    Machine machine(cfg);
    std::set<std::uint64_t> values;
    std::uint64_t calls = 0;
    LambdaProgram prog(
        "rand", 4, nullptr,
        [&](ThreadCtx &ctx) {
            for (int i = 0; i < 8; ++i) {
                values.insert(ctx.rand64());
                ++calls;
            }
        });
    machine.run(prog);
    EXPECT_EQ(values.size(), calls)
        << "different threads must not share rand sequences";
}

TEST(Interception, HistoryHashSeesInternalNondeterminismStateHashIgnores)
{
    // The Figure 1 program: externally deterministic, internally not.
    // The state fingerprint (which includes Light64-style load-history
    // hashes) distinguishes the lock orders; the State Hash does not —
    // the paper's Section 9 distinction between hashing the *history* of
    // a computation and hashing its *state*.
    auto run = [](std::uint64_t seed) {
        MachineConfig cfg;
        cfg.numCores = 2;
        cfg.schedSeed = seed;
        Machine machine(cfg);
        auto mutex_id = std::make_shared<MutexId>();
        LambdaProgram prog(
            "fig1", 2,
            [mutex_id](SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
                ctx.unlock(*mutex_id);
            });
        machine.run(prog);
        hashing::ModHash state;
        for (ThreadId t = 0; t < machine.numThreads(); ++t)
            state += hashing::ModHash(machine.threadHash(t));
        return std::pair{state.raw(), machine.stateSignature()};
    };
    std::set<HashWord> states;
    std::set<std::uint64_t> histories;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto [state, history] = run(seed);
        states.insert(state);
        histories.insert(history);
    }
    EXPECT_EQ(states.size(), 1u) << "externally deterministic";
    EXPECT_GT(histories.size(), 1u)
        << "histories must expose the internal nondeterminism";
}

} // namespace
} // namespace icheck::sim
