/**
 * @file
 * Core Machine behaviour: typed memory access, allocation, instruction
 * accounting, output, intercepted library calls.
 */

#include <gtest/gtest.h>

#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::sim
{
namespace
{

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = 7;
    return cfg;
}

TEST(Machine, StoresAndLoadsRoundTrip)
{
    Machine machine(smallConfig());
    LambdaProgram prog(
        "roundtrip", 1,
        [](SetupCtx &ctx) {
            ctx.global("g", mem::tStruct({mem::tInt64(), mem::tDouble(),
                                          mem::tFloat(), mem::tInt8()}));
        },
        [](ThreadCtx &ctx) {
            const Addr g = ctx.global("g");
            ctx.store<std::int64_t>(g, -123456789);
            ctx.store<double>(g + 8, 2.5);
            ctx.store<float>(g + 16, -0.75f);
            ctx.store<std::uint8_t>(g + 20, 0xab);
            EXPECT_EQ(ctx.load<std::int64_t>(g), -123456789);
            EXPECT_EQ(ctx.load<double>(g + 8), 2.5);
            EXPECT_EQ(ctx.load<float>(g + 16), -0.75f);
            EXPECT_EQ(ctx.load<std::uint8_t>(g + 20), 0xab);
        });
    const RunResult result = machine.run(prog);
    EXPECT_GE(result.nativeInstrs, 8u);
    EXPECT_EQ(result.checkpoints, 1u) << "program end is a checkpoint";
}

TEST(Machine, SetupStateVisibleToThreads)
{
    Machine machine(smallConfig());
    LambdaProgram prog(
        "setupvis", 2,
        [](SetupCtx &ctx) {
            const Addr g = ctx.global("data", mem::tArray(mem::tInt32(),
                                                          8));
            for (int i = 0; i < 8; ++i)
                ctx.init<std::int32_t>(g + 4 * i, i * i);
        },
        [](ThreadCtx &ctx) {
            const Addr g = ctx.global("data");
            for (int i = 0; i < 8; ++i)
                EXPECT_EQ(ctx.load<std::int32_t>(g + 4 * i), i * i);
        });
    machine.run(prog);
}

TEST(Machine, HeapAllocationZeroedUnderInstrumentation)
{
    Machine machine(smallConfig());
    machine.setInstrumentation(true);
    LambdaProgram prog(
        "alloczero", 1, nullptr,
        [](ThreadCtx &ctx) {
            const Addr block =
                ctx.malloc("test.cpp:block", mem::tArray(mem::tInt64(),
                                                         16));
            for (int i = 0; i < 16; ++i)
                EXPECT_EQ(ctx.load<std::int64_t>(block + 8 * i), 0);
            ctx.store<std::int64_t>(block, 77);
            ctx.free(block);
        });
    const RunResult result = machine.run(prog);
    EXPECT_GT(result.overheadInstrs, 0u)
        << "zeroing and scrubbing must be accounted as overhead";
}

TEST(Machine, ScrubOnFreeErasesContents)
{
    Machine machine(smallConfig());
    machine.setInstrumentation(true);
    LambdaProgram prog(
        "scrub", 1, nullptr,
        [&](ThreadCtx &ctx) {
            const Addr block =
                ctx.malloc("test.cpp:scrub", mem::tArray(mem::tInt64(),
                                                         4));
            ctx.store<std::int64_t>(block, 0x1111);
            ctx.store<std::int64_t>(block + 24, 0x2222);
            ctx.free(block);
            EXPECT_EQ(machine.memory().readValue(block, 8), 0u);
            EXPECT_EQ(machine.memory().readValue(block + 24, 8), 0u);
        });
    machine.run(prog);
}

TEST(Machine, InterceptedRandIsPerThreadStable)
{
    std::vector<std::uint64_t> values_a, values_b;
    for (int round = 0; round < 2; ++round) {
        auto &values = round == 0 ? values_a : values_b;
        MachineConfig cfg = smallConfig();
        cfg.schedSeed = 100 + round * 55; // different schedules
        Machine machine(cfg);
        LambdaProgram prog(
            "rand", 2, nullptr,
            [&](ThreadCtx &ctx) {
                for (int i = 0; i < 4; ++i) {
                    const std::uint64_t v = ctx.rand64();
                    if (ctx.tid() == 0)
                        values.push_back(v);
                }
            });
        machine.run(prog);
    }
    EXPECT_EQ(values_a, values_b)
        << "intercepted rand() must repeat across runs (Section 5)";
}

TEST(Machine, OutputStreamCollected)
{
    Machine machine(smallConfig());
    LambdaProgram prog(
        "output", 1, nullptr,
        [](ThreadCtx &ctx) {
            const char msg[] = "hello";
            ctx.output(msg, 5);
            ctx.outputValue<std::uint32_t>(42);
        });
    machine.run(prog);
    EXPECT_EQ(machine.output().size(), 9u);
    EXPECT_EQ(machine.output()[0], 'h');
}

TEST(Machine, TickAddsCompute)
{
    MachineConfig cfg = smallConfig();
    Machine machine(cfg);
    LambdaProgram prog("tick", 1, nullptr,
                       [](ThreadCtx &ctx) { ctx.tick(12345); });
    const RunResult result = machine.run(prog);
    EXPECT_GE(result.nativeInstrs, 12345u);
}

TEST(Machine, RunIsSingleUse)
{
    Machine machine(smallConfig());
    LambdaProgram prog("once", 1, nullptr, [](ThreadCtx &) {});
    machine.run(prog);
    EXPECT_DEATH(machine.run(prog), "exactly one run");
}

TEST(Machine, ManualCheckpointCounts)
{
    Machine machine(smallConfig());
    std::uint64_t manual = 0;
    machine.setCheckpointHandler([&](const CheckpointInfo &info) {
        if (info.kind == CheckpointKind::Manual)
            ++manual;
    });
    LambdaProgram prog(
        "manualcp", 1, nullptr,
        [](ThreadCtx &ctx) {
            for (int i = 0; i < 3; ++i)
                ctx.checkpoint();
        });
    const RunResult result = machine.run(prog);
    EXPECT_EQ(manual, 3u);
    EXPECT_EQ(result.checkpoints, 4u) << "3 manual + program end";
}

} // namespace
} // namespace icheck::sim
