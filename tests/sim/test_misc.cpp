/**
 * @file
 * Remaining simulator surfaces: stats rendering, setup-context helpers,
 * subset barriers, scripted-scheduler bookkeeping, recording scheduler.
 */

#include <gtest/gtest.h>
#include <memory>

#include "explore/replay.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::sim
{
namespace
{

TEST(MachineStats, RenderCoversMachineAndCores)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    Machine machine(cfg);
    machine.setInstrumentation(true);
    LambdaProgram prog(
        "stats", 2, nullptr,
        [](ThreadCtx &ctx) {
            const Addr block = ctx.malloc("stats.cpp:b", mem::tInt64());
            ctx.store<std::int64_t>(block, 1);
            ctx.outputValue<std::uint16_t>(3);
        });
    machine.run(prog);
    const std::string report = machine.renderStats();
    EXPECT_NE(report.find("---------- machine ----------"),
              std::string::npos);
    EXPECT_NE(report.find("---------- core 0 ----------"),
              std::string::npos);
    EXPECT_NE(report.find("---------- core 1 ----------"),
              std::string::npos);
    EXPECT_NE(report.find("heap.allocations=2"), std::string::npos);
    EXPECT_NE(report.find("output.bytes=4"), std::string::npos);
    EXPECT_NE(report.find("mhm.stores_hashed="), std::string::npos);
}

TEST(SetupCtx, AllocPeekAndInitWork)
{
    MachineConfig cfg;
    cfg.numCores = 1;
    Machine machine(cfg);
    Addr heap_block = 0;
    LambdaProgram prog(
        "setup", 1,
        [&](SetupCtx &ctx) {
            const Addr g = ctx.global("g", mem::tDouble());
            ctx.init<double>(g, 2.75);
            EXPECT_DOUBLE_EQ(ctx.peek<double>(g), 2.75);
            heap_block =
                ctx.alloc("setup.cpp:init", mem::tArray(mem::tInt32(), 4));
            ctx.init<std::int32_t>(heap_block + 4, -9);
            EXPECT_EQ(ctx.threadsPlanned(), 1u);
            EXPECT_EQ(ctx.inputSeed(), 42u);
            EXPECT_EQ(ctx.addressOf("g"), g);
        },
        [&](ThreadCtx &ctx) {
            EXPECT_DOUBLE_EQ(ctx.load<double>(ctx.global("g")), 2.75);
            EXPECT_EQ(ctx.load<std::int32_t>(heap_block + 4), -9);
        });
    machine.run(prog);
    EXPECT_EQ(machine.allocator().liveBytes(), 16u);
}

TEST(Sync, SubsetBarrierReleasesOnlyItsParties)
{
    // A barrier among threads 0 and 1 while thread 2 works independently:
    // the barrier must complete without thread 2 and still checkpoint.
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 3;
    Machine machine(cfg);
    std::uint64_t barrier_checkpoints = 0;
    machine.setCheckpointHandler([&](const CheckpointInfo &info) {
        if (info.kind == CheckpointKind::Barrier)
            ++barrier_checkpoints;
    });
    BarrierId pair_barrier = 0;
    LambdaProgram prog(
        "subset", 3,
        [&](SetupCtx &ctx) {
            ctx.global("done2", mem::tInt64());
            pair_barrier = ctx.barrier(2);
        },
        [&](ThreadCtx &ctx) {
            if (ctx.tid() < 2) {
                for (int round = 0; round < 3; ++round)
                    ctx.barrier(pair_barrier);
            } else {
                ctx.store<std::int64_t>(ctx.global("done2"), 1);
            }
        });
    machine.run(prog);
    EXPECT_EQ(barrier_checkpoints, 3u);
}

TEST(ScriptedScheduler, PreferPreviousAvoidsPreemption)
{
    ScriptedScheduler sched({}, 1, /*prefer_previous=*/true);
    EXPECT_EQ(sched.pick({0, 1, 2}), 0u) << "first pick defaults low";
    EXPECT_EQ(sched.pick({0, 1, 2}), 0u) << "sticks with the runner";
    EXPECT_EQ(sched.pick({1, 2}), 1u)
        << "previous blocked: fall back to index 0";
    EXPECT_EQ(sched.pick({0, 1, 2}), 1u) << "now sticks with thread 1";
    ASSERT_EQ(sched.previousIndices().size(), 4u);
    EXPECT_EQ(sched.previousIndices()[0], -1);
    EXPECT_EQ(sched.previousIndices()[2], -1)
        << "thread 0 absent from the runnable set";
    EXPECT_EQ(sched.previousIndices()[3], 1);
    EXPECT_EQ(sched.chosenIndices().size(), 4u);
}

TEST(RecordingScheduler, LogsChoiceIndicesAndQuanta)
{
    explore::RecordingScheduler recorder(
        std::make_unique<RoundRobinScheduler>(7));
    const std::vector<ThreadId> runnable{3, 5, 9};
    recorder.pick(runnable);   // round robin: 3 -> index 0
    recorder.quantum();
    recorder.pick(runnable);   // 5 -> index 1
    recorder.quantum();
    recorder.pick({3, 9});     // after 5, next is 9 -> index 1
    EXPECT_EQ(recorder.choices(),
              (std::vector<std::uint32_t>{0, 1, 1}));
    EXPECT_EQ(recorder.quanta(),
              (std::vector<std::uint64_t>{7, 7}));
}

} // namespace
} // namespace icheck::sim
