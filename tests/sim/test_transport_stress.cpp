/**
 * @file
 * Async-drain stress: the producer (machine thread) and the transport's
 * consumer thread hammer the SPSC rings concurrently. Run under TSan
 * (the CI tsan job filters on the Transport and EventRing suites) to
 * prove the acquire/release protocol has no data races; the assertions
 * re-check order and completeness under contention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_ring.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/transport.hpp"

namespace icheck::sim
{
namespace
{

TEST(TransportStress, RawRingTwoThreadHammer)
{
    // Tiny ring so both sides constantly race across the full/empty
    // boundaries; every record is checked for order and integrity.
    EventRing ring(4);
    constexpr std::uint64_t kCount = 200'000;

    std::thread producer([&] {
        for (std::uint64_t i = 1; i <= kCount; ++i) {
            EventRecord rec{};
            rec.seq = i;
            rec.kind = EventKind::Load;
            rec.load = LoadEvent{static_cast<ThreadId>(i & 3), 0, i * 8, 8};
            while (!ring.tryPush(rec))
                std::this_thread::yield();
        }
    });

    std::uint64_t next = 1;
    while (next <= kCount) {
        const EventRecord *front = ring.front();
        if (front == nullptr) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(front->seq, next);
        ASSERT_EQ(front->load.addr, next * 8);
        ring.popFront();
        ++next;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

/** Counts events on the consumer thread; detects ordering violations. */
class CountingListener : public AccessListener
{
  public:
    void
    onStore(const StoreEvent &event) override
    {
        ++stores;
        sum += event.newBits;
    }

    void onLoad(const LoadEvent &) override { ++loads; }
    void onSync(const SyncEvent &) override { ++syncs; }

    std::uint64_t stores = 0;
    std::uint64_t loads = 0;
    std::uint64_t syncs = 0;
    std::uint64_t sum = 0;
};

std::unique_ptr<LambdaProgram>
stressProgram(std::shared_ptr<BarrierId> barrier_id, int iters)
{
    return std::make_unique<LambdaProgram>(
        "stress", 4,
        [barrier_id](SetupCtx &ctx) {
            ctx.global("g", mem::tArray(mem::tInt64(), 64));
            *barrier_id = ctx.barrier(4);
        },
        [barrier_id, iters](ThreadCtx &ctx) {
            const Addr g = ctx.global("g");
            for (int i = 0; i < iters; ++i) {
                const Addr slot = g + 8 * ((ctx.tid() * 16 + i) % 64);
                ctx.store<std::int64_t>(
                    slot, ctx.load<std::int64_t>(slot) + 1);
                if (i % 32 == 31)
                    ctx.barrier(*barrier_id);
            }
        });
}

TEST(TransportStress, AsyncDrainMatchesInlineUnderPressure)
{
    // Small rings + async drain: the producer blocks on full rings while
    // the consumer thread races it. The counts must equal the inline
    // (deterministic, single-threaded) drain's bit for bit.
    std::uint64_t expect_stores = 0, expect_loads = 0, expect_syncs = 0,
                  expect_sum = 0;
    for (int mode = 0; mode < 2; ++mode) {
        TransportConfig shape;
        shape.ringCapacity = 2;
        shape.async = mode == 1;
        CountingListener counter;
        EventTransport transport(shape);
        MachineConfig cfg;
        cfg.numCores = 4;
        cfg.schedSeed = 5;
        Machine machine(cfg);
        transport.addListener(&counter);
        machine.setTransport(&transport);
        auto barrier_id = std::make_shared<BarrierId>();
        auto prog = stressProgram(barrier_id, 256);
        machine.run(*prog);
        machine.setTransport(nullptr);
        EXPECT_EQ(transport.publishedCount(), transport.deliveredCount());
        if (mode == 0) {
            expect_stores = counter.stores;
            expect_loads = counter.loads;
            expect_syncs = counter.syncs;
            expect_sum = counter.sum;
            ASSERT_GT(expect_stores, 0u);
        } else {
            EXPECT_EQ(counter.stores, expect_stores);
            EXPECT_EQ(counter.loads, expect_loads);
            EXPECT_EQ(counter.syncs, expect_syncs);
            EXPECT_EQ(counter.sum, expect_sum);
        }
    }
}

TEST(TransportStress, RepeatedAsyncRunsShutDownCleanly)
{
    // Start/stop the consumer thread many times: join/detach races and
    // leaked drain threads show up loudly under TSan.
    for (int round = 0; round < 16; ++round) {
        TransportConfig shape;
        shape.ringCapacity = 8;
        shape.async = true;
        CountingListener counter;
        EventTransport transport(shape);
        MachineConfig cfg;
        cfg.numCores = 2;
        cfg.schedSeed = 100 + round;
        Machine machine(cfg);
        transport.addListener(&counter);
        machine.setTransport(&transport);
        auto barrier_id = std::make_shared<BarrierId>();
        auto prog = stressProgram(barrier_id, 64);
        machine.run(*prog);
        machine.setTransport(nullptr);
        EXPECT_EQ(transport.publishedCount(), transport.deliveredCount());
        EXPECT_GT(counter.stores, 0u);
    }
}

} // namespace
} // namespace icheck::sim
