/**
 * @file
 * Slice-granularity happens-before analysis: race detection on hand-built
 * slice graphs, the clock algebra of each synchronization kind, and the
 * footprint conflict predicate — the inputs DPOR's persistent/sleep-set
 * computation depends on.
 */

#include <gtest/gtest.h>

#include "race/slice_hb.hpp"

namespace icheck::race
{
namespace
{

constexpr std::uint64_t kG = 0x1000;
constexpr std::uint64_t kH = 0x2000;

/** SliceHb with a prelude closed, as the explorer always produces. */
SliceHb
analyzer()
{
    SliceHb hb(/*setup_tid=*/2);
    hb.closeSlice(2, SliceHb::noIndex); // empty prelude = slice 0
    return hb;
}

TEST(SliceHb, WriteWriteUnorderedIsARace)
{
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 0); // slice 1
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 1); // slice 2
    ASSERT_EQ(hb.races().size(), 1u);
    EXPECT_EQ(hb.races()[0].earlier, 1u);
    EXPECT_EQ(hb.races()[0].later, 2u);
}

TEST(SliceHb, ReadWriteAndWriteReadRace)
{
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Read, kG);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 1); // write races with the earlier read
    ASSERT_EQ(hb.races().size(), 1u);
    EXPECT_EQ(hb.races()[0].earlier, 1u);
    EXPECT_EQ(hb.races()[0].later, 2u);

    SliceHb hb2 = analyzer();
    hb2.record(SliceHb::Op::Write, kG);
    hb2.closeSlice(0, 0);
    hb2.record(SliceHb::Op::Read, kG);
    hb2.closeSlice(1, 1); // read races with the earlier write
    ASSERT_EQ(hb2.races().size(), 1u);
}

TEST(SliceHb, ReadReadIsNotARace)
{
    // Two reads commute: ordering them would hide reduction.
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Read, kG);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::Read, kG);
    hb.closeSlice(1, 1);
    EXPECT_TRUE(hb.races().empty());
}

TEST(SliceHb, SameThreadNeverRacesWithItself)
{
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 1);
    EXPECT_TRUE(hb.races().empty());
}

TEST(SliceHb, DisjointObjectsNeverRace)
{
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::Write, kH);
    hb.closeSlice(1, 1);
    EXPECT_TRUE(hb.races().empty());
}

TEST(SliceHb, ReleaseAcquireOrdersDataButAcquiresStillRace)
{
    // t0: acquire / write / release in separate slices; then t1 the same.
    // The data writes are ordered by release->acquire, but the acquire
    // pair itself is a race on purpose: lock-acquisition order is the
    // nondeterminism DPOR must explore.
    SliceHb hb = analyzer();
    const std::uint64_t m = mutexKey(7);
    hb.record(SliceHb::Op::Acquire, m);
    hb.closeSlice(0, 0); // slice 1: t0 acquire
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 1); // slice 2: t0 write
    hb.record(SliceHb::Op::Release, m);
    hb.closeSlice(0, 2); // slice 3: t0 release
    hb.record(SliceHb::Op::Acquire, m);
    hb.closeSlice(1, 3); // slice 4: t1 acquire
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 4); // slice 5: t1 write — ordered, no data race
    ASSERT_EQ(hb.races().size(), 1u);
    EXPECT_EQ(hb.races()[0].earlier, 1u) << "the acquire-acquire pair";
    EXPECT_EQ(hb.races()[0].later, 4u);
}

TEST(SliceHb, BarrierOrdersBothSidesWithoutRacing)
{
    // Writes separated by a full barrier episode are ordered; the
    // arrivals themselves commute (symmetric gather), so nothing races.
    SliceHb hb = analyzer();
    const std::uint64_t b = barrierKey(1);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 0); // t0 writes before the barrier
    hb.record(SliceHb::Op::BarrierArrive, b, /*epoch=*/0);
    hb.closeSlice(0, 1);
    hb.record(SliceHb::Op::BarrierArrive, b, 0);
    hb.closeSlice(1, 2);
    hb.record(SliceHb::Op::BarrierLeave, b, 0);
    hb.closeSlice(0, 3);
    hb.record(SliceHb::Op::BarrierLeave, b, 0);
    hb.closeSlice(1, 4);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 5); // t1 writes after the barrier
    EXPECT_TRUE(hb.races().empty());
}

TEST(SliceHb, CondSignalAndWaitAreAdjacencyChecked)
{
    SliceHb hb = analyzer();
    const std::uint64_t c = condKey(3);
    hb.record(SliceHb::Op::CondSignal, c);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::CondWait, c);
    hb.closeSlice(1, 1); // wait vs. signal: unordered contenders
    ASSERT_EQ(hb.races().size(), 1u);
    EXPECT_EQ(hb.races()[0].earlier, 1u);
    EXPECT_EQ(hb.races()[0].later, 2u);
}

TEST(SliceHb, PreludeWritesNeverRace)
{
    // Setup writes happen before every thread starts: even a thread's
    // very first slice is ordered after them via the base clock.
    SliceHb hb(/*setup_tid=*/2);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(2, SliceHb::noIndex); // prelude writes kG
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 1);
    ASSERT_EQ(hb.races().size(), 1u)
        << "only the two thread writes race, never the prelude";
    EXPECT_EQ(hb.races()[0].earlier, 1u);
    EXPECT_EQ(hb.races()[0].later, 2u);
}

TEST(SliceHb, AdjacentPairsOnlyViaConflictClosure)
{
    // t0 W, t1 W, t2 W: each write races with its immediate predecessor
    // only — the (t0, t2) pair is ordered by conflict closure and would
    // surface in the subtree a backtrack opens.
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(0, 0);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 1);
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(2, 2);
    ASSERT_EQ(hb.races().size(), 2u);
    EXPECT_EQ(hb.races()[0].earlier, 1u);
    EXPECT_EQ(hb.races()[0].later, 2u);
    EXPECT_EQ(hb.races()[1].earlier, 2u);
    EXPECT_EQ(hb.races()[1].later, 3u);
}

TEST(SliceHb, FootprintsAreSortedAndWriteOrEd)
{
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Read, kH);
    hb.record(SliceHb::Op::Write, kG);
    hb.record(SliceHb::Op::Read, kG); // read after write: stays a write
    hb.closeSlice(0, 0);
    const SliceFootprint &fp = hb.sliceFootprint(1);
    ASSERT_EQ(fp.size(), 2u);
    EXPECT_EQ(fp[0].object, kG);
    EXPECT_TRUE(fp[0].write);
    EXPECT_EQ(fp[1].object, kH);
    EXPECT_FALSE(fp[1].write);
}

TEST(SliceHb, SliceMetadataRoundTrips)
{
    SliceHb hb = analyzer();
    hb.record(SliceHb::Op::Write, kG);
    hb.closeSlice(1, 0);
    EXPECT_EQ(hb.sliceCount(), 2u);
    EXPECT_EQ(hb.sliceTid(0), 2u);
    EXPECT_EQ(hb.sliceDecision(0), SliceHb::noIndex);
    EXPECT_EQ(hb.sliceTid(1), 1u);
    EXPECT_EQ(hb.sliceDecision(1), 0u);
    EXPECT_TRUE(hb.openSliceEmpty());
    hb.record(SliceHb::Op::Read, kG);
    EXPECT_FALSE(hb.openSliceEmpty());
}

TEST(FootprintsConflict, SharedObjectNeedsAWrite)
{
    const SliceFootprint readG = {{kG, false}};
    const SliceFootprint writeG = {{kG, true}};
    const SliceFootprint writeH = {{kH, true}};
    const SliceFootprint readGwriteH = {{kG, false}, {kH, true}};
    EXPECT_FALSE(footprintsConflict(readG, readG));
    EXPECT_TRUE(footprintsConflict(readG, writeG));
    EXPECT_TRUE(footprintsConflict(writeG, writeG));
    EXPECT_FALSE(footprintsConflict(writeG, writeH));
    EXPECT_TRUE(footprintsConflict(writeH, readGwriteH));
    EXPECT_FALSE(footprintsConflict({}, writeG));
}

} // namespace
} // namespace icheck::race
