/**
 * @file
 * Vector clock algebra.
 */

#include <gtest/gtest.h>

#include "race/vector_clock.hpp"

namespace icheck::race
{
namespace
{

TEST(VectorClock, DefaultIsZero)
{
    VectorClock vc;
    EXPECT_EQ(vc.get(0), 0u);
    EXPECT_EQ(vc.get(100), 0u);
}

TEST(VectorClock, TickIncrementsOwnComponent)
{
    VectorClock vc;
    vc.tick(2);
    vc.tick(2);
    vc.tick(5);
    EXPECT_EQ(vc.get(2), 2u);
    EXPECT_EQ(vc.get(5), 1u);
    EXPECT_EQ(vc.get(0), 0u);
}

TEST(VectorClock, JoinTakesComponentwiseMax)
{
    VectorClock a, b;
    a.set(0, 3);
    a.set(1, 1);
    b.set(1, 5);
    b.set(2, 2);
    a.join(b);
    EXPECT_EQ(a.get(0), 3u);
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, PrecedesOrEquals)
{
    VectorClock a, b;
    a.set(0, 1);
    b.set(0, 2);
    b.set(1, 1);
    EXPECT_TRUE(a.precedesOrEquals(b));
    EXPECT_FALSE(b.precedesOrEquals(a));
    EXPECT_TRUE(a.precedesOrEquals(a));
}

TEST(VectorClock, ConcurrentClocksUnordered)
{
    VectorClock a, b;
    a.set(0, 2);
    b.set(1, 2);
    EXPECT_FALSE(a.precedesOrEquals(b));
    EXPECT_FALSE(b.precedesOrEquals(a));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros)
{
    VectorClock a, b;
    a.set(0, 1);
    b.set(0, 1);
    b.set(5, 0);
    EXPECT_TRUE(a == b);
}

TEST(Epoch, HappensBeforeIsO1ComponentCheck)
{
    VectorClock now;
    now.set(3, 7);
    EXPECT_TRUE((Epoch{3, 7}).happensBefore(now));
    EXPECT_TRUE((Epoch{3, 5}).happensBefore(now));
    EXPECT_FALSE((Epoch{3, 8}).happensBefore(now));
    EXPECT_FALSE((Epoch{1, 1}).happensBefore(now));
    EXPECT_TRUE(Epoch{}.happensBefore(now)) << "invalid epoch: no write";
}

TEST(VectorClock, RenderIsReadable)
{
    VectorClock vc;
    vc.set(0, 3);
    vc.set(2, 7);
    EXPECT_EQ(vc.render(), "[3,0,7]");
}

} // namespace
} // namespace icheck::race
