/**
 * @file
 * Happens-before race detection on simulated programs, and the benign-
 * race filter of Section 6.1.
 */

#include <gtest/gtest.h>
#include <memory>

#include "apps/apps.hpp"
#include "race/benign_filter.hpp"
#include "race/race_detector.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::race
{
namespace
{

using sim::LambdaProgram;

sim::MachineConfig
config(std::uint64_t seed)
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = seed;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 5;
    return cfg;
}

TEST(RaceDetector, LockProtectedProgramIsClean)
{
    sim::Machine machine(config(3));
    RaceDetector detector;
    machine.addListener(&detector);
    sim::MutexId mutex_id = 0;
    LambdaProgram prog(
        "clean", 4,
        [&](sim::SetupCtx &ctx) {
            ctx.global("x", mem::tInt64());
            mutex_id = ctx.mutex();
        },
        [&](sim::ThreadCtx &ctx) {
            for (int i = 0; i < 20; ++i) {
                ctx.lock(mutex_id);
                ctx.store<std::int64_t>(
                    ctx.global("x"),
                    ctx.load<std::int64_t>(ctx.global("x")) + 1);
                ctx.unlock(mutex_id);
            }
        });
    machine.run(prog);
    EXPECT_TRUE(detector.races().empty());
    EXPECT_GT(detector.accessesChecked(), 0u);
}

TEST(RaceDetector, UnlockedSharedCounterRaces)
{
    sim::Machine machine(config(3));
    RaceDetector detector;
    machine.addListener(&detector);
    LambdaProgram prog(
        "racy", 4,
        [](sim::SetupCtx &ctx) { ctx.global("x", mem::tInt64()); },
        [](sim::ThreadCtx &ctx) {
            for (int i = 0; i < 20; ++i) {
                ctx.store<std::int64_t>(
                    ctx.global("x"),
                    ctx.load<std::int64_t>(ctx.global("x")) + 1);
            }
        });
    machine.run(prog);
    EXPECT_FALSE(detector.races().empty());
    EXPECT_EQ(detector.racyGranules().size(), 1u);
}

TEST(RaceDetector, BarrierOrdersCrossThreadAccesses)
{
    sim::Machine machine(config(5));
    RaceDetector detector;
    machine.addListener(&detector);
    sim::BarrierId barrier_id = 0;
    LambdaProgram prog(
        "barriered", 4,
        [&](sim::SetupCtx &ctx) {
            ctx.global("stage", mem::tArray(mem::tInt64(), 4));
            barrier_id = ctx.barrier(4);
        },
        [&](sim::ThreadCtx &ctx) {
            const Addr stage = ctx.global("stage");
            // Phase 1: write own slot.
            ctx.store<std::int64_t>(stage + 8 * ctx.tid(), ctx.tid());
            ctx.barrier(barrier_id);
            // Phase 2: read everyone's slot (ordered by the barrier).
            std::int64_t sum = 0;
            for (ThreadId t = 0; t < 4; ++t)
                sum += ctx.load<std::int64_t>(stage + 8 * t);
            ctx.tick(static_cast<InstCount>(sum >= 0 ? 1 : 2));
        });
    machine.run(prog);
    EXPECT_TRUE(detector.races().empty())
        << "barrier-separated accesses must not be reported";
}

TEST(RaceDetector, InstrumentationStoresAreNotAnalyzed)
{
    sim::Machine machine(config(7));
    machine.setInstrumentation(true); // zeroing/scrubbing stores happen
    RaceDetector detector;
    machine.addListener(&detector);
    LambdaProgram prog(
        "allocfree", 2, nullptr,
        [](sim::ThreadCtx &ctx) {
            // Disjoint per-thread heap work; the only shared-looking
            // stores are the checker's own zero/scrub stores.
            const Addr block = ctx.malloc(
                "t" + std::to_string(ctx.tid()),
                mem::tArray(mem::tInt64(), 8));
            for (int i = 0; i < 8; ++i)
                ctx.store<std::int64_t>(block + 8 * i, i);
            ctx.free(block);
        });
    machine.run(prog);
    EXPECT_TRUE(detector.races().empty());
}

TEST(RaceDetector, VolrendHandCodedBarrierRaceIsFound)
{
    // The paper's volrend has a benign race in a hand-coded barrier; the
    // detector must see it (it is a real race), and the filter must
    // classify it benign (volrend is externally deterministic).
    sim::Machine machine(config(11));
    RaceDetector detector;
    machine.addListener(&detector);
    apps::Volrend volrend(4, /*frames=*/2, /*pixels=*/64);
    machine.run(volrend);
    EXPECT_FALSE(detector.races().empty())
        << "the generation-flag spin is a data race";
}

TEST(BenignFilter, RaceFreeProgramReportsNoRaces)
{
    const FilterReport report = classifyRaces(
        [] {
            return std::make_unique<apps::Blackscholes>(4, 32u, 2u);
        },
        config(1), /*runs=*/6, /*base_seed=*/100);
    EXPECT_EQ(report.verdict, RaceVerdict::NoRaces);
}

TEST(BenignFilter, VolrendRaceClassifiedBenign)
{
    const FilterReport report = classifyRaces(
        [] { return std::make_unique<apps::Volrend>(4, 2u, 64u); },
        config(1), /*runs=*/8, /*base_seed=*/100);
    EXPECT_EQ(report.verdict, RaceVerdict::Benign)
        << "distinct final states: " << report.distinctStates;
    EXPECT_FALSE(report.races.empty());
}

TEST(BenignFilter, HarmfulRaceChangesState)
{
    const FilterReport report = classifyRaces(
        [] {
            return std::make_unique<sim::LambdaProgram>(
                "harmful", 4,
                [](sim::SetupCtx &ctx) {
                    ctx.global("w", mem::tInt64());
                },
                [](sim::ThreadCtx &ctx) {
                    for (int i = 0; i < 10; ++i)
                        ctx.store<std::int64_t>(ctx.global("w"),
                                                ctx.tid() * 10 + i);
                });
        },
        config(1), /*runs=*/8, /*base_seed=*/100);
    EXPECT_EQ(report.verdict, RaceVerdict::Harmful);
    EXPECT_GT(report.distinctStates, 1u);
}

} // namespace
} // namespace icheck::race

namespace icheck::race
{
namespace
{

TEST(RaceDetector, DescribeRacesSymbolizesOwners)
{
    sim::Machine machine(config(19));
    RaceDetector detector;
    machine.addListener(&detector);
    Addr block = 0;
    sim::LambdaProgram prog(
        "sym", 2,
        [](sim::SetupCtx &ctx) { ctx.global("shared", mem::tInt64()); },
        [&](sim::ThreadCtx &ctx) {
            if (ctx.tid() == 0)
                block = ctx.malloc("sym.cpp:buf",
                                   mem::tArray(mem::tInt64(), 4));
            // Race on the global from both threads.
            for (int i = 0; i < 10; ++i)
                ctx.store<std::int64_t>(ctx.global("shared"),
                                        ctx.tid() + i);
        });
    machine.run(prog);
    ASSERT_FALSE(detector.races().empty());
    const auto lines = describeRaces(detector.races(), machine);
    ASSERT_EQ(lines.size(), detector.races().size());
    bool saw_global = false;
    for (const std::string &line : lines) {
        if (line.find("global:shared") != std::string::npos)
            saw_global = true;
        EXPECT_NE(line.find("race between"), std::string::npos) << line;
    }
    EXPECT_TRUE(saw_global);
}

TEST(RaceDetector, RaceKindNames)
{
    EXPECT_EQ(raceKindName(RaceKind::WriteWrite), "write-write");
    EXPECT_EQ(raceKindName(RaceKind::ReadWrite), "read-write");
    EXPECT_EQ(raceKindName(RaceKind::WriteRead), "write-read");
}

} // namespace
} // namespace icheck::race
