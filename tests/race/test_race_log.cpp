/**
 * @file
 * Attributed race export: source-site capture via std::source_location,
 * JSONL serialization, and end-to-end export of a seeded bug.
 */

#include <gtest/gtest.h>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "race/race_detector.hpp"
#include "race/race_log.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/trace_listener.hpp"

namespace icheck::race
{
namespace
{

sim::MachineConfig
config(std::uint64_t seed)
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = seed;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 5;
    return cfg;
}

TEST(RaceLog, AttributesRacingAccessesToThisFile)
{
    sim::Machine machine(config(7));
    machine.setAccessSiteTracking(true);
    RaceDetector detector;
    AccessAttributor attributor(machine);
    machine.addListener(&detector);
    machine.addListener(&attributor);
    sim::LambdaProgram prog(
        "racy", 2,
        [&](sim::SetupCtx &ctx) { ctx.global("x", mem::tInt64()); },
        [&](sim::ThreadCtx &ctx) {
            for (int i = 0; i < 50; ++i)
                ctx.store<std::int64_t>(
                    ctx.global("x"),
                    ctx.load<std::int64_t>(ctx.global("x")) + 1);
        });
    machine.run(prog);
    ASSERT_FALSE(detector.races().empty());

    const auto races = attributeRaces(detector, attributor, machine);
    ASSERT_EQ(races.size(), detector.races().size());
    bool sawThisFile = false;
    for (const AttributedRace &race : races) {
        EXPECT_NE(race.symbol.find("global:x"), std::string::npos)
            << race.symbol;
        if (race.first.file.find("test_race_log.cpp") !=
                std::string::npos &&
            race.second.file.find("test_race_log.cpp") !=
                std::string::npos &&
            race.first.line > 0 && race.second.line > 0)
            sawThisFile = true;
    }
    EXPECT_TRUE(sawThisFile);
}

TEST(RaceLog, DisarmedTrackingYieldsEmptySites)
{
    sim::Machine machine(config(7));
    RaceDetector detector;
    AccessAttributor attributor(machine);
    machine.addListener(&detector);
    machine.addListener(&attributor);
    sim::LambdaProgram prog(
        "racy", 2,
        [&](sim::SetupCtx &ctx) { ctx.global("x", mem::tInt64()); },
        [&](sim::ThreadCtx &ctx) {
            ctx.store<std::int64_t>(ctx.global("x"), 1);
        });
    machine.run(prog);
    for (const AttributedRace &race :
         attributeRaces(detector, attributor, machine)) {
        EXPECT_TRUE(race.first.file.empty());
        EXPECT_TRUE(race.second.file.empty());
    }
}

TEST(RaceLog, JsonlSerializationRoundTrips)
{
    AttributedRace race;
    race.record = {0x1000, 0, 3, RaceKind::WriteWrite};
    race.symbol = "global:kinetic+0x0";
    race.first = {"src/apps/apps_fp.cpp", 278, 0};
    race.second = {"src/apps/apps_fp.cpp", 275, 3};
    std::ostringstream os;
    writeRaceLogJsonl(os, "waterSP", {race});
    const std::string line = os.str();
    EXPECT_NE(line.find("\"app\":\"waterSP\""), std::string::npos);
    EXPECT_NE(line.find("\"kind\":\"write-write\""), std::string::npos);
    EXPECT_NE(line.find("\"symbol\":\"global:kinetic+0x0\""),
              std::string::npos);
    EXPECT_NE(line.find("\"first\":{\"tid\":0,\"file\":"
                        "\"src/apps/apps_fp.cpp\",\"line\":278}"),
              std::string::npos);
    EXPECT_NE(line.find("\"second\":{\"tid\":3,\"file\":"
                        "\"src/apps/apps_fp.cpp\",\"line\":275}"),
              std::string::npos);
    EXPECT_EQ(line.back(), '\n');
}

TEST(RaceLog, ExportsSeededWaterSPBugWithAppAttribution)
{
    auto factory = [] {
        return std::make_unique<apps::WaterSP>(
            4, 16, 3, apps::BugSeed::AtomicityViolation);
    };
    std::ostringstream os;
    const int n = exportRaceLog(factory, config(1), 6, 1, "waterSP", os);
    ASSERT_GT(n, 0);
    const std::string log = os.str();
    // The seeded atomicity violation races on the kinetic-energy global,
    // and every endpoint must carry a real app source site.
    EXPECT_NE(log.find("global:kinetic"), std::string::npos) << log;
    EXPECT_NE(log.find("apps_fp.cpp"), std::string::npos) << log;
    EXPECT_EQ(log.find("\"line\":0"), std::string::npos) << log;
    // Deterministic: the same seeds produce the same log.
    std::ostringstream again;
    exportRaceLog(factory, config(1), 6, 1, "waterSP", again);
    EXPECT_EQ(log, again.str());
}

TEST(RaceLog, TraceListenerAnnotatesSitesWhenArmed)
{
    sim::Machine machine(config(5));
    machine.setAccessSiteTracking(true);
    sim::TraceListener trace;
    trace.setSourceMachine(&machine);
    machine.addListener(&trace);
    sim::LambdaProgram prog(
        "traced", 1,
        [&](sim::SetupCtx &ctx) { ctx.global("x", mem::tInt64()); },
        [&](sim::ThreadCtx &ctx) {
            ctx.store<std::int64_t>(ctx.global("x"), 42);
        });
    machine.run(prog);
    bool sawAnnotatedStore = false;
    for (const std::string &line : trace.lines())
        if (line.find("store64") != std::string::npos &&
            line.find(" @") != std::string::npos &&
            line.find("test_race_log.cpp:") != std::string::npos)
            sawAnnotatedStore = true;
    EXPECT_TRUE(sawAnnotatedStore);
}

} // namespace
} // namespace icheck::race
