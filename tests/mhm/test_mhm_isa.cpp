/**
 * @file
 * The Fig 4 software interface: minus_hash / plus_hash deletion semantics
 * and their interaction with start/stop_hashing.
 */

#include <gtest/gtest.h>
#include <bit>

#include "hashing/location_hash.hpp"
#include "mhm/mhm.hpp"

namespace icheck::mhm
{
namespace
{

using hashing::FpRoundMode;
using hashing::ModHash;
using hashing::ValueClass;

TEST(MhmIsa, MinusPlusHashDeletesALocation)
{
    // Reproduces the Section 2.2 deletion example: after the run, delete
    // G (initial 2, current 12) from the hash; what remains equals a run
    // that never touched G.
    hashing::Crc64LocationHasher hasher;

    BasicMhm with_g(hasher, FpRoundMode::none());
    with_g.startHashing();
    with_g.observeStore(0x1000, 2, 9, 8, ValueClass::Integer);  // G=9
    with_g.observeStore(0x1000, 9, 12, 8, ValueClass::Integer); // G=12
    with_g.observeStore(0x2000, 0, 55, 8, ValueClass::Integer); // other
    // Delete G: minus current, plus initial.
    with_g.minusHash(0x1000, 12, 8, ValueClass::Integer);
    with_g.plusHash(0x1000, 2, 8, ValueClass::Integer);

    BasicMhm without_g(hasher, FpRoundMode::none());
    without_g.startHashing();
    without_g.observeStore(0x2000, 0, 55, 8, ValueClass::Integer);

    EXPECT_EQ(with_g.th(), without_g.th());
}

TEST(MhmIsa, ExplicitOpsApplyEvenWhileHashingStopped)
{
    // start/stop_hashing gates *write observation*; the explicit ISA ops
    // are instructions the tool executes deliberately.
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::none());
    mhm.stopHashing();
    mhm.plusHash(0x100, 7, 8, ValueClass::Integer);
    EXPECT_NE(mhm.th(), ModHash{});
    mhm.minusHash(0x100, 7, 8, ValueClass::Integer);
    EXPECT_EQ(mhm.th(), ModHash{});
}

TEST(MhmIsa, DeletionWorksOnFpValuesThroughRounding)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::paperDefault());
    mhm.startHashing();
    mhm.startFpRounding();
    const double value = 3.14159;
    mhm.observeStore(0x900, 0, std::bit_cast<std::uint64_t>(value), 8,
                     ValueClass::Double);
    // Delete with a slightly different bit pattern that rounds equal.
    const double close = 3.14161;
    mhm.minusHash(0x900, std::bit_cast<std::uint64_t>(close), 8,
                  ValueClass::Double);
    mhm.plusHash(0x900, std::bit_cast<std::uint64_t>(0.0), 8,
                 ValueClass::Double);
    EXPECT_EQ(mhm.th(), ModHash{})
        << "deletion must pass through the same round-off unit";
}

TEST(MhmIsa, ResetClearsRegisterAndCounters)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::none());
    mhm.startHashing();
    mhm.observeStore(0x100, 0, 9, 8, ValueClass::Integer);
    mhm.reset();
    EXPECT_EQ(mhm.th(), ModHash{});
    EXPECT_EQ(mhm.storesHashed(), 0u);
    EXPECT_FALSE(mhm.hashingEnabled());
}

TEST(MhmIsa, FactoryBuildsConfiguredShape)
{
    hashing::Crc64LocationHasher hasher;
    MhmConfig basic_cfg;
    EXPECT_NE(dynamic_cast<BasicMhm *>(makeMhm(hasher, basic_cfg).get()),
              nullptr);
    MhmConfig clustered_cfg;
    clustered_cfg.clustered = true;
    clustered_cfg.clusters = 6;
    auto clustered = makeMhm(hasher, clustered_cfg);
    auto *as_clustered = dynamic_cast<ClusteredMhm *>(clustered.get());
    ASSERT_NE(as_clustered, nullptr);
    EXPECT_EQ(as_clustered->clusterCount(), 6u);
}

} // namespace
} // namespace icheck::mhm
