/**
 * @file
 * MHM microarchitecture: basic vs clustered equivalence (Fig 3),
 * dispatch-order freedom, FP round-off unit integration.
 */

#include <gtest/gtest.h>
#include <bit>
#include <memory>

#include "hashing/location_hash.hpp"
#include "mhm/mhm.hpp"
#include "support/rng.hpp"

namespace icheck::mhm
{
namespace
{

using hashing::FpRoundMode;
using hashing::ModHash;
using hashing::ValueClass;

class MhmEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 DispatchPolicy>>
{
};

TEST_P(MhmEquivalence, ClusteredMatchesBasic)
{
    const auto [clusters, policy] = GetParam();
    hashing::Crc64LocationHasher hasher;
    BasicMhm basic(hasher, FpRoundMode::none());
    ClusteredMhm clustered(hasher, FpRoundMode::none(), clusters, policy,
                           /*seed=*/777);
    basic.startHashing();
    clustered.startHashing();
    basic.stopFpRounding();
    clustered.stopFpRounding();

    Xoshiro256 rng(31);
    std::uint64_t prev = 0;
    for (int i = 0; i < 3000; ++i) {
        const Addr addr = 0x1000 + rng.below(256) * 8;
        const std::uint64_t value = rng.next();
        basic.observeStore(addr, prev, value, 8, ValueClass::Integer);
        clustered.observeStore(addr, prev, value, 8, ValueClass::Integer);
        prev = value;
    }
    EXPECT_EQ(basic.th(), clustered.th())
        << "partial-sum clustering must not change TH";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MhmEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(DispatchPolicy::RoundRobin,
                                         DispatchPolicy::Random)));

TEST(Mhm, StartStopHashingGatesObservation)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::none());
    mhm.observeStore(0x100, 0, 5, 8, ValueClass::Integer);
    EXPECT_EQ(mhm.th(), ModHash{}) << "not yet started";
    mhm.startHashing();
    mhm.observeStore(0x100, 0, 5, 8, ValueClass::Integer);
    const ModHash after = mhm.th();
    EXPECT_NE(after, ModHash{});
    mhm.stopHashing();
    mhm.observeStore(0x100, 5, 9, 8, ValueClass::Integer);
    EXPECT_EQ(mhm.th(), after) << "stop_hashing must gate updates";
}

TEST(Mhm, SaveRestoreRoundTrips)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::none());
    mhm.startHashing();
    mhm.observeStore(0x200, 0, 42, 8, ValueClass::Integer);
    const HashWord saved = mhm.saveHash();
    mhm.observeStore(0x200, 42, 43, 8, ValueClass::Integer);
    EXPECT_NE(mhm.saveHash(), saved);
    mhm.restoreHash(saved);
    EXPECT_EQ(mhm.saveHash(), saved);
}

TEST(Mhm, ClusteredSaveRestoreCollapsesPartials)
{
    hashing::Crc64LocationHasher hasher;
    ClusteredMhm mhm(hasher, FpRoundMode::none(), 4,
                     DispatchPolicy::RoundRobin, 1);
    mhm.startHashing();
    for (int i = 0; i < 10; ++i)
        mhm.observeStore(0x300 + i * 8, 0, i + 1, 8, ValueClass::Integer);
    const HashWord saved = mhm.saveHash();
    mhm.restoreHash(saved);
    EXPECT_EQ(mhm.saveHash(), saved);
    EXPECT_EQ(mhm.th().raw(), saved);
}

TEST(Mhm, ClusterLoadIsBalancedUnderRoundRobin)
{
    hashing::Crc64LocationHasher hasher;
    ClusteredMhm mhm(hasher, FpRoundMode::none(), 4,
                     DispatchPolicy::RoundRobin, 1);
    mhm.startHashing();
    for (int i = 0; i < 100; ++i)
        mhm.observeStore(0x400, i, i + 1, 8, ValueClass::Integer);
    // 100 stores * 2 half-operations = 200 ops over 4 clusters.
    for (std::size_t c = 0; c < mhm.clusterCount(); ++c)
        EXPECT_EQ(mhm.clusterOps(c), 50u);
}

TEST(Mhm, FpRoundingUnitMergesNoise)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm a(hasher, FpRoundMode::paperDefault());
    BasicMhm b(hasher, FpRoundMode::paperDefault());
    a.startHashing();
    a.startFpRounding();
    b.startHashing();
    b.startFpRounding();
    const double va = (0.1 + 0.2) + 0.3;
    const double vb = 0.1 + (0.2 + 0.3);
    ASSERT_NE(va, vb);
    a.observeStore(0x500, 0, std::bit_cast<std::uint64_t>(va), 8,
                   ValueClass::Double);
    b.observeStore(0x500, 0, std::bit_cast<std::uint64_t>(vb), 8,
                   ValueClass::Double);
    EXPECT_EQ(a.th(), b.th());
}

TEST(Mhm, FpRoundingCanBeDisabled)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm a(hasher, FpRoundMode::paperDefault());
    BasicMhm b(hasher, FpRoundMode::paperDefault());
    for (BasicMhm *m : {&a, &b}) {
        m->startHashing();
        m->stopFpRounding();
    }
    const double va = (0.1 + 0.2) + 0.3;
    const double vb = 0.1 + (0.2 + 0.3);
    a.observeStore(0x600, 0, std::bit_cast<std::uint64_t>(va), 8,
                   ValueClass::Double);
    b.observeStore(0x600, 0, std::bit_cast<std::uint64_t>(vb), 8,
                   ValueClass::Double);
    EXPECT_NE(a.th(), b.th()) << "bit-by-bit mode must see the noise";
}

TEST(Mhm, IntegerStoresBypassRounding)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::paperDefault());
    mhm.startHashing();
    mhm.startFpRounding();
    // An integer that happens to look like a noisy double must be hashed
    // bit-by-bit: two close-but-different integers give different hashes.
    const auto bits_a = std::bit_cast<std::uint64_t>(1.00000001);
    const auto bits_b = std::bit_cast<std::uint64_t>(1.00000002);
    BasicMhm other(hasher, FpRoundMode::paperDefault());
    other.startHashing();
    other.startFpRounding();
    mhm.observeStore(0x700, 0, bits_a, 8, ValueClass::Integer);
    other.observeStore(0x700, 0, bits_b, 8, ValueClass::Integer);
    EXPECT_NE(mhm.th(), other.th());
}

TEST(Mhm, StatisticsCountStoresAndBytes)
{
    hashing::Crc64LocationHasher hasher;
    BasicMhm mhm(hasher, FpRoundMode::none());
    mhm.startHashing();
    mhm.observeStore(0x800, 0, 1, 4, ValueClass::Integer);
    mhm.observeStore(0x808, 0, 2, 8, ValueClass::Integer);
    EXPECT_EQ(mhm.storesHashed(), 2u);
    EXPECT_EQ(mhm.bytesHashed(), 24u) << "old+new bytes";
}

} // namespace
} // namespace icheck::mhm
