/**
 * @file
 * Deterministic RNG sanity: reproducibility, bounds, rough uniformity.
 */

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace icheck
{
namespace
{

TEST(SplitMix64, Reproducible)
{
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiverge)
{
    SplitMix64 a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Reproducible)
{
    Xoshiro256 a(55), b(55);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInBounds)
{
    Xoshiro256 rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Xoshiro256, RangeInclusive)
{
    Xoshiro256 rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformIsUnitInterval)
{
    Xoshiro256 rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceRespectsProbability)
{
    Xoshiro256 rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

} // namespace
} // namespace icheck
