/**
 * @file
 * Statistics containers.
 */

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace icheck
{
namespace
{

TEST(StatGroup, AddAndGet)
{
    StatGroup stats;
    EXPECT_EQ(stats.get("x"), 0u);
    stats.add("x");
    stats.add("x", 4);
    EXPECT_EQ(stats.get("x"), 5u);
}

TEST(StatGroup, ResetZeroesEverything)
{
    StatGroup stats;
    stats.add("a", 3);
    stats.add("b", 7);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.get("b"), 0u);
    EXPECT_EQ(stats.all().size(), 2u);
}

TEST(StatGroup, RenderListsNameOrder)
{
    StatGroup stats;
    stats.add("zeta", 1);
    stats.add("alpha", 2);
    EXPECT_EQ(stats.render(), "alpha=2\nzeta=1\n");
}

TEST(SampleStat, TracksMinMaxMean)
{
    SampleStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    stat.record(2.0);
    stat.record(8.0);
    stat.record(-1.0);
    EXPECT_EQ(stat.count(), 3u);
    EXPECT_EQ(stat.min(), -1.0);
    EXPECT_EQ(stat.max(), 8.0);
    EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stat.total(), 9.0);
}

TEST(GeoMean, MatchesClosedForm)
{
    GeoMean gm;
    gm.record(2.0);
    gm.record(8.0);
    EXPECT_DOUBLE_EQ(gm.value(), 4.0);
    EXPECT_EQ(gm.count(), 2u);
}

TEST(GeoMean, EmptyIsOne)
{
    GeoMean gm;
    EXPECT_DOUBLE_EQ(gm.value(), 1.0);
}

} // namespace
} // namespace icheck
