/**
 * @file
 * The daemon under router-shaped traffic: pull/install protocol
 * parsing, interleaved pipelined lines on one logical connection,
 * error frames a router must be able to route by id, and the
 * install/pull replication round trip — the backend half of the fleet
 * contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/daemon.hpp"
#include "service/frame.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace icheck::service
{
namespace
{

ParsedLine
parse(const std::string &line)
{
    return parseRequestLine(line, 64 * 1024);
}

ServiceConfig
quietConfig()
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    return cfg;
}

} // namespace

TEST(RouterInputs, PullRequestParses)
{
    const ParsedLine parsed =
        parse("{\"id\":\"l1\",\"op\":\"pull\",\"from\":128,\"max\":4096}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.request->op, RequestOp::Pull);
    EXPECT_EQ(parsed.request->pull.from, 128u);
    EXPECT_EQ(parsed.request->pull.maxBytes, 4096u);
}

TEST(RouterInputs, PullDefaultsAndBounds)
{
    const ParsedLine defaults =
        parse("{\"id\":\"l1\",\"op\":\"pull\"}");
    ASSERT_TRUE(defaults.ok());
    EXPECT_EQ(defaults.request->pull.from, 0u);
    EXPECT_EQ(defaults.request->pull.maxBytes, 24576u);
    EXPECT_FALSE(
        parse("{\"id\":\"l1\",\"op\":\"pull\",\"max\":63}").ok());
    EXPECT_FALSE(
        parse("{\"id\":\"l1\",\"op\":\"pull\",\"max\":1048577}").ok());
    EXPECT_FALSE(
        parse("{\"id\":\"l1\",\"op\":\"pull\",\"from\":-1}").ok());
    // Fields of other ops stay unknown to pull.
    EXPECT_FALSE(
        parse("{\"id\":\"l1\",\"op\":\"pull\",\"app\":\"radix\"}").ok());
}

TEST(RouterInputs, InstallRequestParsesAndDecodesHexAtParseTime)
{
    const std::string frames = encodeFrame("k", "v");
    const ParsedLine parsed =
        parse("{\"id\":\"f1\",\"op\":\"install\",\"frames\":\"" +
              hexEncode(frames) + "\"}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.request->op, RequestOp::Install);
    EXPECT_EQ(parsed.request->install.frames, frames);
}

TEST(RouterInputs, InstallRejectsMissingOrInvalidHex)
{
    EXPECT_FALSE(parse("{\"id\":\"f1\",\"op\":\"install\"}").ok());
    const ParsedLine bad_hex = parse(
        "{\"id\":\"f1\",\"op\":\"install\",\"frames\":\"zz\"}");
    ASSERT_FALSE(bad_hex.ok());
    EXPECT_NE(bad_hex.error.find("hex"), std::string::npos);
    EXPECT_FALSE(
        parse("{\"id\":\"f1\",\"op\":\"install\",\"frames\":7}").ok());
}

TEST(RouterInputs, InstallThenPullRoundTripsThroughTheDaemon)
{
    Service daemon(quietConfig());
    const std::string log = encodeFrame("check|radix|x#u0", "unit") +
                            encodeFrame("check|radix|x#log", "logbytes");
    const std::string install_response = daemon.handleLine(
        "{\"id\":\"f1\",\"op\":\"install\",\"frames\":\"" +
        hexEncode(log) + "\"}");
    EXPECT_EQ(install_response,
              "{\"id\":\"f1\",\"status\":\"ok\",\"installed\":2,"
              "\"duplicates\":0}");

    // Installing the same frames again is a pure no-op.
    const std::string again = daemon.handleLine(
        "{\"id\":\"f2\",\"op\":\"install\",\"frames\":\"" +
        hexEncode(log) + "\"}");
    EXPECT_NE(again.find("\"installed\":0,\"duplicates\":2"),
              std::string::npos);

    // Pulling from zero returns the installed frames byte-exactly.
    const std::string pull_response = daemon.handleLine(
        "{\"id\":\"l1\",\"op\":\"pull\",\"from\":0,\"max\":65536}");
    const auto parsed = parseJson(pull_response);
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *frames_field = parsed->find("frames");
    ASSERT_NE(frames_field, nullptr);
    const auto raw = hexDecode(frames_field->text);
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(*raw, log);
    const JsonValue *eof = parsed->find("eof");
    ASSERT_NE(eof, nullptr);
    EXPECT_TRUE(eof->boolean);
}

TEST(RouterInputs, InstallRejectsCorruptAndTornFrames)
{
    Service daemon(quietConfig());
    std::string corrupt = encodeFrame("k", "value");
    corrupt[corrupt.size() - 1] ^= 0x20;
    const std::string corrupt_response = daemon.handleLine(
        "{\"id\":\"f1\",\"op\":\"install\",\"frames\":\"" +
        hexEncode(corrupt) + "\"}");
    EXPECT_NE(corrupt_response.find("\"status\":\"error\""),
              std::string::npos);
    EXPECT_NE(corrupt_response.find("corrupt"), std::string::npos);

    const std::string whole = encodeFrame("k", "value");
    const std::string torn = whole.substr(0, whole.size() - 3);
    const std::string torn_response = daemon.handleLine(
        "{\"id\":\"f2\",\"op\":\"install\",\"frames\":\"" +
        hexEncode(torn) + "\"}");
    EXPECT_NE(torn_response.find("\"status\":\"error\""),
              std::string::npos);
    EXPECT_NE(torn_response.find("torn"), std::string::npos);
}

TEST(RouterInputs, PullBeyondTheLogIsAnError)
{
    Service daemon(quietConfig());
    const std::string response = daemon.handleLine(
        "{\"id\":\"l1\",\"op\":\"pull\",\"from\":999,\"max\":4096}");
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
}

TEST(RouterInputs, InterleavedPipelinedLinesAnswerInOrder)
{
    // A router multiplexes many clients onto one backend connection,
    // so the daemon sees checks, pulls, installs, and stats
    // interleaved back to back. Each line must get exactly one
    // response carrying its own id, in submission order.
    Service daemon(quietConfig());
    const std::string frames = hexEncode(encodeFrame("side#u0", "x"));
    const std::vector<std::pair<std::string, std::string>> traffic = {
        {"p0", "{\"id\":\"p0\",\"op\":\"ping\"}"},
        {"c0", "{\"id\":\"c0\",\"op\":\"check\",\"app\":\"radix\","
               "\"runs\":4,\"input\":\"dev\"}"},
        {"l0", "{\"id\":\"l0\",\"op\":\"pull\",\"from\":0}"},
        {"f0", "{\"id\":\"f0\",\"op\":\"install\",\"frames\":\"" +
                   frames + "\"}"},
        {"s0", "{\"id\":\"s0\",\"op\":\"stats\"}"},
        {"c1", "{\"id\":\"c1\",\"op\":\"check\",\"app\":\"radix\","
               "\"runs\":4,\"input\":\"dev\"}"},
        {"l1", "{\"id\":\"l1\",\"op\":\"pull\",\"from\":0}"},
    };
    for (const auto &[id, line] : traffic) {
        const std::string response = daemon.handleLine(line);
        EXPECT_EQ(response.find("{\"id\":\"" + id + "\""), 0u) << line;
        EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
            << response;
    }
    // The second pull sees strictly more log than the first: the
    // check's frames and the installed side frame both landed.
    const auto last = parseJson(daemon.handleLine(
        "{\"id\":\"l2\",\"op\":\"pull\",\"from\":0,\"max\":1048576}"));
    ASSERT_TRUE(last.has_value());
    EXPECT_TRUE(last->find("eof")->boolean);
    EXPECT_GT(last->find("frames")->text.size(), 0u);
}

TEST(RouterInputs, ErrorFramesCarryTheRequestIdFirst)
{
    // The router routes responses by a prefix scan of the id, so even
    // error frames must render the id as the first member.
    Service daemon(quietConfig());
    for (const std::string line :
         {std::string("{\"id\":\"e0\",\"op\":\"check\"}"),
          std::string("{\"id\":\"e1\",\"op\":\"pull\",\"from\":7}"),
          std::string("{\"id\":\"e2\",\"op\":\"install\","
                      "\"frames\":\"aa\"}"),
          std::string("{\"id\":\"e3\",\"op\":\"nonsense\"}")}) {
        const std::string response = daemon.handleLine(line);
        EXPECT_NE(response.find("\"status\":\"error\""),
                  std::string::npos)
            << line;
        const std::string id_prefix = "{\"id\":\"";
        ASSERT_EQ(response.find(id_prefix), 0u) << response;
        const std::size_t end =
            response.find('"', id_prefix.size());
        const std::string id =
            response.substr(id_prefix.size(), end - id_prefix.size());
        EXPECT_EQ(id.size(), 2u);
        EXPECT_EQ(id[0], 'e');
    }
}

TEST(RouterInputs, DrainingAllowsPullButRefusesInstall)
{
    // During drain the router still ships the log tail (pull), but
    // nothing new may land (install): the store must be immutable by
    // the time the daemon exits.
    Service daemon(quietConfig());
    daemon.handleLine("{\"id\":\"c0\",\"op\":\"check\",\"app\":\"radix\","
                      "\"runs\":4,\"input\":\"dev\"}");
    daemon.handleLine("{\"id\":\"d0\",\"op\":\"drain\"}");

    const std::string pull_response = daemon.handleLine(
        "{\"id\":\"l0\",\"op\":\"pull\",\"from\":0,\"max\":1048576}");
    EXPECT_NE(pull_response.find("\"status\":\"ok\""),
              std::string::npos);
    const auto parsed = parseJson(pull_response);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_GT(parsed->find("frames")->text.size(), 0u);

    const std::string install_response = daemon.handleLine(
        "{\"id\":\"f0\",\"op\":\"install\",\"frames\":\"" +
        hexEncode(encodeFrame("k", "v")) + "\"}");
    EXPECT_NE(install_response.find("\"draining\""), std::string::npos);
}

TEST(RouterInputs, StatsExposeTheFleetCounters)
{
    Service daemon(quietConfig());
    daemon.handleLine("{\"id\":\"f0\",\"op\":\"install\",\"frames\":\"" +
                      hexEncode(encodeFrame("k0", "v0") +
                                encodeFrame("k1", "v1")) +
                      "\"}");
    const std::string response =
        daemon.handleLine("{\"id\":\"s0\",\"op\":\"stats\"}");
    const auto parsed = parseJson(response);
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *stats = parsed->find("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue *installed = stats->find("framesInstalled");
    ASSERT_NE(installed, nullptr);
    EXPECT_EQ(installed->asU64().value_or(0), 2u);
    const JsonValue *appended = stats->find("framesAppended");
    ASSERT_NE(appended, nullptr);
    EXPECT_EQ(appended->asU64().value_or(0), 2u);
    const JsonValue *bytes = stats->find("storeBytes");
    ASSERT_NE(bytes, nullptr);
    EXPECT_GT(bytes->asU64().value_or(0), 0u);
}

TEST(RouterInputs, JsonParserSurvivesEveryPrefixOfAFleetDocument)
{
    // The config parser's truncation sweep, applied at the JSON layer
    // the daemon itself uses on every untrusted line.
    const std::string doc =
        "{\"vnodes\":32,\"ship\":\"sync\",\"backends\":["
        "{\"name\":\"b0\",\"socket\":\"/tmp/b0.sock\"}]}";
    for (std::size_t len = 0; len < doc.size(); ++len) {
        std::string error;
        const auto parsed = parseJson(doc.substr(0, len), &error);
        EXPECT_FALSE(parsed.has_value()) << "prefix length " << len;
        EXPECT_FALSE(error.empty()) << "prefix length " << len;
    }
    EXPECT_TRUE(parseJson(doc).has_value());
}

} // namespace icheck::service
