/**
 * @file
 * The service JSON reader's contract: strict acceptance of well-formed
 * documents, precise rejection of everything else. The daemon feeds
 * this parser untrusted bytes, so the rejection cases — duplicate keys,
 * trailing garbage, unterminated literals, hostile nesting — matter as
 * much as the happy path.
 */

#include <gtest/gtest.h>

#include <string>

#include "service/json.hpp"

namespace icheck::service
{
namespace
{

TEST(ServiceJson, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->isBool());
    EXPECT_TRUE(parseJson("true")->boolean);
    EXPECT_FALSE(parseJson("false")->boolean);
    EXPECT_TRUE(parseJson("42")->isNumber());
    EXPECT_EQ(parseJson("\"hi\"")->text, "hi");
}

TEST(ServiceJson, NumbersKeepRawLexeme)
{
    // 64-bit seeds exceed a double's 53-bit mantissa; the raw lexeme
    // must survive so asU64 round-trips exactly.
    const auto v = parseJson("18446744073709551615");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->asU64().has_value());
    EXPECT_EQ(*v->asU64(), 18446744073709551615ULL);
}

TEST(ServiceJson, NegativeAndFractionalNumbers)
{
    EXPECT_DOUBLE_EQ(parseJson("-2.5")->asDouble(), -2.5);
    EXPECT_DOUBLE_EQ(parseJson("1e3")->asDouble(), 1000.0);
    EXPECT_FALSE(parseJson("-1")->asU64().has_value());
    EXPECT_FALSE(parseJson("2.5")->asU64().has_value());
}

TEST(ServiceJson, ObjectsPreserveOrderAndFind)
{
    const auto v = parseJson("{\"b\":1,\"a\":2}");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());
    ASSERT_EQ(v->members.size(), 2u);
    EXPECT_EQ(v->members[0].first, "b");
    EXPECT_EQ(v->members[1].first, "a");
    ASSERT_NE(v->find("a"), nullptr);
    EXPECT_EQ(v->find("a")->asDouble(), 2.0);
    EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(ServiceJson, NestedArraysAndObjects)
{
    const auto v = parseJson("{\"xs\":[1,[2,3],{\"y\":true}]}");
    ASSERT_TRUE(v.has_value());
    const JsonValue *xs = v->find("xs");
    ASSERT_NE(xs, nullptr);
    ASSERT_EQ(xs->items.size(), 3u);
    EXPECT_EQ(xs->items[1].items.size(), 2u);
    EXPECT_TRUE(xs->items[2].find("y")->boolean);
}

TEST(ServiceJson, StringEscapes)
{
    EXPECT_EQ(parseJson("\"a\\n\\t\\\"b\\\\\"")->text, "a\n\t\"b\\");
    EXPECT_EQ(parseJson("\"\\u0041\"")->text, "A");
    EXPECT_EQ(parseJson("\"\\u00e9\"")->text, "\xc3\xa9");
    EXPECT_EQ(parseJson("\"\\u20ac\"")->text, "\xe2\x82\xac");
}

TEST(ServiceJson, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",           "{",           "}",           "[1,]",
        "{\"a\":}",   "{\"a\" 1}",   "{1:2}",       "\"unterminated",
        "tru",        "nul",         "+1",          "01x",
        "{\"a\":1,}", "[1 2]",       "\"a\"b",      "{} {}",
        "{\"a\":1}x", "\"\\q\"",     "\"\\u12\"",
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(parseJson(text, &error).has_value()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(ServiceJson, RejectsDuplicateKeys)
{
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\":1,\"a\":2}", &error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ServiceJson, RejectsRawControlCharactersInStrings)
{
    EXPECT_FALSE(parseJson("\"a\nb\"").has_value());
    EXPECT_FALSE(parseJson(std::string("\"a\0b\"", 5)).has_value());
}

TEST(ServiceJson, RejectsHostileNesting)
{
    // A 10k-bracket line must be refused, not recursed into.
    std::string deep;
    for (int i = 0; i < 10000; ++i)
        deep += '[';
    std::string error;
    EXPECT_FALSE(parseJson(deep, &error).has_value());
    EXPECT_NE(error.find("deep"), std::string::npos);

    // 32 levels is the documented bound: 31 nested arrays parse, 33 do
    // not.
    std::string ok = "1";
    for (int i = 0; i < 31; ++i)
        ok = "[" + ok + "]";
    EXPECT_TRUE(parseJson(ok).has_value());
    std::string over = "1";
    for (int i = 0; i < 33; ++i)
        over = "[" + over + "]";
    EXPECT_FALSE(parseJson(over).has_value());
}

TEST(ServiceJson, WhitespaceTolerated)
{
    const auto v = parseJson("  { \"a\" : [ 1 , 2 ] }  ");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("a")->items.size(), 2u);
}

} // namespace
} // namespace icheck::service
