/**
 * @file
 * The append-only CRC-framed result store: idempotent puts, the sharded
 * seen-set index, reopen/resume (keys written before a crash are
 * readable after), torn-tail truncation (a daemon killed mid-append
 * loses at most the torn frame, and the file heals so later appends
 * produce a clean log), and CRC rejection of corrupted frames.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "service/result_store.hpp"

namespace icheck::service
{
namespace
{

/** A per-test store path in the build's temp dir, removed up front. */
class ResultStoreFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        storePath = (std::filesystem::temp_directory_path() /
                     (std::string("icheck_store_") + info->name() +
                      ".icr"))
                        .string();
        std::filesystem::remove(storePath);
    }

    void TearDown() override { std::filesystem::remove(storePath); }

    /** Byte size of the store file on disk. */
    std::uintmax_t
    fileSize() const
    {
        return std::filesystem::file_size(storePath);
    }

    /** Append raw bytes to the store file (simulates a torn write). */
    void
    appendRaw(const std::string &bytes) const
    {
        std::ofstream out(storePath,
                          std::ios::binary | std::ios::app);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    /** Flip one byte at @p offset in the store file. */
    void
    corruptByte(std::uintmax_t offset) const
    {
        std::fstream file(storePath, std::ios::binary | std::ios::in |
                                         std::ios::out);
        file.seekg(static_cast<std::streamoff>(offset));
        char byte = 0;
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0xff);
        file.seekp(static_cast<std::streamoff>(offset));
        file.write(&byte, 1);
    }

    std::string storePath;
};

TEST(ResultStoreMemory, PutGetContains)
{
    ResultStore store;
    EXPECT_FALSE(store.persistent());
    EXPECT_FALSE(store.contains("k"));
    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_TRUE(store.put("k", "payload"));
    EXPECT_TRUE(store.contains("k"));
    EXPECT_EQ(store.get("k").value(), "payload");
    EXPECT_EQ(store.keyCount(), 1u);
}

TEST(ResultStoreMemory, PutsAreIdempotentFirstWriteWins)
{
    ResultStore store;
    EXPECT_TRUE(store.put("k", "first"));
    EXPECT_FALSE(store.put("k", "second"));
    EXPECT_EQ(store.get("k").value(), "first");
    EXPECT_EQ(store.stats().puts, 1u);
    EXPECT_EQ(store.stats().putDuplicates, 1u);
}

TEST(ResultStoreMemory, BinaryKeysAndPayloadsSurvive)
{
    ResultStore store;
    const std::string key("\x00\x01\xff key", 8);
    const std::string payload("\x00\xfe\n\r\x7f", 5);
    EXPECT_TRUE(store.put(key, payload));
    EXPECT_EQ(store.get(key).value(), payload);
    EXPECT_TRUE(store.put("empty", ""));
    EXPECT_EQ(store.get("empty").value(), "");
}

TEST(ResultStoreMemory, CountersTrackHitsAndMisses)
{
    ResultStore store;
    store.put("a", "1");
    store.get("a");
    store.get("b");
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.getHits, 1u);
    EXPECT_EQ(stats.getMisses, 1u);
}

TEST_F(ResultStoreFileTest, ReopenRecoversEveryFrame)
{
    {
        ResultStore store(storePath);
        EXPECT_TRUE(store.persistent());
        for (int i = 0; i < 50; ++i)
            store.put("key" + std::to_string(i),
                      "payload-" + std::to_string(i * i));
    }
    ResultStore reopened(storePath);
    EXPECT_EQ(reopened.keyCount(), 50u);
    EXPECT_EQ(reopened.stats().framesLoaded, 50u);
    EXPECT_EQ(reopened.stats().bytesDropped, 0u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(reopened.get("key" + std::to_string(i)).value(),
                  "payload-" + std::to_string(i * i))
            << i;
}

TEST_F(ResultStoreFileTest, DuplicatePutsAcrossReopenAreNoOps)
{
    {
        ResultStore store(storePath);
        store.put("k", "original");
    }
    const auto size_before = fileSize();
    ResultStore reopened(storePath);
    EXPECT_FALSE(reopened.put("k", "replacement"));
    EXPECT_EQ(reopened.get("k").value(), "original");
    EXPECT_EQ(fileSize(), size_before); // No frame appended.
}

TEST_F(ResultStoreFileTest, TornTailIsTruncatedAndHealed)
{
    {
        ResultStore store(storePath);
        store.put("good1", "payload1");
        store.put("good2", "payload2");
    }
    const auto clean_size = fileSize();
    appendRaw(std::string("\x49\x43\x52\x31 torn frame", 16));

    {
        ResultStore reopened(storePath);
        EXPECT_EQ(reopened.keyCount(), 2u);
        EXPECT_EQ(reopened.stats().framesLoaded, 2u);
        EXPECT_GT(reopened.stats().bytesDropped, 0u);
        EXPECT_EQ(reopened.get("good1").value(), "payload1");
        // The torn tail is gone from disk, and appends work again.
        EXPECT_EQ(fileSize(), clean_size);
        EXPECT_TRUE(reopened.put("good3", "payload3"));
    }
    ResultStore final_store(storePath);
    EXPECT_EQ(final_store.keyCount(), 3u);
    EXPECT_EQ(final_store.get("good3").value(), "payload3");
}

TEST_F(ResultStoreFileTest, CorruptFrameStopsReplayAtLastGoodBoundary)
{
    {
        ResultStore store(storePath);
        store.put("first", "aaaa");
    }
    const auto first_size = fileSize();
    {
        ResultStore store(storePath);
        store.put("second", "bbbb");
    }
    // Corrupt a payload byte inside the second frame: its CRC fails,
    // replay keeps the first frame and truncates the rest.
    corruptByte(fileSize() - 1);
    ResultStore reopened(storePath);
    EXPECT_EQ(reopened.keyCount(), 1u);
    EXPECT_TRUE(reopened.contains("first"));
    EXPECT_FALSE(reopened.contains("second"));
    EXPECT_GT(reopened.stats().bytesDropped, 0u);
    EXPECT_EQ(fileSize(), first_size);
}

TEST_F(ResultStoreFileTest, EmptyAndGarbageFilesAreSurvivable)
{
    appendRaw(""); // Create an empty file.
    {
        ResultStore store(storePath);
        EXPECT_EQ(store.keyCount(), 0u);
        store.put("k", "v");
    }
    std::filesystem::remove(storePath);
    appendRaw("complete garbage, no magic anywhere");
    ResultStore garbage(storePath);
    EXPECT_EQ(garbage.keyCount(), 0u);
    EXPECT_GT(garbage.stats().bytesDropped, 0u);
    EXPECT_TRUE(garbage.put("k", "v"));
    EXPECT_EQ(garbage.get("k").value(), "v");
}

TEST_F(ResultStoreFileTest, ThrowsWhenPathIsUnusable)
{
    EXPECT_THROW(ResultStore("/nonexistent-dir/sub/store.icr"),
                 StoreError);
}

TEST(ResultStoreDeath, OversizedKeysAreAProgrammingError)
{
    // Service keys are bounded by construction (ids are <=128 chars,
    // app names come from the registry); an oversized key reaching the
    // store is a bug upstream, not a runtime condition.
    ResultStore store;
    const std::string huge_key((1u << 16) + 1, 'k');
    EXPECT_DEATH(store.put(huge_key, "v"), "key out of bounds");
    EXPECT_DEATH(store.put("", "v"), "key out of bounds");
}

} // namespace
} // namespace icheck::service
