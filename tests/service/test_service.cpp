/**
 * @file
 * End-to-end contract of the campaign service: daemon responses embed
 * report bytes identical to one-shot `icheck check --json` for any
 * worker/dispatcher count; request ids are idempotent; identical work
 * under different ids deduplicates through the shared seen-state set; a
 * restarted daemon resumes from its store without re-running completed
 * units; the serve loop applies explicit backpressure and drains
 * gracefully.
 */

#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "apps/scales.hpp"
#include "check/report_json.hpp"
#include "runtime/parallel_driver.hpp"
#include "service/daemon.hpp"
#include "service/executor.hpp"
#include "service/json.hpp"
#include "service/record_codec.hpp"
#include "service/serve_loop.hpp"

namespace icheck::service
{
namespace
{

/** The canonical report line for @p app/@p runs/@p seed at dev scale. */
std::string
oneShotReport(const std::string &app_name, int runs, std::uint64_t seed)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    check::DriverConfig cfg;
    cfg.runs = runs;
    cfg.baseSchedSeed = seed;
    cfg.ignores = app.ignores;
    runtime::CampaignOptions options;
    options.jobs = 1;
    const check::DriverReport report = runtime::runCampaign(
        cfg, apps::scaledFactory(app_name, apps::InputScale::Dev),
        options);
    return check::renderReportJson(report);
}

std::string
checkLine(const std::string &id, const std::string &app, int runs,
          std::uint64_t seed)
{
    return "{\"id\":\"" + id + "\",\"op\":\"check\",\"app\":\"" + app +
           "\",\"runs\":" + std::to_string(runs) +
           ",\"seed\":" + std::to_string(seed) + ",\"input\":\"dev\"}";
}

/** Extract the embedded "report":{...} object (the final member). */
std::string
embeddedReport(const std::string &response)
{
    const std::string needle = "\"report\":";
    const std::size_t pos = response.find(needle);
    if (pos == std::string::npos || response.empty() ||
        response.back() != '}')
        return {};
    return response.substr(pos + needle.size(),
                           response.size() - 1 - (pos + needle.size()));
}

/** A service whose store file lives in the temp dir for one test. */
std::string
tempStorePath(const char *tag)
{
    const auto path = std::filesystem::temp_directory_path() /
                      (std::string("icheck_service_") + tag + ".icr");
    std::filesystem::remove(path);
    return path.string();
}

TEST(Service, ReportBytesMatchOneShotAtEveryWorkerCount)
{
    const std::string expected = oneShotReport("radix", 6, 1000);
    for (const int jobs : {1, 2, 4}) {
        ServiceConfig cfg;
        cfg.jobs = jobs;
        Service service(cfg);
        const std::string response = service.handleLine(
            checkLine("r", "radix", 6, 1000));
        EXPECT_EQ(embeddedReport(response), expected)
            << "jobs=" << jobs;
        EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
        EXPECT_NE(response.find("\"verdict\":\"deterministic\""),
                  std::string::npos);
    }
}

TEST(Service, NondeterministicAppGetsNondeterministicVerdict)
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    Service service(cfg);
    // ocean without FP rounding is bitwise nondeterministic.
    const std::string response = service.handleLine(
        "{\"id\":\"n\",\"op\":\"check\",\"app\":\"ocean\",\"runs\":4,"
        "\"input\":\"dev\",\"rounding\":false,\"ignores\":false}");
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(response.find("\"verdict\":\"nondeterministic\""),
              std::string::npos)
        << response;
}

TEST(Service, RequestIdsAreIdempotent)
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    Service service(cfg);
    const std::string line = checkLine("same-id", "radix", 4, 1000);
    const std::string first = service.handleLine(line);
    const std::string second = service.handleLine(line);
    EXPECT_EQ(first, second); // Byte-identical replay.
    const ServiceSnapshot snap = service.snapshot();
    EXPECT_EQ(snap.responsesCached, 1u);

    // The same id with different work is a client error, not a replay.
    const std::string conflict = service.handleLine(
        checkLine("same-id", "radix", 4, 2000));
    EXPECT_NE(conflict.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(conflict.find("already used"), std::string::npos);
}

TEST(Service, IdenticalWorkUnderDifferentIdsDeduplicates)
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    Service service(cfg);
    const std::string first =
        service.handleLine(checkLine("id-a", "radix", 4, 1000));
    const std::string second =
        service.handleLine(checkLine("id-b", "radix", 4, 1000));
    EXPECT_EQ(embeddedReport(first), embeddedReport(second));
    EXPECT_NE(second.find("\"unitsReused\":4"), std::string::npos)
        << second;
    EXPECT_NE(second.find("\"logReused\":true"), std::string::npos);
    const ServiceSnapshot snap = service.snapshot();
    EXPECT_EQ(snap.unitsExecuted, 4u);
    EXPECT_EQ(snap.unitsReused, 4u);
    EXPECT_DOUBLE_EQ(snap.dedupHitRate(), 0.5);
}

TEST(Service, CampaignsShareUnitsAcrossRunCounts)
{
    // A longer campaign over the same canonical config reuses every
    // unit of the shorter one and still matches the one-shot bytes.
    ServiceConfig cfg;
    cfg.jobs = 2;
    Service service(cfg);
    service.handleLine(checkLine("short", "radix", 4, 1000));
    const std::string longer =
        service.handleLine(checkLine("long", "radix", 8, 1000));
    EXPECT_NE(longer.find("\"unitsReused\":4"), std::string::npos)
        << longer;
    EXPECT_NE(longer.find("\"unitsExecuted\":4"), std::string::npos);
    EXPECT_EQ(embeddedReport(longer), oneShotReport("radix", 8, 1000));
}

TEST(Service, RestartResumesFromStoreWithoutReExecuting)
{
    const std::string store_path = tempStorePath("resume");
    const std::string expected = oneShotReport("fft", 5, 1234);
    {
        ServiceConfig cfg;
        cfg.jobs = 1;
        cfg.storePath = store_path;
        Service before(cfg);
        const std::string response =
            before.handleLine(checkLine("first", "fft", 5, 1234));
        EXPECT_EQ(embeddedReport(response), expected);
    }
    {
        // New process, same store: the id replays from disk, and new
        // ids over the same work run zero units.
        ServiceConfig cfg;
        cfg.jobs = 1;
        cfg.storePath = store_path;
        Service after(cfg);
        const std::string replay =
            after.handleLine(checkLine("first", "fft", 5, 1234));
        EXPECT_EQ(embeddedReport(replay), expected);
        EXPECT_EQ(after.snapshot().responsesCached, 1u);

        const std::string fresh_id =
            after.handleLine(checkLine("second", "fft", 5, 1234));
        EXPECT_EQ(embeddedReport(fresh_id), expected);
        EXPECT_NE(fresh_id.find("\"unitsExecuted\":0"),
                  std::string::npos)
            << fresh_id;
        EXPECT_NE(fresh_id.find("\"unitsReused\":5"), std::string::npos);
    }
    std::filesystem::remove(store_path);
}

TEST(Service, PartialStoreResumesOnlyMissingUnits)
{
    // Simulate a daemon killed mid-campaign: the store holds the log
    // and a prefix of the units. The executor must execute exactly the
    // missing runs and still produce the canonical bytes.
    ResultStore store;
    CampaignExecutor seed_executor(store, nullptr);
    Request request;
    request.id = "seed";
    request.op = RequestOp::Check;
    request.check.app = "radix";
    request.check.runs = 6;
    request.check.input = "dev";
    const ExecutionOutcome full = seed_executor.execute(request);
    ASSERT_TRUE(full.ok);

    // Rebuild a second store holding only units 0..2 plus the log.
    const std::string canonical = canonicalKey(request.check);
    ResultStore partial;
    for (int run = 0; run < 3; ++run)
        partial.put(unitKey(canonical, run),
                    store.get(unitKey(canonical, run)).value());
    partial.put(logKey(canonical), store.get(logKey(canonical)).value());

    CampaignExecutor resumed(partial, nullptr);
    request.id = "resumed";
    const ExecutionOutcome outcome = resumed.execute(request);
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.unitsReused, 3);
    EXPECT_EQ(outcome.unitsExecuted, 3);
    EXPECT_TRUE(outcome.logReused);
    EXPECT_EQ(embeddedReport(outcome.response),
              embeddedReport(full.response));
}

TEST(Service, CachedRunZeroWithoutLogMustReRecord)
{
    // Units without the replay log: run 0 must re-execute in record
    // mode (replay runs need the log), so it cannot count as reused.
    ResultStore store;
    CampaignExecutor seed_executor(store, nullptr);
    Request request;
    request.id = "seed";
    request.op = RequestOp::Check;
    request.check.app = "radix";
    request.check.runs = 4;
    request.check.input = "dev";
    const ExecutionOutcome full = seed_executor.execute(request);
    ASSERT_TRUE(full.ok);

    const std::string canonical = canonicalKey(request.check);
    ResultStore no_log;
    no_log.put(unitKey(canonical, 0),
               store.get(unitKey(canonical, 0)).value());
    no_log.put(unitKey(canonical, 1),
               store.get(unitKey(canonical, 1)).value());

    CampaignExecutor resumed(no_log, nullptr);
    request.id = "resumed";
    const ExecutionOutcome outcome = resumed.execute(request);
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.unitsReused, 1); // Only run 1 survives.
    EXPECT_EQ(outcome.unitsExecuted, 3);
    EXPECT_FALSE(outcome.logReused);
    EXPECT_EQ(embeddedReport(outcome.response),
              embeddedReport(full.response));
}

TEST(Service, UnknownAppIsARequestErrorNotACrash)
{
    Service service(ServiceConfig{});
    const std::string response =
        service.handleLine(checkLine("x", "no-such-app", 4, 1));
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(response.find("unknown app"), std::string::npos);
    EXPECT_EQ(service.snapshot().checkErrors, 1u);
}

TEST(Service, MalformedLinesCountAsProtocolErrors)
{
    Service service(ServiceConfig{});
    const std::string response = service.handleLine("not json at all");
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
    EXPECT_EQ(service.snapshot().protocolErrors, 1u);
}

TEST(Service, PingStatsAndDrain)
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    Service service(cfg);
    EXPECT_EQ(service.handleLine("{\"id\":\"p\",\"op\":\"ping\"}"),
              "{\"id\":\"p\",\"status\":\"ok\",\"pong\":true}");

    service.handleLine(checkLine("c", "radix", 4, 1000));
    const std::string stats_response =
        service.handleLine("{\"id\":\"s\",\"op\":\"stats\"}");
    const auto parsed = parseJson(stats_response);
    ASSERT_TRUE(parsed.has_value()) << stats_response;
    const JsonValue *stats = parsed->find("stats");
    ASSERT_NE(stats, nullptr);
    for (const char *key :
         {"requestsCompleted", "checksCompleted", "protocolErrors",
          "checkErrors", "busyRejected", "drainRejected",
          "responsesCached", "unitsExecuted", "unitsReused",
          "dedupHitRate", "queueDepth", "inFlight", "uptimeSeconds",
          "requestsPerSec", "storeKeys", "storeFramesLoaded",
          "storeBytesDropped"})
        EXPECT_NE(stats->find(key), nullptr) << key;
    EXPECT_EQ(*stats->find("checksCompleted")->asU64(), 1u);

    EXPECT_FALSE(service.drainRequested());
    const std::string drain_response =
        service.handleLine("{\"id\":\"d\",\"op\":\"drain\"}");
    EXPECT_NE(drain_response.find("\"draining\":true"),
              std::string::npos);
    EXPECT_TRUE(service.drainRequested());
}

TEST(ServeLoop, AppliesBackpressureWhenTheQueueIsFull)
{
    Service service(ServiceConfig{});
    ServeLoop loop(service, /*queue_depth=*/1, /*dispatchers=*/1);

    // Occupy the single dispatcher: its respond callback blocks until
    // released, so the next submit queues and the one after bounces.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::promise<void> entered;
    loop.submit("{\"id\":\"blocker\",\"op\":\"ping\"}",
                [&entered, released](const std::string &) {
                    entered.set_value();
                    released.wait();
                });
    entered.get_future().wait();

    std::string queued_response;
    std::mutex mu;
    std::condition_variable cv;
    bool queued_done = false;
    loop.submit("{\"id\":\"queued\",\"op\":\"ping\"}",
                [&](const std::string &response) {
                    std::lock_guard<std::mutex> lock(mu);
                    queued_response = response;
                    queued_done = true;
                    cv.notify_all();
                });

    std::string bounced;
    loop.submit("{\"id\":\"bounced\",\"op\":\"ping\"}",
                [&bounced](const std::string &response) {
                    bounced = response; // Called inline.
                });
    EXPECT_NE(bounced.find("\"status\":\"busy\""), std::string::npos)
        << bounced;
    EXPECT_NE(bounced.find("\"id\":\"bounced\""), std::string::npos);
    EXPECT_EQ(service.snapshot().busyRejected, 1u);

    release.set_value();
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return queued_done; });
    }
    EXPECT_NE(queued_response.find("\"pong\":true"), std::string::npos);
    loop.shutdown();
}

TEST(ServeLoop, RejectsLateLinesWhileDraining)
{
    Service service(ServiceConfig{});
    ServeLoop loop(service, 8, 1);
    loop.beginDrain();
    std::string response;
    loop.submit("{\"id\":\"late\",\"op\":\"ping\"}",
                [&response](const std::string &r) { response = r; });
    EXPECT_NE(response.find("\"status\":\"draining\""),
              std::string::npos);
    EXPECT_NE(response.find("\"id\":\"late\""), std::string::npos);
    EXPECT_EQ(service.snapshot().drainRejected, 1u);
    loop.shutdown();
}

TEST(ServePipe, AnswersEveryLineAndDrainsAtEof)
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    Service service(cfg);
    std::istringstream in(
        "{\"id\":\"p\",\"op\":\"ping\"}\n"
        "\n" // Blank lines are skipped, not errors.
        "garbage\n" +
        checkLine("c", "radix", 4, 1000) + "\n");
    std::ostringstream out;
    EXPECT_EQ(servePipe(service, in, out), 0);

    std::vector<std::string> lines;
    std::istringstream reader(out.str());
    for (std::string line; std::getline(reader, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u) << out.str();
    // Dispatch is concurrent, so order isn't guaranteed; match by id.
    int pongs = 0;
    int errors = 0;
    int oks = 0;
    for (const std::string &line : lines) {
        if (line.find("\"pong\":true") != std::string::npos)
            ++pongs;
        else if (line.find("\"status\":\"error\"") != std::string::npos)
            ++errors;
        else if (line.find("\"verdict\":") != std::string::npos)
            ++oks;
    }
    EXPECT_EQ(pongs, 1);
    EXPECT_EQ(errors, 1);
    EXPECT_EQ(oks, 1);
}

TEST(ServePipe, DrainRequestStopsIntake)
{
    ServiceConfig cfg;
    cfg.jobs = 1;
    cfg.dispatchers = 1; // FIFO, so the drain lands before the check.
    Service service(cfg);
    std::istringstream in("{\"id\":\"d\",\"op\":\"drain\"}\n" +
                          checkLine("after", "radix", 4, 1000) + "\n");
    std::ostringstream out;
    EXPECT_EQ(servePipe(service, in, out), 0);
    EXPECT_NE(out.str().find("\"draining\":true"), std::string::npos);
    // The line after the drain was never executed as a campaign
    // (either intake stopped before reading it, or it was refused).
    EXPECT_EQ(service.snapshot().checksCompleted, 0u);
}

} // namespace
} // namespace icheck::service
