/**
 * @file
 * The binary run-record / replay-log codec: exact round-trips, refusal
 * of truncated or version-skewed payloads (at every possible truncation
 * point — the store may hand back bytes from an older build), and
 * trailing-garbage rejection. A decode failure must always be a clean
 * nullopt/false, never a crash: the executor treats it as "recompute
 * this unit".
 */

#include <gtest/gtest.h>

#include <string>

#include "check/driver.hpp"
#include "mem/alloc.hpp"
#include "service/record_codec.hpp"

namespace icheck::service
{
namespace
{

check::RunRecord
sampleRecord()
{
    check::RunRecord record;
    record.checkpointHashes = {0x1111222233334444ULL, 0, ~0ULL};
    record.outputHash = 0xabcdef0123456789ULL;
    record.outputBytes = 4096;
    record.result.checkpoints = 3;
    record.result.nativeInstrs = 123456;
    record.result.overheadInstrs = 789;
    record.result.cacheHits = 1000;
    record.result.cacheMisses = 17;
    record.result.storesHashed = 2048;
    record.checkerOverheadInstrs = 55;
    return record;
}

TEST(RecordCodec, RunRecordRoundTrips)
{
    const check::RunRecord record = sampleRecord();
    const std::string bytes = encodeRunRecord(record);
    const auto decoded = decodeRunRecord(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->checkpointHashes, record.checkpointHashes);
    EXPECT_EQ(decoded->outputHash, record.outputHash);
    EXPECT_EQ(decoded->outputBytes, record.outputBytes);
    EXPECT_EQ(decoded->result.checkpoints, record.result.checkpoints);
    EXPECT_EQ(decoded->result.nativeInstrs, record.result.nativeInstrs);
    EXPECT_EQ(decoded->result.overheadInstrs,
              record.result.overheadInstrs);
    EXPECT_EQ(decoded->result.cacheHits, record.result.cacheHits);
    EXPECT_EQ(decoded->result.cacheMisses, record.result.cacheMisses);
    EXPECT_EQ(decoded->result.storesHashed, record.result.storesHashed);
    EXPECT_EQ(decoded->checkerOverheadInstrs,
              record.checkerOverheadInstrs);
}

TEST(RecordCodec, EmptyRecordRoundTrips)
{
    const auto decoded = decodeRunRecord(encodeRunRecord({}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->checkpointHashes.empty());
    EXPECT_EQ(decoded->outputHash, 0u);
}

TEST(RecordCodec, EncodingIsDeterministic)
{
    EXPECT_EQ(encodeRunRecord(sampleRecord()),
              encodeRunRecord(sampleRecord()));
}

TEST(RecordCodec, RejectsEveryTruncationOfARecord)
{
    const std::string bytes = encodeRunRecord(sampleRecord());
    for (std::size_t len = 0; len < bytes.size(); ++len)
        EXPECT_FALSE(decodeRunRecord(bytes.substr(0, len)).has_value())
            << "accepted at length " << len;
}

TEST(RecordCodec, RejectsTrailingGarbageOnRecords)
{
    EXPECT_FALSE(
        decodeRunRecord(encodeRunRecord(sampleRecord()) + "x")
            .has_value());
}

TEST(RecordCodec, RejectsVersionSkewOnRecords)
{
    std::string bytes = encodeRunRecord(sampleRecord());
    bytes[0] = 2; // Bump the little-endian version word.
    EXPECT_FALSE(decodeRunRecord(bytes).has_value());
}

TEST(RecordCodec, RejectsHostileHashCount)
{
    // A payload claiming 2^28 hashes but carrying none must be refused
    // by bounds checking, not by attempting a giant allocation.
    std::string bytes;
    bytes.append("\x01\x00\x00\x00", 4);  // version
    bytes.append("\x00\x00\x00\x10\x00\x00\x00\x00", 8); // count 2^28
    EXPECT_FALSE(decodeRunRecord(bytes).has_value());
}

mem::ReplayLog
sampleLog()
{
    mem::ReplayLog log;
    log.record("app.cc:main", 0, 0x10000);
    log.record("app.cc:main", 1, 0x20000);
    log.record("worker|spawn", 0, 0x30000);
    log.raiseHighWater(0x40000);
    return log;
}

TEST(RecordCodec, ReplayLogRoundTrips)
{
    const mem::ReplayLog log = sampleLog();
    mem::ReplayLog decoded;
    ASSERT_TRUE(decodeReplayLog(encodeReplayLog(log), decoded));
    EXPECT_EQ(decoded.entriesMap(), log.entriesMap());
    EXPECT_EQ(decoded.highWater(), log.highWater());
}

TEST(RecordCodec, EmptyReplayLogRoundTrips)
{
    mem::ReplayLog decoded;
    ASSERT_TRUE(decodeReplayLog(encodeReplayLog({}), decoded));
    EXPECT_TRUE(decoded.empty());
    EXPECT_EQ(decoded.highWater(), 0u);
}

TEST(RecordCodec, RejectsEveryTruncationOfALog)
{
    const std::string bytes = encodeReplayLog(sampleLog());
    mem::ReplayLog sink;
    for (std::size_t len = 0; len < bytes.size(); ++len)
        EXPECT_FALSE(decodeReplayLog(bytes.substr(0, len), sink))
            << "accepted at length " << len;
}

TEST(RecordCodec, RejectsTrailingGarbageOnLogs)
{
    mem::ReplayLog sink;
    EXPECT_FALSE(decodeReplayLog(encodeReplayLog(sampleLog()) + "y",
                                 sink));
}

} // namespace
} // namespace icheck::service
