/**
 * @file
 * The service request codec's contract: strict validation of untrusted
 * JSONL lines — malformed documents, unknown fields (rejected by name),
 * out-of-range values, unsafe ids, oversized payloads — plus the
 * canonical-key algebra the dedup and resume machinery is built on, and
 * a deterministic fuzz corpus proving the parser never accepts garbage
 * or crashes on it.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "support/rng.hpp"

namespace icheck::service
{
namespace
{

TEST(Protocol, ParsesMinimalCheckRequest)
{
    const ParsedLine parsed = parseRequestLine(
        "{\"id\":\"r1\",\"op\":\"check\",\"app\":\"radix\"}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.request->id, "r1");
    EXPECT_EQ(parsed.request->op, RequestOp::Check);
    const CheckRequest &check = parsed.request->check;
    EXPECT_EQ(check.app, "radix");
    EXPECT_EQ(check.runs, 8);
    EXPECT_EQ(check.scheme, check::Scheme::HwInc);
    EXPECT_EQ(check.seed, 1000u);
    EXPECT_EQ(check.input, "medium");
    EXPECT_TRUE(check.rounding);
    EXPECT_TRUE(check.ignores);
    EXPECT_EQ(check.cores, 0);
}

TEST(Protocol, ParsesFullCheckRequest)
{
    const ParsedLine parsed = parseRequestLine(
        "{\"id\":\"r2\",\"op\":\"check\",\"app\":\"fft\",\"runs\":16,"
        "\"scheme\":\"swtr\",\"seed\":77,\"input\":\"dev\","
        "\"rounding\":false,\"ignores\":false,\"cores\":4}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const CheckRequest &check = parsed.request->check;
    EXPECT_EQ(check.runs, 16);
    EXPECT_EQ(check.scheme, check::Scheme::SwTr);
    EXPECT_EQ(check.seed, 77u);
    EXPECT_EQ(check.input, "dev");
    EXPECT_FALSE(check.rounding);
    EXPECT_FALSE(check.ignores);
    EXPECT_EQ(check.cores, 4);
}

TEST(Protocol, ParsesControlOps)
{
    for (const auto &[op_name, op] :
         {std::pair<std::string, RequestOp>{"stats", RequestOp::Stats},
          {"ping", RequestOp::Ping},
          {"drain", RequestOp::Drain}}) {
        const ParsedLine parsed = parseRequestLine(
            "{\"id\":\"c\",\"op\":\"" + op_name + "\"}");
        ASSERT_TRUE(parsed.ok()) << op_name << ": " << parsed.error;
        EXPECT_EQ(parsed.request->op, op);
    }
}

TEST(Protocol, RejectsMalformedLines)
{
    const char *bad[] = {
        "",
        "not json",
        "{\"id\":\"x\",\"op\":\"check\"",
        "[\"id\",\"x\"]",
        "42",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"radix\"} trailing",
    };
    for (const char *line : bad) {
        const ParsedLine parsed = parseRequestLine(line);
        EXPECT_FALSE(parsed.ok()) << line;
        EXPECT_FALSE(parsed.error.empty()) << line;
    }
}

TEST(Protocol, RejectsUnknownFieldsByName)
{
    const ParsedLine parsed = parseRequestLine(
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"radix\","
        "\"bogus\":1}");
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("bogus"), std::string::npos);
    // The id survives validation, so the error response can carry it.
    EXPECT_EQ(parsed.id, "x");

    // check-only fields are unknown for control ops.
    const ParsedLine stats = parseRequestLine(
        "{\"id\":\"x\",\"op\":\"stats\",\"runs\":4}");
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.error.find("runs"), std::string::npos);
}

TEST(Protocol, RejectsBadIds)
{
    const char *bad[] = {
        "{\"op\":\"ping\"}",                          // missing
        "{\"id\":\"\",\"op\":\"ping\"}",              // empty
        "{\"id\":7,\"op\":\"ping\"}",                 // not a string
        "{\"id\":\"a\\u0007b\",\"op\":\"ping\"}",     // control char
        "{\"id\":\"a\\\\b\",\"op\":\"ping\"}",        // backslash
    };
    for (const char *line : bad) {
        const ParsedLine parsed = parseRequestLine(line);
        EXPECT_FALSE(parsed.ok()) << line;
        // Unsafe ids are never echoed back.
        EXPECT_TRUE(parsed.id.empty()) << line;
    }
    const std::string long_id(129, 'a');
    EXPECT_FALSE(
        parseRequestLine("{\"id\":\"" + long_id + "\",\"op\":\"ping\"}")
            .ok());
    const std::string max_id(128, 'a');
    EXPECT_TRUE(
        parseRequestLine("{\"id\":\"" + max_id + "\",\"op\":\"ping\"}")
            .ok());
}

TEST(Protocol, RejectsOutOfRangeValues)
{
    const char *bad[] = {
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"\"}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"runs\":1}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"runs\":4097}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"runs\":-3}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"runs\":2.5}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"scheme\":\"x\"}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"seed\":-1}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"input\":\"xl\"}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"rounding\":1}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"cores\":0}",
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\",\"cores\":65}",
        "{\"id\":\"x\",\"op\":\"check\"}", // app required
        "{\"id\":\"x\"}",                  // op required
        "{\"id\":\"x\",\"op\":\"flush\"}", // unknown op
    };
    for (const char *line : bad)
        EXPECT_FALSE(parseRequestLine(line).ok()) << line;
}

TEST(Protocol, RefusesOversizedLinesBeforeParsing)
{
    // An oversized line is rejected on length alone — even if its
    // content would otherwise be unparseable garbage.
    const std::string huge(1025, '{');
    const ParsedLine parsed = parseRequestLine(huge, 1024);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("oversized"), std::string::npos);

    // At exactly the bound, normal parsing applies.
    std::string padded = "{\"id\":\"p\",\"op\":\"ping\"}";
    padded.append(1024 - padded.size(), ' ');
    EXPECT_TRUE(parseRequestLine(padded, 1024).ok());
}

TEST(Protocol, SeedsRoundTripAt64Bits)
{
    const ParsedLine parsed = parseRequestLine(
        "{\"id\":\"x\",\"op\":\"check\",\"app\":\"r\","
        "\"seed\":18446744073709551615}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.request->check.seed, 18446744073709551615ULL);
}

TEST(Protocol, CanonicalKeyCoversEveryKnobExceptRunsAndId)
{
    CheckRequest base;
    base.app = "radix";
    const std::string key = canonicalKey(base);

    // runs is excluded: campaigns of different lengths share units.
    CheckRequest more_runs = base;
    more_runs.runs = 64;
    EXPECT_EQ(canonicalKey(more_runs), key);

    // Every other knob must change the key.
    CheckRequest c = base;
    c.app = "fft";
    EXPECT_NE(canonicalKey(c), key);
    c = base;
    c.input = "large";
    EXPECT_NE(canonicalKey(c), key);
    c = base;
    c.scheme = check::Scheme::SwInc;
    EXPECT_NE(canonicalKey(c), key);
    c = base;
    c.seed = 2000;
    EXPECT_NE(canonicalKey(c), key);
    c = base;
    c.rounding = false;
    EXPECT_NE(canonicalKey(c), key);
    c = base;
    c.ignores = false;
    EXPECT_NE(canonicalKey(c), key);
    c = base;
    c.cores = 4;
    EXPECT_NE(canonicalKey(c), key);
}

TEST(Protocol, DerivedKeysAreDisjoint)
{
    CheckRequest request;
    request.app = "radix";
    const std::string canonical = canonicalKey(request);
    EXPECT_NE(unitKey(canonical, 0), unitKey(canonical, 1));
    EXPECT_NE(unitKey(canonical, 0), logKey(canonical));
    EXPECT_NE(responseKey("r1"), responseKey("r2"));
    EXPECT_EQ(responseKey("r1").rfind("resp#", 0), 0u);
}

TEST(Protocol, ResponsesEscapeUntrustedText)
{
    const std::string response =
        renderErrorResponse("ok-id", "bad \"quote\" and \\slash");
    EXPECT_NE(response.find("\\\"quote\\\""), std::string::npos);
    EXPECT_NE(response.find("\\\\slash"), std::string::npos);
}

/**
 * Deterministic fuzz corpus: random truncations, byte flips, and
 * splices of valid requests. The parser must never crash and never
 * accept a line whose round-trip identity is broken.
 */
TEST(Protocol, FuzzCorpusNeverCrashesOrMisparses)
{
    const std::vector<std::string> seeds = {
        "{\"id\":\"r1\",\"op\":\"check\",\"app\":\"radix\",\"runs\":8,"
        "\"seed\":1000,\"input\":\"dev\"}",
        "{\"id\":\"s1\",\"op\":\"stats\"}",
        "{\"id\":\"p1\",\"op\":\"ping\"}",
        "{\"id\":\"d1\",\"op\":\"drain\"}",
    };
    Xoshiro256 rng(0xfeedfaceULL);
    int accepted = 0;
    for (int round = 0; round < 4000; ++round) {
        std::string line = seeds[rng.below(seeds.size())];
        switch (rng.below(3)) {
          case 0: // truncate
            line.resize(rng.below(line.size() + 1));
            break;
          case 1: { // flip a byte
            if (!line.empty()) {
                const std::size_t at = rng.below(line.size());
                line[at] = static_cast<char>(rng.below(256));
            }
            break;
          }
          default: { // splice two seeds
            const std::string &other = seeds[rng.below(seeds.size())];
            line = line.substr(0, rng.below(line.size() + 1)) +
                   other.substr(rng.below(other.size()));
            break;
          }
        }
        const ParsedLine parsed = parseRequestLine(line, 4096);
        if (!parsed.ok()) {
            EXPECT_FALSE(parsed.error.empty());
            continue;
        }
        ++accepted;
        // Anything accepted must satisfy the documented invariants.
        const Request &request = *parsed.request;
        EXPECT_FALSE(request.id.empty());
        EXPECT_LE(request.id.size(), 128u);
        if (request.op == RequestOp::Check) {
            EXPECT_FALSE(request.check.app.empty());
            EXPECT_GE(request.check.runs, 2);
            EXPECT_LE(request.check.runs, 4096);
        }
    }
    // Mutations occasionally produce valid lines (e.g. a truncation at
    // full length); the corpus must exercise both outcomes.
    EXPECT_GT(accepted, 0);
}

} // namespace
} // namespace icheck::service
