/**
 * @file
 * Group-algebra properties of ModHash — the foundation that makes
 * incremental hashing sound (Section 2.2).
 */

#include <gtest/gtest.h>

#include "hashing/mod_hash.hpp"
#include "support/rng.hpp"

namespace icheck::hashing
{
namespace
{

TEST(ModHash, IdentityIsZero)
{
    ModHash h(0x1234);
    EXPECT_EQ(h + zeroHash, h);
    EXPECT_EQ(zeroHash + h, h);
    EXPECT_EQ(h - zeroHash, h);
}

TEST(ModHash, AdditionCommutes)
{
    Xoshiro256 rng(7);
    for (int i = 0; i < 100; ++i) {
        ModHash a(rng.next());
        ModHash b(rng.next());
        EXPECT_EQ(a + b, b + a);
    }
}

TEST(ModHash, AdditionAssociates)
{
    Xoshiro256 rng(11);
    for (int i = 0; i < 100; ++i) {
        ModHash a(rng.next());
        ModHash b(rng.next());
        ModHash c(rng.next());
        EXPECT_EQ((a + b) + c, a + (b + c));
    }
}

TEST(ModHash, SubtractionCancelsAddition)
{
    Xoshiro256 rng(13);
    for (int i = 0; i < 100; ++i) {
        ModHash a(rng.next());
        ModHash b(rng.next());
        EXPECT_EQ((a + b) - b, a);
        EXPECT_EQ((a - b) + b, a);
    }
}

TEST(ModHash, UnaryMinusIsInverse)
{
    Xoshiro256 rng(17);
    for (int i = 0; i < 100; ++i) {
        ModHash a(rng.next());
        EXPECT_EQ(a + (-a), zeroHash);
    }
}

TEST(ModHash, WrapsModulo64)
{
    ModHash max(~std::uint64_t{0});
    EXPECT_EQ(max + ModHash(1), zeroHash);
    EXPECT_EQ(zeroHash - ModHash(1), max);
}

TEST(ModHash, CompoundAssignmentMatchesBinary)
{
    ModHash a(5);
    ModHash acc = a;
    acc += ModHash(9);
    EXPECT_EQ(acc, a + ModHash(9));
    acc -= ModHash(9);
    EXPECT_EQ(acc, a);
}

} // namespace
} // namespace icheck::hashing
