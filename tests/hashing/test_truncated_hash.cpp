/**
 * @file
 * Width-truncated hashing: the substrate of the hash-width collision
 * ablation (the paper's 2^-W false-negative argument).
 */

#include <gtest/gtest.h>
#include <set>

#include "hashing/truncated_hash.hpp"
#include "support/rng.hpp"

namespace icheck::hashing
{
namespace
{

std::unique_ptr<TruncatedLocationHasher>
make(unsigned width)
{
    return std::make_unique<TruncatedLocationHasher>(
        makeLocationHasher(HasherKind::Crc64), width);
}

TEST(TruncatedHasher, MasksToWidth)
{
    const auto hasher = make(12);
    Xoshiro256 rng(1);
    for (int i = 0; i < 200; ++i) {
        const HashWord word =
            hasher->hashByte(rng.next(),
                             static_cast<std::uint8_t>(rng.range(1, 255)))
                .raw();
        EXPECT_LT(word, HashWord{1} << 12);
    }
}

TEST(TruncatedHasher, Width64IsTransparent)
{
    const auto full = makeLocationHasher(HasherKind::Crc64);
    const auto truncated = make(64);
    EXPECT_EQ(truncated->hashByte(0x1234, 99), full->hashByte(0x1234, 99));
}

TEST(TruncatedHasher, PreservesZeroIdentity)
{
    const auto hasher = make(16);
    EXPECT_EQ(hasher->hashByte(0x5555, 0), ModHash{});
}

TEST(TruncatedHasher, AgreesWithInnerOnLowBits)
{
    const auto full = makeLocationHasher(HasherKind::Crc64);
    const auto hasher = make(20);
    Xoshiro256 rng(2);
    for (int i = 0; i < 100; ++i) {
        const Addr addr = rng.next();
        const auto value = static_cast<std::uint8_t>(rng.range(1, 255));
        EXPECT_EQ(hasher->hashByte(addr, value).raw(),
                  full->hashByte(addr, value).raw() &
                      ((HashWord{1} << 20) - 1));
    }
}

TEST(TruncatedHasher, NameEncodesWidth)
{
    EXPECT_EQ(make(16)->name(), "crc64/16");
    EXPECT_EQ(make(16)->width(), 16u);
}

TEST(TruncatedHasher, NarrowWidthsCollideAtBirthdayRate)
{
    // ~2000 distinct nonzero (addr, value) pairs at 10 bits: expect
    // heavy collisions; at 64 bits: none.
    Xoshiro256 rng(3);
    std::vector<std::pair<Addr, std::uint8_t>> inputs;
    for (int i = 0; i < 2000; ++i)
        inputs.emplace_back(rng.next(),
                            static_cast<std::uint8_t>(rng.range(1, 255)));

    const auto narrow = make(10);
    std::set<HashWord> narrow_values;
    for (const auto &[addr, value] : inputs)
        narrow_values.insert(narrow->hashByte(addr, value).raw());
    EXPECT_LT(narrow_values.size(), inputs.size())
        << "10-bit hashes of 2000 inputs must collide";

    const auto wide = make(64);
    std::set<HashWord> wide_values;
    for (const auto &[addr, value] : inputs)
        wide_values.insert(wide->hashByte(addr, value).raw());
    EXPECT_EQ(wide_values.size(), inputs.size());
}

TEST(TruncatedHasher, InvalidWidthPanics)
{
    EXPECT_DEATH(make(0), "width");
    EXPECT_DEATH(make(65), "width");
}

} // namespace
} // namespace icheck::hashing
