/**
 * @file
 * Per-location hash function h(a, v) properties, for both the CRC-64 and
 * Mix64 instantiations.
 */

#include <gtest/gtest.h>
#include <memory>
#include <set>

#include "hashing/location_hash.hpp"
#include "support/rng.hpp"

namespace icheck::hashing
{
namespace
{

class LocationHasherTest : public ::testing::TestWithParam<HasherKind>
{
  protected:
    void SetUp() override { hasher = makeLocationHasher(GetParam()); }

    std::unique_ptr<LocationHasher> hasher;
};

TEST_P(LocationHasherTest, PureFunction)
{
    Xoshiro256 rng(3);
    for (int i = 0; i < 50; ++i) {
        const Addr addr = rng.next();
        const auto value = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(hasher->hashByte(addr, value),
                  hasher->hashByte(addr, value));
    }
}

TEST_P(LocationHasherTest, ZeroByteIsIdentity)
{
    // h(a, 0) == identity: zero memory contributes nothing to a state
    // hash, which is what keeps incremental and traversal hashing in
    // agreement over allocation and scrubbing.
    Xoshiro256 rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(hasher->hashByte(rng.next(), 0), zeroHash);
}

TEST_P(LocationHasherTest, AddressSensitive)
{
    // The hash includes addresses so a permutation of the same values
    // hashes differently (Section 2.2).
    EXPECT_NE(hasher->hashByte(0x1000, 7), hasher->hashByte(0x1001, 7));
    const ModHash permuted_a = hasher->hashByte(0x1000, 7) +
                               hasher->hashByte(0x1001, 9);
    const ModHash permuted_b = hasher->hashByte(0x1000, 9) +
                               hasher->hashByte(0x1001, 7);
    EXPECT_NE(permuted_a, permuted_b);
}

TEST_P(LocationHasherTest, ValueSensitive)
{
    std::set<HashWord> seen;
    for (unsigned v = 1; v < 256; ++v)
        seen.insert(hasher->hashByte(0x2000, static_cast<std::uint8_t>(v))
                        .raw());
    EXPECT_EQ(seen.size(), 255u) << "nonzero byte values must not collide "
                                    "at one address";
}

TEST_P(LocationHasherTest, NoAccidentalSumCollisions)
{
    // Sum a few thousand random (addr, value) hashes two ways: batches
    // assembled in different orders agree; distinct batches do not.
    Xoshiro256 rng(9);
    ModHash forward, backward;
    std::vector<std::pair<Addr, std::uint8_t>> pairs;
    for (int i = 0; i < 2000; ++i) {
        pairs.emplace_back(rng.next(),
                           static_cast<std::uint8_t>(rng.range(1, 255)));
    }
    for (const auto &[addr, value] : pairs)
        forward += hasher->hashByte(addr, value);
    for (auto it = pairs.rbegin(); it != pairs.rend(); ++it)
        backward += hasher->hashByte(it->first, it->second);
    EXPECT_EQ(forward, backward);

    ModHash other = forward - hasher->hashByte(pairs[0].first,
                                               pairs[0].second);
    EXPECT_NE(other, forward);
}

INSTANTIATE_TEST_SUITE_P(AllHashers, LocationHasherTest,
                         ::testing::Values(HasherKind::Crc64,
                                           HasherKind::Mix64),
                         [](const auto &info) {
                             return info.param == HasherKind::Crc64
                                        ? "Crc64"
                                        : "Mix64";
                         });

TEST(LocationHasherFactory, NamesMatchKinds)
{
    EXPECT_EQ(makeLocationHasher(HasherKind::Crc64)->name(), "crc64");
    EXPECT_EQ(makeLocationHasher(HasherKind::Mix64)->name(), "mix64");
}

} // namespace
} // namespace icheck::hashing
