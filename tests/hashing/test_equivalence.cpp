/**
 * @file
 * Equivalence proofs for every hot-path hashing shortcut.
 *
 * The optimized pipeline takes three liberties with the naive definitions:
 * slicing-by-8 CRC instead of the byte-at-a-time recurrence, a hoisted
 * address-prefix CRC inside Crc64LocationHasher::hashSpan, and one batched
 * hashSpan call per store instead of a per-byte virtual hashByte fold.
 * Every checkpoint hash in the repo flows through these shortcuts, so this
 * suite pins them against independent naive references (kept alive here,
 * not in the library) plus golden vectors frozen from the canonical
 * definition — any silent change to the hash function fails loudly.
 */

#include <cstring>
#include <gtest/gtest.h>
#include <vector>

#include "hashing/crc64.hpp"
#include "hashing/location_hash.hpp"
#include "hashing/state_hash.hpp"
#include "hashing/truncated_hash.hpp"
#include "mem/memory.hpp"
#include "support/rng.hpp"

namespace icheck::hashing
{
namespace
{

/** Tableless bitwise CRC-64/ECMA-182: the definition, one bit at a time. */
std::uint64_t
bitwiseCrc64(const std::uint8_t *data, std::size_t len,
             std::uint64_t seed = 0)
{
    std::uint64_t crc = seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= static_cast<std::uint64_t>(data[i]) << 56;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & (1ULL << 63))
                crc = (crc << 1) ^ detail::crc64Polynomial;
            else
                crc <<= 1;
        }
    }
    return crc;
}

/**
 * Naive h(a, v) for the CRC instantiation: the CRC of the 9-byte record
 * (8-byte little-endian address, then the value byte), identity for zero.
 */
ModHash
referenceCrcHashByte(Addr addr, std::uint8_t value)
{
    if (value == 0)
        return ModHash{};
    std::uint8_t record[9];
    for (int i = 0; i < 8; ++i)
        record[i] = static_cast<std::uint8_t>(addr >> (8 * i));
    record[8] = value;
    return ModHash(bitwiseCrc64(record, 9));
}

/** The per-byte fold every hashSpan override must stay bit-identical to. */
ModHash
referenceFold(const LocationHasher &hasher, Addr addr,
              const std::uint8_t *bytes, std::size_t len)
{
    ModHash sum;
    for (std::size_t i = 0; i < len; ++i)
        sum += hasher.hashByte(addr + i, bytes[i]);
    return sum;
}

/** Deterministic test bytes with zeros sprinkled in (the skip path). */
std::vector<std::uint8_t>
patternBytes(std::size_t len, std::uint64_t seed)
{
    SplitMix64 gen(seed);
    std::vector<std::uint8_t> bytes(len);
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t word = gen.next();
        bytes[i] = (word % 5 == 0)
                       ? 0
                       : static_cast<std::uint8_t>(word >> 32);
    }
    return bytes;
}

TEST(CrcEquivalence, SlicedComputeMatchesBitwise)
{
    SplitMix64 gen(0xc0ffee);
    for (std::size_t len = 0; len <= 64; ++len) {
        std::vector<std::uint8_t> data(len);
        for (auto &byte : data)
            byte = static_cast<std::uint8_t>(gen.next());
        const std::uint64_t seed = gen.next();
        EXPECT_EQ(Crc64::compute(data.data(), len, seed),
                  bitwiseCrc64(data.data(), len, seed))
            << "len " << len;
    }
}

TEST(CrcEquivalence, SlicedComputeKnownVector)
{
    const char *msg = "123456789";
    EXPECT_EQ(Crc64::compute(msg, std::strlen(msg)),
              0x6C40DF5F0B497347ULL);
}

TEST(CrcEquivalence, FeedWordLeMatchesEightFeeds)
{
    SplitMix64 gen(0x5eed);
    for (int round = 0; round < 256; ++round) {
        const std::uint64_t seed = gen.next();
        const std::uint64_t word = gen.next();
        std::uint64_t crc = seed;
        for (int i = 0; i < 8; ++i)
            crc = Crc64::feed(crc,
                              static_cast<std::uint8_t>(word >> (8 * i)));
        EXPECT_EQ(Crc64::feedWordLe(seed, word), crc);
    }
}

TEST(CrcEquivalence, HashByteIsNineByteRecordCrc)
{
    const Crc64LocationHasher hasher;
    const Addr addrs[] = {0x0, 0x1, 0xff, 0x100, mem::staticBase,
                          mem::heapBase - 1, mem::heapBase,
                          mem::scratchBase + 0xff,
                          0xfedcba9876543210ULL, ~Addr{0}};
    for (const Addr addr : addrs) {
        for (unsigned value = 0; value < 256; ++value) {
            EXPECT_EQ(
                hasher.hashByte(addr, static_cast<std::uint8_t>(value)),
                referenceCrcHashByte(addr,
                                     static_cast<std::uint8_t>(value)))
                << "addr " << addr << " value " << value;
        }
    }
}

TEST(CrcEquivalence, ZeroByteIsIdentityEverywhere)
{
    const Crc64LocationHasher crc;
    const Mix64LocationHasher mix;
    SplitMix64 gen(0xabcdef);
    for (int round = 0; round < 1000; ++round) {
        const Addr addr = gen.next();
        EXPECT_EQ(crc.hashByte(addr, 0), ModHash{});
        EXPECT_EQ(mix.hashByte(addr, 0), ModHash{});
    }
}

/** Exercise one hasher's hashSpan against the fold over tricky spans. */
void
checkSpans(const LocationHasher &hasher)
{
    // Every width and alignment a store can have, at benign addresses.
    for (Addr base : {Addr{0}, mem::staticBase, mem::heapBase}) {
        for (unsigned align = 0; align < 8; ++align) {
            for (std::size_t len = 1; len <= 8; ++len) {
                const Addr addr = base + align;
                const auto bytes =
                    patternBytes(len, base + align * 16 + len);
                EXPECT_EQ(hasher.hashSpan(addr, bytes.data(), len),
                          referenceFold(hasher, addr, bytes.data(), len))
                    << hasher.name() << " addr " << addr << " len " << len;
            }
        }
    }
    // Spans that straddle the 0x100 suffix-hoisting boundary, the 4096
    // page boundary, and address-space wraparound, at every offset.
    const Addr boundaries[] = {mem::heapBase + 0x100,
                               mem::heapBase + mem::pageSize,
                               mem::scratchBase + 3 * mem::pageSize,
                               Addr{0}};
    for (const Addr boundary : boundaries) {
        for (std::size_t len : {std::size_t{2}, std::size_t{8},
                                std::size_t{64}, std::size_t{300}}) {
            for (std::size_t before = 1; before < len; ++before) {
                const Addr addr = boundary - before;
                const auto bytes = patternBytes(len, boundary + before);
                EXPECT_EQ(hasher.hashSpan(addr, bytes.data(), len),
                          referenceFold(hasher, addr, bytes.data(), len))
                    << hasher.name() << " boundary " << boundary
                    << " before " << before << " len " << len;
            }
        }
    }
    // All-zero spans hash to the identity.
    const std::vector<std::uint8_t> zeros(512, 0);
    EXPECT_EQ(hasher.hashSpan(mem::heapBase - 7, zeros.data(),
                              zeros.size()),
              ModHash{});
}

TEST(SpanEquivalence, Crc64HashSpanMatchesByteFold)
{
    checkSpans(Crc64LocationHasher{});
}

TEST(SpanEquivalence, Mix64HashSpanMatchesByteFold)
{
    checkSpans(Mix64LocationHasher{});
}

TEST(SpanEquivalence, TruncatedHasherKeepsPerByteSemantics)
{
    // TruncatedLocationHasher masks each per-byte hash before summing; it
    // must inherit the generic fold, not a batched override that would
    // mask only the total.
    const TruncatedLocationHasher hasher(
        std::make_unique<Crc64LocationHasher>(), 16);
    const auto bytes = patternBytes(40, 0x7e57);
    const Addr addr = mem::heapBase + 0x100 - 13;
    EXPECT_EQ(hasher.hashSpan(addr, bytes.data(), bytes.size()),
              referenceFold(hasher, addr, bytes.data(), bytes.size()));
}

TEST(ValueHashEquivalence, AllWidthsAndClassesMatchByteFold)
{
    const Crc64LocationHasher locHasher;
    SplitMix64 gen(0xfeed);
    for (const auto &mode : {FpRoundMode::none(),
                             FpRoundMode::paperDefault(),
                             FpRoundMode::mask(12)}) {
        const StateHasher pipeline(locHasher, mode);
        for (unsigned width = 1; width <= 8; ++width) {
            const Addr addr = mem::heapBase + 0x100 - width / 2;
            const std::uint64_t raw =
                width == 8 ? gen.next()
                           : gen.next() & ((1ULL << (8 * width)) - 1);
            const ModHash got =
                pipeline.valueHash(addr, raw, width, ValueClass::Integer);
            std::uint8_t bytes[8];
            for (unsigned i = 0; i < width; ++i)
                bytes[i] = static_cast<std::uint8_t>(raw >> (8 * i));
            EXPECT_EQ(got, referenceFold(locHasher, addr, bytes, width))
                << "width " << width;
        }
        // FP classes round first, then fold the rounded bytes.
        const struct
        {
            ValueClass cls;
            unsigned width;
            std::uint64_t raw;
        } fpCases[] = {
            {ValueClass::Float, 4, 0x402df854},          // 2.71828f
            {ValueClass::Float, 4, 0xc0490fdb},          // -3.14159f
            {ValueClass::Double, 8, 0x400921fb54442d18}, // pi
            {ValueClass::Double, 8, 0xbfe0000000000000}, // -0.5
        };
        for (const auto &fp : fpCases) {
            const Addr addr = mem::staticBase + 64;
            const std::uint64_t rounded =
                roundFpBits(fp.raw, fp.width, mode);
            std::uint8_t bytes[8];
            for (unsigned i = 0; i < fp.width; ++i)
                bytes[i] = static_cast<std::uint8_t>(rounded >> (8 * i));
            EXPECT_EQ(pipeline.valueHash(addr, fp.raw, fp.width, fp.cls),
                      referenceFold(locHasher, addr, bytes, fp.width));
        }
    }
}

TEST(GoldenVectors, PinnedHashesNeverDrift)
{
    // Frozen outputs of the canonical hash definitions. These must never
    // change: every stored determinism report and cross-run comparison
    // depends on the exact values.
    const Crc64LocationHasher crc;
    const Mix64LocationHasher mix;

    const struct
    {
        Addr addr;
        std::uint8_t value;
        std::uint64_t crcHash;
        std::uint64_t mixHash;
    } bytes[] = {
        {0x0, 0x01, 0x42f0e1eba9ea3693ULL, 0xc9ed992411bbb661ULL},
        {0x10000, 0xff, 0x5d3076bb3bd3f60bULL, 0x52cd0ccab30d354cULL},
        {0x1ffffffdULL, 0x80, 0xd12db12d8915f255ULL,
         0x6095950d16dcb922ULL},
        {0x20000000ULL, 0x5a, 0x123e97515f83c370ULL,
         0xdb35751bdac3149dULL},
        {0x600000ffULL, 0x01, 0x5d8106f22c46155fULL,
         0x8a7d4cce1ff69f02ULL},
        {0xfedcba9876543210ULL, 0xc3, 0xf8477baa1c0b4f28ULL,
         0x091d32f8171220baULL},
    };
    for (const auto &expected : bytes) {
        EXPECT_EQ(crc.hashByte(expected.addr, expected.value).raw(),
                  expected.crcHash);
        EXPECT_EQ(mix.hashByte(expected.addr, expected.value).raw(),
                  expected.mixHash);
    }

    std::uint8_t span[40];
    for (int i = 0; i < 40; ++i) {
        span[i] = static_cast<std::uint8_t>(i % 5 == 0 ? 0 : i * 37 + 1);
    }
    // Straddles a 0x100 address boundary.
    EXPECT_EQ(crc.hashSpan(0x200000f0ULL, span, 40).raw(),
              0x647770194d2ccdbfULL);
    EXPECT_EQ(mix.hashSpan(0x200000f0ULL, span, 40).raw(),
              0x17d519a782eee055ULL);
    // Straddles a simulated page boundary.
    const Addr pageStraddle = 0x20000000ULL + mem::pageSize - 20;
    EXPECT_EQ(crc.hashSpan(pageStraddle, span, 40).raw(),
              0x660038ccdfa03ad9ULL);
    EXPECT_EQ(mix.hashSpan(pageStraddle, span, 40).raw(),
              0x61d7228168ff81dbULL);

    const StateHasher rounded(crc, FpRoundMode::paperDefault());
    EXPECT_EQ(rounded
                  .valueHash(0x10040, 0x400921fb54442d11ULL, 8,
                             ValueClass::Double)
                  .raw(),
              0xff0f1a5d76e07899ULL);
    EXPECT_EQ(rounded
                  .valueHash(0x10044, 0x402df854ULL, 4, ValueClass::Float)
                  .raw(),
              0x18ebc41522fd7d92ULL);
    EXPECT_EQ(rounded
                  .valueHash(0x10048, 0x0123456789abcdefULL, 8,
                             ValueClass::Integer)
                  .raw(),
              0xffffdffffffffffcULL);
}

} // namespace
} // namespace icheck::hashing
