/**
 * @file
 * FP round-off unit behaviour (sections 3.1 and 5): mantissa masking for
 * relative differences, decimal flooring for absolute differences.
 */

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

#include "hashing/fp_round.hpp"

namespace icheck::hashing
{
namespace
{

TEST(FpRound, NoneIsIdentity)
{
    const FpRoundMode mode = FpRoundMode::none();
    EXPECT_EQ(roundDouble(3.14159265358979, mode), 3.14159265358979);
    EXPECT_EQ(roundFloat(2.71828f, mode), 2.71828f);
}

TEST(FpRound, DecimalFloorDefaultIsClosest0001)
{
    const FpRoundMode mode = FpRoundMode::paperDefault();
    EXPECT_DOUBLE_EQ(roundDouble(1.23456, mode), 1.234);
    EXPECT_DOUBLE_EQ(roundDouble(1.2349999, mode), 1.234);
    EXPECT_DOUBLE_EQ(roundDouble(-1.23456, mode), -1.235);
}

TEST(FpRound, DecimalFloorMergesReassociationNoise)
{
    // Two orders of summing the same terms differ in the last ulps; the
    // floor maps both to the same value.
    const double a = (0.1 + 0.2) + 0.3;
    const double b = 0.1 + (0.2 + 0.3);
    ASSERT_NE(a, b) << "test premise: reassociation changes the value";
    const FpRoundMode mode = FpRoundMode::paperDefault();
    EXPECT_EQ(roundDouble(a, mode), roundDouble(b, mode));
}

TEST(FpRound, MantissaMaskZeroesLowBits)
{
    const FpRoundMode mode = FpRoundMode::mask(20);
    const double value = 1.0 + 1e-9;
    const double rounded = roundDouble(value, mode);
    std::uint64_t bits;
    std::memcpy(&bits, &rounded, sizeof(bits));
    EXPECT_EQ(bits & ((1ULL << 20) - 1), 0u);
    EXPECT_NEAR(rounded, value, 1e-9);
}

TEST(FpRound, MantissaMaskMergesRelativeNoise)
{
    const FpRoundMode mode = FpRoundMode::mask(24);
    const double a = 1e12;
    const double b = 1e12 * (1.0 + 1e-12);
    ASSERT_NE(a, b);
    EXPECT_EQ(roundDouble(a, mode), roundDouble(b, mode));
}

TEST(FpRound, SignedZeroNormalizes)
{
    const FpRoundMode floor_mode = FpRoundMode::paperDefault();
    EXPECT_FALSE(std::signbit(roundDouble(-0.0, floor_mode)));
    const FpRoundMode mask_mode = FpRoundMode::mask(20);
    EXPECT_FALSE(std::signbit(roundDouble(-0.0, mask_mode)));
}

TEST(FpRound, NonFiniteUntouchedByFloor)
{
    const FpRoundMode mode = FpRoundMode::paperDefault();
    EXPECT_TRUE(std::isnan(roundDouble(std::nan(""), mode)));
    EXPECT_TRUE(std::isinf(roundDouble(INFINITY, mode)));
}

TEST(FpRound, BitsRoundTripFloat)
{
    const FpRoundMode mode = FpRoundMode::paperDefault();
    const float value = 5.4321f;
    std::uint32_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    const std::uint64_t rounded_bits = roundFpBits(raw, 4, mode);
    float rounded;
    const auto low = static_cast<std::uint32_t>(rounded_bits);
    std::memcpy(&rounded, &low, sizeof(rounded));
    EXPECT_FLOAT_EQ(rounded, roundFloat(value, mode));
}

TEST(FpRound, BitsRoundTripDouble)
{
    const FpRoundMode mode = FpRoundMode::floorDigits(2);
    const double value = 9.8765;
    std::uint64_t raw;
    std::memcpy(&raw, &value, sizeof(raw));
    const std::uint64_t rounded_bits = roundFpBits(raw, 8, mode);
    double rounded;
    std::memcpy(&rounded, &rounded_bits, sizeof(rounded));
    EXPECT_DOUBLE_EQ(rounded, roundDouble(value, mode));
    EXPECT_DOUBLE_EQ(rounded, 9.87);
}

class FpRoundDigitsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FpRoundDigitsTest, FlooringIsIdempotent)
{
    const FpRoundMode mode = FpRoundMode::floorDigits(GetParam());
    for (double v : {0.0, 1.5, -2.25, 123.456789, -0.0009, 7e6}) {
        const double once = roundDouble(v, mode);
        EXPECT_EQ(roundDouble(once, mode), once) << "v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Digits, FpRoundDigitsTest,
                         ::testing::Values(0, 1, 2, 3, 4, 6));

} // namespace
} // namespace icheck::hashing
