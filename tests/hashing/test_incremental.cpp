/**
 * @file
 * The central incremental-hashing property (Section 2.2): a hash
 * maintained store-by-store equals the hash recomputed from scratch, for
 * any sequence of writes, any widths, any interleaving of "threads", and
 * with FP rounding applied.
 */

#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <vector>

#include "hashing/location_hash.hpp"
#include "hashing/state_hash.hpp"
#include "support/rng.hpp"

namespace icheck::hashing
{
namespace
{

/** Reference model: a byte map hashed from scratch. */
class ReferenceState
{
  public:
    explicit ReferenceState(const StateHasher &hasher) : hasher(hasher) {}

    void
    store(Addr addr, std::uint64_t bits, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i)
            bytes[addr + i] = static_cast<std::uint8_t>(bits >> (8 * i));
    }

    std::uint64_t
    load(Addr addr, unsigned width) const
    {
        std::uint64_t bits = 0;
        for (unsigned i = 0; i < width; ++i) {
            auto it = bytes.find(addr + i);
            const std::uint8_t b = it == bytes.end() ? 0 : it->second;
            bits |= static_cast<std::uint64_t>(b) << (8 * i);
        }
        return bits;
    }

    /** Hash of the full state from scratch (integers only). */
    ModHash
    fromScratch() const
    {
        ModHash sum;
        for (const auto &[addr, byte] : bytes)
            sum += hasher.hasher().hashByte(addr, byte);
        return sum;
    }

  private:
    const StateHasher &hasher;
    std::map<Addr, std::uint8_t> bytes;
};

class IncrementalTest : public ::testing::TestWithParam<HasherKind>
{
  protected:
    void SetUp() override { loc = makeLocationHasher(GetParam()); }

    std::unique_ptr<LocationHasher> loc;
};

TEST_P(IncrementalTest, RandomStoreSequenceMatchesFromScratch)
{
    const StateHasher hasher(*loc, FpRoundMode::none());
    ReferenceState ref(hasher);
    Xoshiro256 rng(42);
    ModHash incremental;

    for (int i = 0; i < 5000; ++i) {
        const Addr addr = 0x1000 + rng.below(512);
        const unsigned width = 1u << rng.below(4); // 1, 2, 4, or 8
        const std::uint64_t value = rng.next();
        const std::uint64_t old_bits = ref.load(addr, width);
        incremental += hasher.storeDelta(addr, old_bits, value, width,
                                         ValueClass::Integer);
        ref.store(addr, value, width);
        if (i % 500 == 0) {
            EXPECT_EQ(incremental, ref.fromScratch()) << "at step " << i;
        }
    }
    EXPECT_EQ(incremental, ref.fromScratch());
}

TEST_P(IncrementalTest, OverlappingWidthsStayConsistent)
{
    // An 8-byte store partially overwritten by 1/2/4-byte stores must
    // telescope exactly, which is what per-byte granularity buys.
    const StateHasher hasher(*loc, FpRoundMode::none());
    ReferenceState ref(hasher);
    ModHash incremental;
    auto do_store = [&](Addr addr, std::uint64_t v, unsigned w) {
        incremental += hasher.storeDelta(addr, ref.load(addr, w), v, w,
                                         ValueClass::Integer);
        ref.store(addr, v, w);
    };
    do_store(0x100, 0x1122334455667788ULL, 8);
    do_store(0x102, 0xaabb, 2);
    do_store(0x104, 0xddccbbaa, 4);
    do_store(0x107, 0xff, 1);
    EXPECT_EQ(incremental, ref.fromScratch());
}

TEST_P(IncrementalTest, InterleavingInvariance)
{
    // The Figure 2 property: two "threads" apply their own stores in
    // different global orders; the summed hash is identical as long as
    // per-location final values match.
    const StateHasher hasher(*loc, FpRoundMode::none());

    auto run = [&](bool thread0_first) {
        ReferenceState ref(hasher);
        ModHash th0, th1;
        auto store = [&](ModHash &th, Addr addr, std::uint64_t v) {
            th += hasher.storeDelta(addr, ref.load(addr, 8), v, 8,
                                    ValueClass::Integer);
            ref.store(addr, v, 8);
        };
        const Addr g = 0x2000;
        if (thread0_first) {
            store(th0, g, 2 + 7); // G = 2 + L0
            store(th1, g, 9 + 3); // G += L1
        } else {
            store(th1, g, 2 + 3); // G = 2 + L1
            store(th0, g, 5 + 7); // G += L0
        }
        return std::pair{th0 + th1, std::pair{th0, th1}};
    };

    // Pre-populate both runs' initial G == 2 identically by folding it
    // into the delta: both runs start from the same implicit state.
    const auto [sh_a, ths_a] = run(true);
    const auto [sh_b, ths_b] = run(false);
    EXPECT_EQ(sh_a, sh_b) << "State Hash must ignore internal "
                             "nondeterminism";
    EXPECT_NE(ths_a, ths_b) << "per-thread hashes are expected to differ "
                               "across interleavings";
}

TEST_P(IncrementalTest, FpRoundingMakesNoisyStoresAgree)
{
    const StateHasher rounded(*loc, FpRoundMode::paperDefault());
    const double a = (0.1 + 0.2) + 0.3;
    const double b = 0.1 + (0.2 + 0.3);
    ASSERT_NE(a, b);
    const Addr addr = 0x3000;
    const auto bits_a = std::bit_cast<std::uint64_t>(a);
    const auto bits_b = std::bit_cast<std::uint64_t>(b);
    EXPECT_EQ(rounded.valueHash(addr, bits_a, 8, ValueClass::Double),
              rounded.valueHash(addr, bits_b, 8, ValueClass::Double));

    const StateHasher bitwise(*loc, FpRoundMode::none());
    EXPECT_NE(bitwise.valueHash(addr, bits_a, 8, ValueClass::Double),
              bitwise.valueHash(addr, bits_b, 8, ValueClass::Double));
}

TEST_P(IncrementalTest, FpRoundingTelescopes)
{
    // Rounding both Data_old and Data_new (Fig 3a routes both through the
    // round-off unit) keeps consecutive FP stores cancellable.
    const StateHasher hasher(*loc, FpRoundMode::paperDefault());
    const Addr addr = 0x4000;
    ModHash th;
    double cur = 0.0;
    Xoshiro256 rng(5);
    for (int i = 0; i < 200; ++i) {
        const double next = rng.uniform() * 100.0 - 50.0;
        th += hasher.storeDelta(addr, std::bit_cast<std::uint64_t>(cur),
                                std::bit_cast<std::uint64_t>(next), 8,
                                ValueClass::Double);
        cur = next;
    }
    // The accumulated hash must equal the direct hash of the final value.
    EXPECT_EQ(th, hasher.valueHash(addr,
                                   std::bit_cast<std::uint64_t>(cur), 8,
                                   ValueClass::Double));
}

TEST_P(IncrementalTest, DeletionRemovesALocation)
{
    // Section 2.2: SH oplus h(G, initial) ominus h(G, current) deletes G.
    const StateHasher hasher(*loc, FpRoundMode::none());
    const Addr g = 0x5000;
    const Addr other = 0x6000;
    ModHash sh;
    sh += hasher.storeDelta(g, 2, 12, 8, ValueClass::Integer);
    sh += hasher.storeDelta(other, 0, 99, 8, ValueClass::Integer);
    // Delete G: add back initial (2), remove current (12).
    ModHash deleted = sh + hasher.valueHash(g, 2, 8, ValueClass::Integer)
                        - hasher.valueHash(g, 12, 8, ValueClass::Integer);
    // What remains is exactly the other location's contribution.
    ModHash expected = hasher.storeDelta(other, 0, 99, 8,
                                         ValueClass::Integer);
    EXPECT_EQ(deleted, expected);
}

INSTANTIATE_TEST_SUITE_P(AllHashers, IncrementalTest,
                         ::testing::Values(HasherKind::Crc64,
                                           HasherKind::Mix64),
                         [](const auto &info) {
                             return info.param == HasherKind::Crc64
                                        ? "Crc64"
                                        : "Mix64";
                         });

} // namespace
} // namespace icheck::hashing
