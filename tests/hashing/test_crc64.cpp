/**
 * @file
 * CRC-64/ECMA-182 correctness.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "hashing/crc64.hpp"

namespace icheck::hashing
{
namespace
{

TEST(Crc64, EmptyInputIsSeed)
{
    EXPECT_EQ(Crc64::compute(nullptr, 0), 0u);
    EXPECT_EQ(Crc64::compute(nullptr, 0, 0xdeadbeef), 0xdeadbeefu);
}

TEST(Crc64, KnownVector)
{
    // CRC-64/ECMA-182 of "123456789" (init 0, no reflection, no xorout).
    const char *msg = "123456789";
    EXPECT_EQ(Crc64::compute(msg, std::strlen(msg)),
              0x6C40DF5F0B497347ULL);
}

TEST(Crc64, FeedMatchesCompute)
{
    const char *msg = "incremental hashing";
    std::uint64_t crc = 0;
    for (const char *p = msg; *p; ++p)
        crc = Crc64::feed(crc, static_cast<std::uint8_t>(*p));
    EXPECT_EQ(crc, Crc64::compute(msg, std::strlen(msg)));
}

TEST(Crc64, SeedContinuesStream)
{
    const char *msg = "split into two parts";
    const std::size_t cut = 7;
    const std::uint64_t first = Crc64::compute(msg, cut);
    const std::uint64_t full =
        Crc64::compute(msg + cut, std::strlen(msg) - cut, first);
    EXPECT_EQ(full, Crc64::compute(msg, std::strlen(msg)));
}

TEST(Crc64, SensitiveToEveryByte)
{
    std::uint8_t data[16] = {};
    const std::uint64_t base = Crc64::compute(data, sizeof(data));
    for (std::size_t i = 0; i < sizeof(data); ++i) {
        std::uint8_t copy[16] = {};
        copy[i] = 1;
        EXPECT_NE(Crc64::compute(copy, sizeof(copy)), base)
            << "byte " << i;
    }
}

} // namespace
} // namespace icheck::hashing
