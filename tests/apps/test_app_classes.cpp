/**
 * @file
 * The Table 1 classification, as tests: every workload must land in its
 * paper-assigned determinism class under the characterization pipeline
 * (bit-by-bit -> FP rounding -> structure isolation).
 */

#include <gtest/gtest.h>
#include <memory>

#include "apps/apps.hpp"
#include "apps/characterize.hpp"

namespace icheck::apps
{
namespace
{

CharacterizeConfig
testConfig()
{
    CharacterizeConfig cfg;
    cfg.runs = 10; // lighter than the paper's 30, still discriminating
    return cfg;
}

class AppClass : public ::testing::TestWithParam<std::string>
{
  protected:
    Table1Row
    row() const
    {
        return characterizeApp(findApp(GetParam()), testConfig());
    }
};

class BitDetApp : public AppClass
{
};

TEST_P(BitDetApp, DeterministicAsIs)
{
    const Table1Row r = row();
    EXPECT_TRUE(r.detAsIs) << "first ndet run " << r.firstNdetRun;
    EXPECT_TRUE(r.detAfterFp) << "rounding must not break determinism";
    EXPECT_TRUE(r.detAtEnd);
    EXPECT_EQ(r.ndetPoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table1, BitDetApp,
                         ::testing::Values("blackscholes", "fft", "lu",
                                           "radix", "swaptions",
                                           "volrend"),
                         [](const auto &info) { return info.param; });

class FpDetApp : public AppClass
{
};

TEST_P(FpDetApp, NdetBitwiseDetRounded)
{
    const Table1Row r = row();
    EXPECT_FALSE(r.detAsIs)
        << "FP reassociation noise must show bit-by-bit";
    EXPECT_GT(r.firstNdetRun, 0);
    EXPECT_LE(r.firstNdetRun, 5) << "detected within a few runs (7.2.2)";
    EXPECT_TRUE(r.detAfterFp);
    EXPECT_TRUE(r.detAtEnd);
    EXPECT_EQ(r.ndetPoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table1, FpDetApp,
                         ::testing::Values("fluidanimate", "ocean",
                                           "waterNS", "waterSP"),
                         [](const auto &info) { return info.param; });

class SmallStructApp : public AppClass
{
};

TEST_P(SmallStructApp, DetOnlyAfterIsolation)
{
    const Table1Row r = row();
    EXPECT_FALSE(r.detAsIs);
    EXPECT_FALSE(r.detAfterFp)
        << "rounding alone must not be enough for this class";
    ASSERT_TRUE(r.detAfterIgnores.has_value());
    EXPECT_TRUE(*r.detAfterIgnores)
        << "isolating the declared structures must restore determinism";
    EXPECT_TRUE(r.detAtEnd);
}

INSTANTIATE_TEST_SUITE_P(Table1, SmallStructApp,
                         ::testing::Values("cholesky", "pbzip2",
                                           "sphinx3"),
                         [](const auto &info) { return info.param; });

class NdetApp : public AppClass
{
};

TEST_P(NdetApp, NondeterministicThroughout)
{
    const Table1Row r = row();
    EXPECT_FALSE(r.detAsIs);
    EXPECT_FALSE(r.detAfterFp);
    EXPECT_GT(r.firstNdetRun, 0);
    EXPECT_LE(r.firstNdetRun, 4);
    EXPECT_FALSE(r.detAtEnd);
    EXPECT_GT(r.ndetPoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table1, NdetApp,
                         ::testing::Values("barnes", "canneal",
                                           "radiosity"),
                         [](const auto &info) { return info.param; });

TEST(Streamcluster, BugNdetAtBarriersMaskedAtEndForMediumInput)
{
    // The paper's real PARSEC bug: with the medium input, internal
    // barriers are nondeterministic but the program end is clean.
    const Table1Row r = characterizeApp(findApp("streamcluster"),
                                        testConfig());
    EXPECT_FALSE(r.bitwise.deterministic());
    EXPECT_GT(r.bitwise.ndetPoints, 0u);
    EXPECT_TRUE(r.bitwise.detAtEnd)
        << "the corruption must be masked before the program end";
    EXPECT_TRUE(r.bitwise.outputDeterministic);
    // Checking only at the end would therefore miss the bug entirely.
    EXPECT_GT(r.bitwise.detPoints, r.bitwise.ndetPoints)
        << "most barriers stay deterministic";
}

TEST(Streamcluster, BugReachesOutputForSmallInput)
{
    check::DriverConfig cfg;
    cfg.runs = 10;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = false;
    check::DeterminismDriver driver(cfg);
    const auto report = driver.check([] {
        return std::make_unique<Streamcluster>(8, /*medium_input=*/false,
                                               /*with_bug=*/true);
    });
    EXPECT_FALSE(report.deterministic());
    EXPECT_FALSE(report.detAtEnd);
    EXPECT_FALSE(report.outputDeterministic)
        << "for small inputs the corruption reaches the output "
           "(Section 7.2.1, footnote)";
}

TEST(Streamcluster, FixedVersionIsBitDeterministic)
{
    check::DriverConfig cfg;
    cfg.runs = 10;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = false;
    check::DeterminismDriver driver(cfg);
    const auto report = driver.check([] {
        return std::make_unique<Streamcluster>(8, /*medium_input=*/true,
                                               /*with_bug=*/false);
    });
    EXPECT_TRUE(report.deterministic());
    EXPECT_EQ(report.ndetPoints, 0u);
}

} // namespace
} // namespace icheck::apps
