/**
 * @file
 * Input scales (simdev/simmedium/simlarge analogue): every workload runs
 * at every scale, work grows with scale, and determinism classes are
 * scale-stable — with the one deliberate exception the paper documents:
 * the streamcluster bug reaches the output only on the small input.
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "apps/scales.hpp"
#include "sim/machine.hpp"

namespace icheck::apps
{
namespace
{

sim::RunResult
runOnce(const check::ProgramFactory &factory, std::uint64_t seed)
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.schedSeed = seed;
    sim::Machine machine(cfg);
    machine.setInstrumentation(true);
    auto program = factory();
    return machine.run(*program);
}

class ScaledApps : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScaledApps, AllScalesRunAndGrow)
{
    const auto dev = runOnce(scaledFactory(GetParam(), InputScale::Dev),
                             11);
    const auto medium = runOnce(
        scaledFactory(GetParam(), InputScale::Medium), 11);
    const auto large = runOnce(
        scaledFactory(GetParam(), InputScale::Large), 11);
    EXPECT_LT(dev.nativeInstrs, medium.nativeInstrs);
    EXPECT_LT(medium.nativeInstrs, large.nativeInstrs);
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const AppInfo &app : registry())
        names.push_back(app.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, ScaledApps,
                         ::testing::ValuesIn(appNames()),
                         [](const auto &info) { return info.param; });

TEST(Scales, MediumMatchesRegistryInstructionCounts)
{
    for (const char *name : {"fft", "ocean", "canneal"}) {
        const AppInfo &app = findApp(name);
        const auto registry_run = runOnce(app.factory, 21);
        const auto scaled_run =
            runOnce(scaledFactory(name, InputScale::Medium), 21);
        EXPECT_EQ(registry_run.nativeInstrs, scaled_run.nativeInstrs)
            << name;
    }
}

TEST(Scales, ClassesStableAcrossScales)
{
    auto deterministic = [](const check::ProgramFactory &factory,
                            bool fp_rounding) {
        check::DriverConfig cfg;
        cfg.runs = 6;
        cfg.machine.numCores = 8;
        cfg.machine.fpRoundingEnabled = fp_rounding;
        check::DeterminismDriver driver(cfg);
        return driver.check(factory).deterministic();
    };
    for (InputScale scale :
         {InputScale::Dev, InputScale::Medium, InputScale::Large}) {
        EXPECT_TRUE(deterministic(scaledFactory("radix", scale), false))
            << scaleName(scale);
        EXPECT_TRUE(deterministic(scaledFactory("ocean", scale), true))
            << scaleName(scale);
        EXPECT_FALSE(
            deterministic(scaledFactory("canneal", scale), true))
            << scaleName(scale);
    }
}

TEST(Scales, StreamclusterBugOutcomeDependsOnScale)
{
    check::DriverConfig cfg;
    cfg.runs = 10;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = false;
    check::DeterminismDriver driver(cfg);

    const auto dev =
        driver.check(scaledFactory("streamcluster", InputScale::Dev));
    EXPECT_FALSE(dev.outputDeterministic)
        << "simdev: the bug propagates to the output (Section 7.2.1)";

    const auto medium = driver.check(
        scaledFactory("streamcluster", InputScale::Medium));
    EXPECT_TRUE(medium.outputDeterministic);
    EXPECT_TRUE(medium.detAtEnd) << "simmedium: masked at the end";
    EXPECT_GT(medium.ndetPoints, 0u)
        << "but still visible at internal barriers";
}

TEST(Scales, NamesRender)
{
    EXPECT_EQ(scaleName(InputScale::Dev), "simdev");
    EXPECT_EQ(scaleName(InputScale::Medium), "simmedium");
    EXPECT_EQ(scaleName(InputScale::Large), "simlarge");
}

TEST(Scales, UnknownAppPanics)
{
    EXPECT_DEATH(scaledFactory("nope", InputScale::Dev), "unknown app");
}

} // namespace
} // namespace icheck::apps
