/**
 * @file
 * Table 2: the seeded bugs (semantic, atomicity violation, order
 * violation) turn formerly deterministic applications nondeterministic,
 * are detected within a few runs, and localize between barriers.
 */

#include <gtest/gtest.h>
#include <memory>

#include "apps/apps.hpp"
#include "check/driver.hpp"

namespace icheck::apps
{
namespace
{

check::DriverConfig
driverConfig(bool fp_rounding)
{
    check::DriverConfig cfg;
    cfg.runs = 15;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = fp_rounding;
    return cfg;
}

struct SeedCase
{
    std::string label;
    BugSeed seed;
    check::ProgramFactory clean;
    check::ProgramFactory buggy;
};

SeedCase
caseFor(const std::string &label)
{
    if (label == "waterNS_semantic") {
        return {label, BugSeed::Semantic,
                [] { return std::make_unique<WaterNS>(8); },
                [] {
                    return std::make_unique<WaterNS>(
                        8, 48, 5, BugSeed::Semantic);
                }};
    }
    if (label == "waterSP_atomicity") {
        return {label, BugSeed::AtomicityViolation,
                [] { return std::make_unique<WaterSP>(8); },
                [] {
                    return std::make_unique<WaterSP>(
                        8, 48, 4, BugSeed::AtomicityViolation);
                }};
    }
    return {label, BugSeed::OrderViolation,
            [] { return std::make_unique<Radix>(8); },
            [] {
                return std::make_unique<Radix>(8, 512,
                                               BugSeed::OrderViolation);
            }};
}

class SeededBug : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SeededBug, CleanVersionIsDeterministic)
{
    const SeedCase c = caseFor(GetParam());
    check::DeterminismDriver driver(driverConfig(true));
    const auto report = driver.check(c.clean);
    EXPECT_TRUE(report.deterministic())
        << "the baseline must be deterministic for Table 2 to mean "
           "anything";
}

TEST_P(SeededBug, BugCreatesDetectableNondeterminism)
{
    const SeedCase c = caseFor(GetParam());
    check::DeterminismDriver driver(driverConfig(true));
    const auto report = driver.check(c.buggy);
    EXPECT_FALSE(report.deterministic());
    EXPECT_GT(report.firstNdetRun, 0);
    EXPECT_LE(report.firstNdetRun, 10)
        << "Table 2 reports detection within the first few runs";
    // The bug does not crash: every run completed and produced the same
    // number of checkpoints.
    EXPECT_TRUE(report.checkpointCountsMatch);
    // Localization signal: some checkpoints stay deterministic, so the
    // programmer gets a bounded region (Section 2.3).
    EXPECT_GT(report.detPoints + report.ndetPoints, 0u);
    EXPECT_GT(report.ndetPoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table2, SeededBug,
                         ::testing::Values("waterNS_semantic",
                                           "waterSP_atomicity",
                                           "radix_order"),
                         [](const auto &info) { return info.param; });

TEST(SeededBug, RoundingDoesNotMaskSeededBugs)
{
    // The bugs' effects exceed the FP rounding grain by construction —
    // Table 1's "Impact of FP rounding" column shows NDet -> NDet for
    // buggy behaviour, unlike benign FP noise.
    check::DeterminismDriver driver(driverConfig(true));
    const auto semantic = driver.check([] {
        return std::make_unique<WaterNS>(8, 48, 5, BugSeed::Semantic);
    });
    EXPECT_FALSE(semantic.deterministic());
}

TEST(SeededBug, OnlyThreadThreeIsAffected)
{
    // With fewer threads than the buggy thread id the seed never fires:
    // the program stays deterministic (sanity check on the seeding).
    check::DriverConfig cfg = driverConfig(true);
    check::DeterminismDriver driver(cfg);
    const auto report = driver.check([] {
        return std::make_unique<WaterNS>(3, 48, 5, BugSeed::Semantic);
    });
    EXPECT_TRUE(report.deterministic());
}

} // namespace
} // namespace icheck::apps
