/**
 * @file
 * Thread-count robustness: the workloads keep their Table 1 determinism
 * class at different thread counts (the paper fixes 8 threads; a credible
 * implementation must not bake that in), and checking works with more
 * threads than cores (TH virtualization under load).
 */

#include <gtest/gtest.h>
#include <memory>

#include "apps/apps.hpp"
#include "check/driver.hpp"

namespace icheck::apps
{
namespace
{

check::DriverConfig
config(CoreId cores, bool fp_rounding)
{
    check::DriverConfig cfg;
    cfg.runs = 8;
    cfg.machine.numCores = cores;
    cfg.machine.fpRoundingEnabled = fp_rounding;
    return cfg;
}

class ThreadSweep : public ::testing::TestWithParam<ThreadId>
{
};

TEST_P(ThreadSweep, FftStaysBitDeterministic)
{
    const ThreadId threads = GetParam();
    check::DeterminismDriver driver(config(8, false));
    const auto report = driver.check(
        [threads] { return std::make_unique<Fft>(threads); });
    EXPECT_TRUE(report.deterministic()) << threads << " threads";
}

TEST_P(ThreadSweep, OceanStaysFpRoundingClass)
{
    const ThreadId threads = GetParam();
    if (threads >= 3) {
        // With only two accumulating threads the global sum has two
        // terms, and FP addition is commutative — reorderings may be
        // bitwise identical. Three or more terms reassociate.
        check::DeterminismDriver bitwise(config(8, false));
        EXPECT_FALSE(
            bitwise
                .check([threads] {
                    return std::make_unique<Ocean>(threads);
                })
                .deterministic())
            << threads << " threads";
    }
    check::DeterminismDriver rounded(config(8, true));
    EXPECT_TRUE(
        rounded
            .check([threads] {
                return std::make_unique<Ocean>(threads);
            })
            .deterministic())
        << threads << " threads";
}

TEST_P(ThreadSweep, CannealStaysNondeterministic)
{
    const ThreadId threads = GetParam();
    if (threads < 2)
        GTEST_SKIP() << "nondeterminism needs concurrency";
    check::DeterminismDriver driver(config(8, true));
    EXPECT_FALSE(
        driver
            .check([threads] {
                return std::make_unique<Canneal>(threads);
            })
            .deterministic())
        << threads << " threads";
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(2, 4, 6, 8, 12),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

TEST(Oversubscription, MoreThreadsThanCoresStillChecksCorrectly)
{
    // 12 threads on 2 cores with heavy migration: TH save/restore under
    // constant context switching must not perturb any verdict.
    check::DriverConfig cfg = config(2, false);
    cfg.machine.migrateProb = 0.4;
    check::DeterminismDriver driver(cfg);
    EXPECT_TRUE(driver
                    .check([] { return std::make_unique<Radix>(12); })
                    .deterministic());
    EXPECT_FALSE(
        driver
            .check([] { return std::make_unique<Canneal>(12); })
            .deterministic());
}

TEST(Oversubscription, CrossSchemeEqualityHoldsOversubscribed)
{
    auto trace = [](check::Scheme scheme) {
        sim::MachineConfig mc;
        mc.numCores = 3;
        mc.schedSeed = 7;
        mc.migrateProb = 0.3;
        sim::Machine machine(mc);
        auto checker = check::makeChecker(scheme);
        checker->attach(machine);
        machine.setRunStartHandler([&] { checker->onRunStart(); });
        std::vector<HashWord> hashes;
        machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
            hashes.push_back(checker->checkpointHash().raw());
        });
        Fluidanimate app(10);
        machine.run(app);
        return hashes;
    };
    const auto hw = trace(check::Scheme::HwInc);
    EXPECT_EQ(hw, trace(check::Scheme::SwInc));
    EXPECT_EQ(hw, trace(check::Scheme::SwTr));
}

} // namespace
} // namespace icheck::apps
