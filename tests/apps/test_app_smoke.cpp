/**
 * @file
 * Smoke tests: every registered workload runs to completion under several
 * schedules, produces checkpoints, and is reproducible given a seed.
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hpp"
#include "sim/machine.hpp"

namespace icheck::apps
{
namespace
{

class AppSmoke : public ::testing::TestWithParam<std::string>
{
  protected:
    const AppInfo &app() const { return findApp(GetParam()); }
};

TEST_P(AppSmoke, RunsToCompletion)
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.schedSeed = 12345;
    sim::Machine machine(cfg);
    machine.setInstrumentation(true);
    auto program = app().factory();
    const sim::RunResult result = machine.run(*program);
    EXPECT_GT(result.nativeInstrs, 100u);
    EXPECT_GE(result.checkpoints, 1u);
}

TEST_P(AppSmoke, ReproducibleGivenSeed)
{
    auto run = [&](std::uint64_t seed) {
        sim::MachineConfig cfg;
        cfg.numCores = 8;
        cfg.schedSeed = seed;
        sim::Machine machine(cfg);
        auto program = app().factory();
        const sim::RunResult result = machine.run(*program);
        hashing::ModHash sum;
        for (ThreadId t = 0; t < machine.numThreads(); ++t)
            sum += hashing::ModHash(machine.threadHash(t));
        return std::pair{result.nativeInstrs, sum};
    };
    EXPECT_EQ(run(777), run(777));
}

TEST_P(AppSmoke, SurvivesManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        sim::MachineConfig cfg;
        cfg.numCores = 8;
        cfg.schedSeed = seed;
        sim::Machine machine(cfg);
        machine.setInstrumentation(true);
        auto program = app().factory();
        EXPECT_NO_THROW(machine.run(*program)) << "seed " << seed;
    }
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const AppInfo &app : registry())
        names.push_back(app.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppSmoke,
                         ::testing::ValuesIn(appNames()),
                         [](const auto &info) { return info.param; });

TEST(Registry, HasAll17Apps)
{
    EXPECT_EQ(registry().size(), 17u);
}

TEST(Registry, ClassCountsMatchTable1)
{
    int bit = 0, fp = 0, small = 0, ndet = 0;
    for (const AppInfo &app : registry()) {
        switch (app.expected) {
          case DetClass::BitByBit:    ++bit;  break;
          case DetClass::FpRounding:  ++fp;   break;
          case DetClass::SmallStruct: ++small; break;
          case DetClass::NonDet:      ++ndet; break;
        }
    }
    EXPECT_EQ(bit, 7);
    EXPECT_EQ(fp, 4);
    EXPECT_EQ(small, 3);
    EXPECT_EQ(ndet, 3);
}

TEST(Registry, FindAppPanicsOnUnknown)
{
    EXPECT_DEATH(findApp("nonesuch"), "unknown app");
}

} // namespace
} // namespace icheck::apps
