/**
 * @file
 * Functional correctness of the workloads: determinism checking is only
 * meaningful if the mini-apps compute real results. radix must sort,
 * pbzip2's output must decompress back to its input, lu must factorize
 * (A == L*U), fft must conserve energy (Parseval), blackscholes prices
 * must be sane.
 */

#include <gtest/gtest.h>
#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "apps/apps.hpp"
#include "sim/machine.hpp"

namespace icheck::apps
{
namespace
{

/** Run @p program, capturing the post-setup memory image. */
struct RunCapture
{
    sim::Machine machine;
    mem::SparseMemory initial;

    explicit RunCapture(std::uint64_t seed,
                        const sim::MachineConfig &base = {})
        : machine([&] {
              sim::MachineConfig cfg = base;
              cfg.numCores = 8;
              cfg.schedSeed = seed;
              return cfg;
          }())
    {
        machine.setRunStartHandler(
            [this] { initial = machine.memory().clone(); });
    }
};

TEST(Functional, RadixSortsItsKeys)
{
    RunCapture capture(5);
    Radix app(8, 512);
    capture.machine.run(app);

    const Addr src = capture.machine.staticSegment().addressOf("src");
    std::multiset<std::uint32_t> input, output;
    std::vector<std::uint32_t> final_keys;
    for (std::uint32_t i = 0; i < 512; ++i) {
        input.insert(static_cast<std::uint32_t>(
            capture.initial.readValue(src + 4 * i, 4)));
        const auto v = static_cast<std::uint32_t>(
            capture.machine.memory().readValue(src + 4 * i, 4));
        output.insert(v);
        final_keys.push_back(v);
    }
    EXPECT_EQ(output, input) << "sorting must permute, not alter";
    EXPECT_TRUE(std::is_sorted(final_keys.begin(), final_keys.end()));
}

TEST(Functional, Pbzip2OutputDecompressesToItsInput)
{
    RunCapture capture(7);
    Pbzip2 app(8, 12, 96);
    capture.machine.run(app);

    const Addr input = capture.machine.staticSegment().addressOf(
        "input");
    std::vector<std::uint8_t> original(12 * 96);
    capture.initial.readBytes(input, original.data(), original.size());

    // Decode the (count, byte) RLE stream the writer emitted.
    std::vector<std::uint8_t> decoded;
    const auto &stream = capture.machine.output();
    ASSERT_EQ(stream.size() % 2, 0u);
    for (std::size_t i = 0; i < stream.size(); i += 2) {
        for (std::uint8_t r = 0; r < stream[i]; ++r)
            decoded.push_back(stream[i + 1]);
    }
    EXPECT_EQ(decoded, original);
    EXPECT_LT(stream.size(), original.size())
        << "the run-heavy input must actually compress";
}

TEST(Functional, LuFactorizationReconstructsTheMatrix)
{
    constexpr std::uint32_t dim = 16;
    RunCapture capture(9);
    Lu app(8, dim, 8);
    capture.machine.run(app);

    const Addr matrix =
        capture.machine.staticSegment().addressOf("matrix");
    auto initial_at = [&](std::uint32_t r, std::uint32_t c) {
        return std::bit_cast<double>(
            capture.initial.readValue(matrix + 8 * (r * dim + c), 8));
    };
    auto final_at = [&](std::uint32_t r, std::uint32_t c) {
        return std::bit_cast<double>(
            capture.machine.memory().readValue(
                matrix + 8 * (r * dim + c), 8));
    };
    // The in-place result stores L below the diagonal (unit diagonal)
    // and U on/above it; verify A == L*U.
    for (std::uint32_t r = 0; r < dim; ++r) {
        for (std::uint32_t c = 0; c < dim; ++c) {
            double acc = 0;
            const std::uint32_t k_max = std::min(r, c);
            for (std::uint32_t k = 0; k <= k_max; ++k) {
                const double l = k == r ? 1.0 : final_at(r, k);
                const double u = final_at(k, c);
                acc += l * u;
            }
            EXPECT_NEAR(acc, initial_at(r, c), 1e-8)
                << "A[" << r << "][" << c << "]";
        }
    }
}

TEST(Functional, FftConservesEnergy)
{
    constexpr std::uint32_t n = 256;
    RunCapture capture(11);
    Fft app(8, 8);
    capture.machine.run(app);

    const Addr re = capture.machine.staticSegment().addressOf("re");
    const Addr im = capture.machine.staticSegment().addressOf("im");
    double energy_in = 0, energy_out = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const double r0 = std::bit_cast<double>(
            capture.initial.readValue(re + 8 * i, 8));
        const double i0 = std::bit_cast<double>(
            capture.initial.readValue(im + 8 * i, 8));
        const double r1 = std::bit_cast<double>(
            capture.machine.memory().readValue(re + 8 * i, 8));
        const double i1 = std::bit_cast<double>(
            capture.machine.memory().readValue(im + 8 * i, 8));
        energy_in += r0 * r0 + i0 * i0;
        energy_out += r1 * r1 + i1 * i1;
    }
    // Parseval: the transform scales total energy by exactly n.
    EXPECT_NEAR(energy_out, n * energy_in, 1e-6 * energy_out)
        << "the butterflies must implement a genuine DFT";
}

TEST(Functional, BlackscholesPricesAreSane)
{
    RunCapture capture(13);
    Blackscholes app(8);
    capture.machine.run(app);
    const auto &statics = capture.machine.staticSegment();
    const Addr spot = statics.addressOf("spot");
    const Addr prices = statics.addressOf("prices");
    for (std::uint32_t i = 0; i < 96; ++i) {
        const double s = std::bit_cast<double>(
            capture.machine.memory().readValue(spot + 8 * i, 8));
        const double p = std::bit_cast<double>(
            capture.machine.memory().readValue(prices + 8 * i, 8));
        EXPECT_GT(p, -s) << "option " << i;
        EXPECT_LT(p, 2 * s) << "option " << i;
    }
}

TEST(Functional, VolrendImageMatchesReferenceFormula)
{
    constexpr std::uint32_t pixels = 256;
    constexpr std::uint32_t frames = 5;
    RunCapture capture(15);
    Volrend app(8, frames, pixels);
    capture.machine.run(app);
    const auto &statics = capture.machine.staticSegment();
    const Addr image = statics.addressOf("image");
    const Addr volume = statics.addressOf("volume");
    for (std::uint32_t i = 0; i < pixels; i += 37) {
        const auto a = static_cast<std::int32_t>(
            capture.machine.memory().readValue(volume + 4 * (2 * i), 4));
        const auto b = static_cast<std::int32_t>(
            capture.machine.memory().readValue(volume + 4 * (2 * i + 1),
                                               4));
        const auto px = static_cast<std::int32_t>(
            capture.machine.memory().readValue(image + 4 * i, 4));
        EXPECT_EQ(px,
                  (a * 3 + b + static_cast<std::int32_t>(frames - 1)) /
                      2)
            << "pixel " << i;
    }
}

} // namespace
} // namespace icheck::apps
