/**
 * @file
 * DeterminismDriver campaigns: classification of deterministic, racy,
 * FP-noisy, and ignorable-structure programs — the Section 7 pipeline in
 * miniature.
 */

#include <gtest/gtest.h>
#include <memory>

#include "check/driver.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::check
{
namespace
{

using sim::LambdaProgram;

DriverConfig
baseConfig(Scheme scheme, bool fp_rounding)
{
    DriverConfig cfg;
    cfg.scheme = scheme;
    cfg.runs = 12;
    cfg.machine.numCores = 4;
    cfg.machine.minQuantum = 2;
    cfg.machine.maxQuantum = 10;
    cfg.machine.fpRoundingEnabled = fp_rounding;
    return cfg;
}

/** Figure 1: G += L under a lock — externally deterministic. */
ProgramFactory
figure1Factory()
{
    return [] {
        auto ids = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "fig1", 2,
            [ids](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *ids = ctx.mutex();
            },
            [ids](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                ctx.lock(*ids);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
                ctx.unlock(*ids);
            });
    };
}

/** A racy last-writer-wins program — externally nondeterministic. */
ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racy", 4,
            [](sim::SetupCtx &ctx) { ctx.global("w", mem::tInt64()); },
            [](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 10; ++i)
                    ctx.store<std::int64_t>(ctx.global("w"),
                                            ctx.tid() * 100 + i);
            });
    };
}

/** FP accumulation in schedule order: noisy bitwise, clean rounded. */
ProgramFactory
fpNoiseFactory()
{
    return [] {
        auto ids = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "fpnoise", 4,
            [ids](sim::SetupCtx &ctx) {
                const Addr acc = ctx.global("acc", mem::tDouble());
                // Offset keeps the final sum mid-cell of the 0.001
                // rounding grid, away from floor boundaries.
                ctx.init<double>(acc, 0.0005);
                *ids = ctx.mutex();
            },
            [ids](sim::ThreadCtx &ctx) {
                const Addr acc = ctx.global("acc");
                for (int i = 0; i < 6; ++i) {
                    const double term =
                        0.1 * (ctx.tid() + 1) + 1e-13 * (i + 1);
                    ctx.lock(*ids);
                    ctx.store<double>(acc,
                                      ctx.load<double>(acc) + term);
                    ctx.unlock(*ids);
                }
            });
    };
}

/** Deterministic result + a nondeterministic side structure. */
ProgramFactory
sideStructFactory()
{
    return [] {
        auto ids = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "sidestruct", 4,
            [ids](sim::SetupCtx &ctx) {
                ctx.global("result", mem::tInt64());
                ctx.global("last_writer", mem::tInt64());
                *ids = ctx.mutex();
            },
            [ids](sim::ThreadCtx &ctx) {
                ctx.lock(*ids);
                const auto r =
                    ctx.load<std::int64_t>(ctx.global("result"));
                ctx.store<std::int64_t>(ctx.global("result"), r + 10);
                // Schedule-dependent scratch: who got here last.
                ctx.store<std::int64_t>(ctx.global("last_writer"),
                                        ctx.tid());
                ctx.unlock(*ids);
            });
    };
}

TEST(Driver, Figure1IsExternallyDeterministic)
{
    DeterminismDriver driver(baseConfig(Scheme::HwInc, false));
    const DriverReport report = driver.check(figure1Factory());
    EXPECT_TRUE(report.deterministic()) << "first ndet run "
                                        << report.firstNdetRun;
    EXPECT_TRUE(report.detAtEnd);
    EXPECT_EQ(report.ndetPoints, 0u);
    EXPECT_EQ(report.app, "fig1");
}

TEST(Driver, RacyProgramDetectedQuickly)
{
    DeterminismDriver driver(baseConfig(Scheme::HwInc, false));
    const DriverReport report = driver.check(racyFactory());
    EXPECT_FALSE(report.deterministic());
    EXPECT_GT(report.firstNdetRun, 0);
    EXPECT_LE(report.firstNdetRun, 5)
        << "nondeterminism should surface within a few runs (7.2.2)";
    EXPECT_FALSE(report.detAtEnd);
    EXPECT_GT(report.ndetPoints, 0u);
}

TEST(Driver, FpNoiseNdetBitwiseDetRounded)
{
    DeterminismDriver bitwise(baseConfig(Scheme::HwInc, false));
    const DriverReport noisy = bitwise.check(fpNoiseFactory());
    EXPECT_FALSE(noisy.deterministic())
        << "reassociation noise must show bit-by-bit";

    DeterminismDriver rounded(baseConfig(Scheme::HwInc, true));
    const DriverReport clean = rounded.check(fpNoiseFactory());
    EXPECT_TRUE(clean.deterministic())
        << "FP rounding must absorb the noise";
}

TEST(Driver, IgnoringSideStructureRestoresDeterminism)
{
    DriverConfig cfg = baseConfig(Scheme::HwInc, false);
    DeterminismDriver plain(cfg);
    const DriverReport with_struct = plain.check(sideStructFactory());
    EXPECT_FALSE(with_struct.deterministic());

    cfg.ignores.globals.push_back("last_writer");
    DeterminismDriver ignoring(cfg);
    const DriverReport without = ignoring.check(sideStructFactory());
    EXPECT_TRUE(without.deterministic());
    EXPECT_TRUE(without.detAtEnd);
}

TEST(Driver, SchemesAgreeOnVerdicts)
{
    for (Scheme scheme : {Scheme::HwInc, Scheme::SwInc, Scheme::SwTr}) {
        DeterminismDriver driver(baseConfig(scheme, false));
        EXPECT_TRUE(driver.check(figure1Factory()).deterministic())
            << schemeName(scheme);
        EXPECT_FALSE(driver.check(racyFactory()).deterministic())
            << schemeName(scheme);
    }
}

TEST(Driver, OverheadOrdering)
{
    // HW < SW-Inc; both measured on the same deterministic workload.
    DeterminismDriver hw(baseConfig(Scheme::HwInc, false));
    DeterminismDriver sw(baseConfig(Scheme::SwInc, false));
    const double hw_factor =
        hw.check(figure1Factory()).overheadFactor();
    const double sw_factor =
        sw.check(figure1Factory()).overheadFactor();
    EXPECT_LT(hw_factor, sw_factor);
    EXPECT_GE(hw_factor, 1.0);
}

TEST(Driver, NativeRunHasNoOverhead)
{
    DeterminismDriver driver(baseConfig(Scheme::HwInc, false));
    const sim::RunResult native = driver.runNative(figure1Factory(), 1);
    EXPECT_EQ(native.overheadInstrs, 0u);
    EXPECT_GT(native.nativeInstrs, 0u);
}

TEST(Driver, RequiresAtLeastTwoRuns)
{
    DriverConfig cfg = baseConfig(Scheme::HwInc, false);
    cfg.runs = 1;
    DeterminismDriver driver(cfg);
    EXPECT_DEATH(driver.check(figure1Factory()), "at least two runs");
}

} // namespace
} // namespace icheck::check
