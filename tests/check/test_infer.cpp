/**
 * @file
 * Automatic inference of nondeterministic structures: the tool must
 * propose exactly the isolations the paper's authors identified by hand
 * for the small-struct applications, propose nothing for clean or
 * FP-noise-only programs (under rounding), and the proposed spec must
 * actually restore determinism.
 */

#include <gtest/gtest.h>
#include <algorithm>
#include <memory>

#include "apps/app_registry.hpp"
#include "check/infer.hpp"

namespace icheck::check
{
namespace
{

sim::MachineConfig
machineConfig(bool fp_rounding)
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.fpRoundingEnabled = fp_rounding;
    return cfg;
}

bool
specDeterminizes(const ProgramFactory &factory, const IgnoreSpec &spec)
{
    DriverConfig cfg;
    cfg.runs = 8;
    cfg.machine = machineConfig(true);
    cfg.ignores = spec;
    DeterminismDriver driver(cfg);
    return driver.check(factory).deterministic();
}

TEST(Infer, CleanProgramYieldsEmptySpec)
{
    const auto &app = apps::findApp("radix");
    const InferenceResult result =
        inferIgnores(app.factory, machineConfig(true), 6);
    EXPECT_TRUE(result.empty());
    EXPECT_TRUE(result.evidence.empty());
}

TEST(Infer, FpNoiseFilteredUnderRounding)
{
    // ocean's final state differs bitwise across schedules only in FP
    // reassociation noise: inference under rounding must propose nothing,
    // while bitwise inference flags the FP data.
    const auto &app = apps::findApp("ocean");
    const InferenceResult rounded =
        inferIgnores(app.factory, machineConfig(true), 6);
    EXPECT_TRUE(rounded.empty())
        << "rounding-aware inference must filter reassociation noise";

    const InferenceResult bitwise =
        inferIgnores(app.factory, machineConfig(false), 6);
    EXPECT_FALSE(bitwise.empty())
        << "bitwise inference should see the noisy FP locations";
}

class InferSmallStruct : public ::testing::TestWithParam<std::string>
{
};

TEST_P(InferSmallStruct, ProposesASpecThatRestoresDeterminism)
{
    const auto &app = apps::findApp(GetParam());
    const InferenceResult result =
        inferIgnores(app.factory, machineConfig(true), 8);
    ASSERT_FALSE(result.empty())
        << "small-struct apps must show real nondeterminism";
    EXPECT_TRUE(specDeterminizes(app.factory, result.spec))
        << "the inferred isolation must work end-to-end";
}

INSTANTIATE_TEST_SUITE_P(Apps, InferSmallStruct,
                         ::testing::Values("cholesky", "pbzip2",
                                           "sphinx3"),
                         [](const auto &info) { return info.param; });

TEST(Infer, CholeskyEvidenceNamesTheFreeList)
{
    const auto &app = apps::findApp("cholesky");
    const InferenceResult result =
        inferIgnores(app.factory, machineConfig(true), 8);
    const bool saw_nodes =
        std::any_of(result.spec.sites.begin(), result.spec.sites.end(),
                    [](const std::string &site) {
                        return site == "cholesky.cpp:task_node";
                    });
    const bool saw_head = std::any_of(
        result.spec.globals.begin(), result.spec.globals.end(),
        [](const std::string &name) {
            return name == "free_task_head";
        });
    EXPECT_TRUE(saw_nodes) << "the freeTask nodes must be proposed";
    EXPECT_TRUE(saw_head) << "the list head must be proposed";
}

TEST(Infer, Sphinx3EvidenceNamesTheScratch)
{
    const auto &app = apps::findApp("sphinx3");
    const InferenceResult result =
        inferIgnores(app.factory, machineConfig(true), 8);
    EXPECT_TRUE(std::any_of(
        result.spec.sites.begin(), result.spec.sites.end(),
        [](const std::string &site) {
            return site == "sphinx3.cpp:scratch";
        }));
    // The deterministic score tables must NOT be implicated.
    for (const DiffSite &site : result.evidence) {
        EXPECT_NE(site.owner, "global:scores") << "false positive";
        EXPECT_NE(site.owner, "global:features") << "false positive";
    }
}

TEST(Infer, NeedsAtLeastTwoRuns)
{
    const auto &app = apps::findApp("radix");
    EXPECT_DEATH(inferIgnores(app.factory, machineConfig(true), 1),
                 "at least two runs");
}

} // namespace
} // namespace icheck::check
