/**
 * @file
 * Ignore-spec resolution against allocator and static-segment state.
 */

#include <gtest/gtest.h>

#include "check/ignore.hpp"

namespace icheck::check
{
namespace
{

TEST(IgnoreSpec, EmptyResolvesToNothing)
{
    mem::ReplayLog log;
    mem::DeterministicAllocator alloc(
        log, mem::DeterministicAllocator::Mode::Record);
    mem::StaticSegment statics;
    EXPECT_TRUE(resolveIgnores({}, alloc, statics).empty());
}

TEST(IgnoreSpec, SiteCoversAllLiveBlocks)
{
    mem::ReplayLog log;
    mem::DeterministicAllocator alloc(
        log, mem::DeterministicAllocator::Mode::Record);
    mem::StaticSegment statics;
    const mem::TypeRef node = mem::tStruct({mem::tInt64(),
                                            mem::tPointer()});
    const Addr a = alloc.allocate("free_task", node);
    const Addr b = alloc.allocate("free_task", node);
    alloc.allocate("other", node);
    IgnoreSpec spec;
    spec.sites.push_back("free_task");
    const auto ranges = resolveIgnores(spec, alloc, statics);
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].addr, a);
    EXPECT_EQ(ranges[1].addr, b);
    EXPECT_EQ(ranges[0].len, node->size());
    EXPECT_EQ(ranges[0].type, node);
}

TEST(IgnoreSpec, FreedBlocksNotResolved)
{
    mem::ReplayLog log;
    mem::DeterministicAllocator alloc(
        log, mem::DeterministicAllocator::Mode::Record);
    mem::StaticSegment statics;
    const Addr a = alloc.allocate("s", mem::tInt64());
    alloc.free(a);
    IgnoreSpec spec;
    spec.sites.push_back("s");
    EXPECT_TRUE(resolveIgnores(spec, alloc, statics).empty())
        << "freed blocks are scrubbed, not ignored";
}

TEST(IgnoreSpec, FieldSlicesEveryBlockOfSite)
{
    mem::ReplayLog log;
    mem::DeterministicAllocator alloc(
        log, mem::DeterministicAllocator::Mode::Record);
    mem::StaticSegment statics;
    const mem::TypeRef task = mem::tStruct({mem::tInt64(), mem::tPointer(),
                                            mem::tInt64()});
    const Addr a = alloc.allocate("task", task);
    const Addr b = alloc.allocate("task", task);
    IgnoreSpec spec;
    spec.fields.push_back({"task", 8, 8}); // the pointer field
    const auto ranges = resolveIgnores(spec, alloc, statics);
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].addr, a + 8);
    EXPECT_EQ(ranges[0].len, 8u);
    EXPECT_EQ(ranges[0].type, nullptr) << "field slices hash raw";
    EXPECT_EQ(ranges[1].addr, b + 8);
}

TEST(IgnoreSpec, GlobalsResolveWholeVariable)
{
    mem::ReplayLog log;
    mem::DeterministicAllocator alloc(
        log, mem::DeterministicAllocator::Mode::Record);
    mem::StaticSegment statics;
    statics.reserve("keep", mem::tInt64());
    const Addr g = statics.reserve("scratch", mem::tArray(mem::tDouble(),
                                                          4));
    IgnoreSpec spec;
    spec.globals.push_back("scratch");
    const auto ranges = resolveIgnores(spec, alloc, statics);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].addr, g);
    EXPECT_EQ(ranges[0].len, 32u);
}

TEST(IgnoreSpec, FieldOutsideBlockPanics)
{
    mem::ReplayLog log;
    mem::DeterministicAllocator alloc(
        log, mem::DeterministicAllocator::Mode::Record);
    mem::StaticSegment statics;
    alloc.allocate("small", mem::tInt32());
    IgnoreSpec spec;
    spec.fields.push_back({"small", 2, 8});
    EXPECT_DEATH(resolveIgnores(spec, alloc, statics),
                 "ignore field outside block");
}

} // namespace
} // namespace icheck::check
