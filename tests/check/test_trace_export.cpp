/**
 * @file
 * Chrome trace export (`icheck check --trace`): the emitted JSON must be
 * structurally valid trace-event format — Perfetto/chrome://tracing
 * accept exactly this shape — and divergence markers must appear for
 * nondeterministic campaigns.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "check/driver.hpp"
#include "check/trace_export.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/lambda_program.hpp"
#include "sim/transport.hpp"

namespace icheck::check
{
namespace
{

using sim::LambdaProgram;

DriverConfig
baseConfig()
{
    DriverConfig cfg;
    cfg.scheme = Scheme::HwInc;
    cfg.runs = 6;
    cfg.machine.numCores = 2;
    cfg.machine.minQuantum = 2;
    cfg.machine.maxQuantum = 10;
    return cfg;
}

ProgramFactory
lockedCounterFactory()
{
    return [] {
        auto ids = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "locked", 2,
            [ids](sim::SetupCtx &ctx) {
                ctx.global("G", mem::tInt64());
                *ids = ctx.mutex();
            },
            [ids](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 4; ++i) {
                    ctx.lock(*ids);
                    const auto g =
                        ctx.load<std::int64_t>(ctx.global("G"));
                    ctx.store<std::int64_t>(ctx.global("G"), g + 1);
                    ctx.unlock(*ids);
                }
                ctx.outputValue<std::int64_t>(7);
            });
    };
}

/** Racy final state: campaigns on this are nondeterministic. */
ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racy", 4,
            [](sim::SetupCtx &ctx) { ctx.global("w", mem::tInt64()); },
            [](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 10; ++i)
                    ctx.store<std::int64_t>(ctx.global("w"),
                                            ctx.tid() * 100 + i);
                ctx.outputValue<std::int64_t>(
                    ctx.load<std::int64_t>(ctx.global("w")));
            });
    };
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

class TraceExportTest : public ::testing::Test
{
  protected:
    std::string
    tracePath() const
    {
        return testing::TempDir() + "trace_export_test.json";
    }

    void TearDown() override { std::remove(tracePath().c_str()); }
};

TEST_F(TraceExportTest, EmitsStructurallyValidTraceEvents)
{
    const DriverConfig cfg = baseConfig();
    const ProgramFactory factory = lockedCounterFactory();
    const DriverReport report =
        DeterminismDriver(cfg).check(factory);
    const TraceExportResult result =
        exportCampaignTrace(cfg, factory, report, tracePath());
    EXPECT_EQ(result.runsTraced, 2);
    EXPECT_EQ(result.divergences, 0);

    const std::string text = slurp(tracePath());
    ASSERT_FALSE(text.empty());
    // Trace-event container shape.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    // Only the phases the exporter is specified to produce: complete
    // slices (X), instants (I), and metadata (M).
    EXPECT_GT(countOccurrences(text, "\"ph\":\"X\""), 0u);
    EXPECT_GT(countOccurrences(text, "\"ph\":\"M\""), 0u);
    const std::size_t named = countOccurrences(text, "\"ph\":\"X\"") +
                              countOccurrences(text, "\"ph\":\"I\"") +
                              countOccurrences(text, "\"ph\":\"M\"");
    EXPECT_EQ(countOccurrences(text, "\"ph\":"), named);
    // Both traced runs appear as named processes; lock holds and
    // checkpoints are present.
    EXPECT_EQ(countOccurrences(text, "process_name"), 2u);
    EXPECT_NE(text.find("lock "), std::string::npos);
    EXPECT_NE(text.find("checkpoint "), std::string::npos);
    // Every X event needs a duration to render.
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"X\""),
              countOccurrences(text, "\"dur\":"));
    EXPECT_EQ(text.find("HASH DIVERGENCE"), std::string::npos);
}

TEST_F(TraceExportTest, MarksHashDivergencesForNondeterministicRuns)
{
    const DriverConfig cfg = baseConfig();
    const ProgramFactory factory = racyFactory();
    const DriverReport report =
        DeterminismDriver(cfg).check(factory);
    ASSERT_FALSE(report.deterministic());
    const TraceExportResult result =
        exportCampaignTrace(cfg, factory, report, tracePath());
    EXPECT_EQ(result.runsTraced, 2);
    EXPECT_GT(result.divergences, 0);

    const std::string text = slurp(tracePath());
    // One marker per diverging checkpoint in EACH traced run.
    EXPECT_EQ(countOccurrences(text, "HASH DIVERGENCE"),
              2u * static_cast<std::size_t>(result.divergences));
}

TEST_F(TraceExportTest, BuilderTickClockIsTransportIndependent)
{
    // The trace builder's tick clock counts events, not wall time: the
    // same schedule must produce byte-identical event streams whether
    // the builder observes synchronously or through the transport.
    const ProgramFactory factory = lockedCounterFactory();
    std::string rendered[2];
    for (int mode = 0; mode < 2; ++mode) {
        sim::MachineConfig mcfg;
        mcfg.numCores = 2;
        mcfg.schedSeed = 17;
        sim::ChromeTraceBuilder builder("run");
        sim::EventTransport transport;
        sim::Machine machine(mcfg);
        if (mode == 1) {
            transport.addListener(&builder);
            machine.setTransport(&transport);
        } else {
            machine.addListener(&builder);
        }
        auto prog = factory();
        machine.run(*prog);
        machine.setTransport(nullptr);
        const sim::ChromeTraceBuilder *builders[] = {&builder};
        rendered[mode] = sim::renderChromeTrace(
            std::vector<const sim::ChromeTraceBuilder *>(
                builders, builders + 1));
    }
    EXPECT_EQ(rendered[0], rendered[1]);
}

} // namespace
} // namespace icheck::check
