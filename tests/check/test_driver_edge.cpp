/**
 * @file
 * Determinism-driver edge cases: checkpoint-count mismatches (a program
 * whose *number* of checkpoints is schedule-dependent), output-stream
 * verdicts, and the output hasher.
 */

#include <gtest/gtest.h>
#include <memory>

#include "check/driver.hpp"
#include "check/io_hash.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::check
{
namespace
{

using sim::LambdaProgram;

DriverConfig
config()
{
    DriverConfig cfg;
    cfg.runs = 12;
    cfg.machine.numCores = 4;
    cfg.machine.minQuantum = 1;
    cfg.machine.maxQuantum = 6;
    return cfg;
}

TEST(DriverEdge, CheckpointCountMismatchIsNondeterminism)
{
    // Thread 0 emits a manual checkpoint per unit of a racy counter: the
    // checkpoint *count* itself becomes schedule-dependent. The driver
    // must flag this rather than silently truncating.
    DeterminismDriver driver(config());
    const DriverReport report = driver.check([] {
        return std::make_unique<LambdaProgram>(
            "varying-cps", 3,
            [](sim::SetupCtx &ctx) { ctx.global("n", mem::tInt64()); },
            [](sim::ThreadCtx &ctx) {
                const Addr n = ctx.global("n");
                if (ctx.tid() == 0) {
                    // Read a racy progress indicator and checkpoint that
                    // many times (1..3).
                    ctx.tick(50);
                    auto count = ctx.load<std::int64_t>(n);
                    count = std::clamp<std::int64_t>(count, 0, 2);
                    for (std::int64_t i = 0; i <= count; ++i)
                        ctx.checkpoint();
                } else {
                    const auto v = ctx.load<std::int64_t>(n);
                    ctx.store<std::int64_t>(n, v + 1);
                }
            });
    });
    EXPECT_FALSE(report.deterministic());
    EXPECT_FALSE(report.checkpointCountsMatch);
}

TEST(DriverEdge, OutputNondeterminismAloneFailsTheVerdict)
{
    // State converges (threads only write their own slots and restore
    // them), but the *output order* interleaves.
    DeterminismDriver driver(config());
    const DriverReport report = driver.check([] {
        return std::make_unique<LambdaProgram>(
            "racy-output", 3, nullptr,
            [](sim::ThreadCtx &ctx) {
                for (int i = 0; i < 4; ++i) {
                    ctx.outputValue<std::uint32_t>(ctx.tid() * 100 + i);
                    ctx.tick(20);
                }
            });
    });
    EXPECT_FALSE(report.outputDeterministic);
    EXPECT_FALSE(report.deterministic());
    EXPECT_EQ(report.ndetPoints, 0u)
        << "memory state itself never diverged";
}

TEST(DriverEdge, OverheadFactorDefinition)
{
    DriverReport report;
    report.avgNativeInstrs = 1000;
    report.avgOverheadInstrs = 30;
    EXPECT_DOUBLE_EQ(report.overheadFactor(), 1.03);
    report.avgNativeInstrs = 0;
    EXPECT_DOUBLE_EQ(report.overheadFactor(), 1.0);
}

TEST(OutputHasher, OrderSensitiveStreamHash)
{
    OutputHasher a, b;
    const std::uint8_t x[] = {1, 2, 3};
    const std::uint8_t y[] = {4, 5};
    a.onOutput(0, x, 3);
    a.onOutput(1, y, 2);
    b.onOutput(0, y, 2);
    b.onOutput(1, x, 3);
    EXPECT_NE(a.value(), b.value())
        << "interleaved outputs must hash differently (Section 4.3)";
    EXPECT_EQ(a.bytes(), 5u);
    EXPECT_EQ(b.bytes(), 5u);
}

TEST(OutputHasher, ChunkingIrrelevant)
{
    OutputHasher whole, split;
    const std::uint8_t data[] = {9, 8, 7, 6, 5};
    whole.onOutput(0, data, 5);
    split.onOutput(0, data, 2);
    split.onOutput(1, data + 2, 3);
    EXPECT_EQ(whole.value(), split.value())
        << "the stream hash covers bytes, not write() boundaries";
}

} // namespace
} // namespace icheck::check
