#include "apps/apps.hpp"
/**
 * @file
 * The Section 2.3 bug-localization tool: diff two runs' full states at a
 * nondeterministic checkpoint and attribute the differing bytes to their
 * allocation site / global variable.
 */

#include <gtest/gtest.h>
#include <memory>

#include "check/localize.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::check
{
namespace
{

using sim::LambdaProgram;

/** Racy writes into one heap block and one global; rest deterministic. */
ProgramFactory
factory()
{
    return [] {
        auto block = std::make_shared<Addr>(0);
        return std::make_unique<LambdaProgram>(
            "localizee", 4,
            [block](sim::SetupCtx &ctx) {
                ctx.global("stable", mem::tInt64());
                ctx.global("racy_global", mem::tInt64());
                *block = ctx.alloc("app.cpp:racy_block",
                                   mem::tArray(mem::tInt64(), 8));
            },
            [block](sim::ThreadCtx &ctx) {
                // Deterministic per-thread write.
                ctx.store<std::int64_t>(ctx.global("stable") /*8B*/,
                                        42);
                // Racy last-writer-wins into the block and a global.
                for (int i = 0; i < 6; ++i) {
                    ctx.store<std::int64_t>(*block + 8 * (i % 8),
                                            ctx.tid() + 1);
                    ctx.store<std::int64_t>(ctx.global("racy_global"),
                                            ctx.tid() + 1);
                }
            });
    };
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 4;
    return cfg;
}

TEST(Localize, AttributesDiffsToSitesAndGlobals)
{
    // Find two seeds whose final states differ, then localize.
    LocalizeReport report;
    bool found = false;
    for (std::uint64_t seed_b = 2; seed_b <= 10 && !found; ++seed_b) {
        report = localizeNondeterminism(factory(), machineConfig(),
                                        /*seed_a=*/1, seed_b,
                                        /*checkpoint_index=*/0);
        found = report.totalDiffBytes > 0;
    }
    ASSERT_TRUE(found) << "racy program must diverge for some seed pair";

    bool saw_block = false, saw_global = false, saw_stable = false;
    for (const DiffSite &site : report.sites) {
        if (site.owner == "site:app.cpp:racy_block") {
            saw_block = true;
            EXPECT_EQ(site.type, "i64[8]");
            EXPECT_LT(site.offsetHi, 64u);
        }
        if (site.owner == "global:racy_global")
            saw_global = true;
        if (site.owner == "global:stable")
            saw_stable = true;
    }
    EXPECT_TRUE(saw_block || saw_global)
        << "differences must be attributed to the racy structures";
    EXPECT_FALSE(saw_stable)
        << "deterministic data must not appear in the diff";
}

TEST(Localize, IdenticalSeedsProduceEmptyDiff)
{
    const LocalizeReport report = localizeNondeterminism(
        factory(), machineConfig(), 5, 5, 0);
    EXPECT_EQ(report.totalDiffBytes, 0u);
    EXPECT_TRUE(report.sites.empty());
}

TEST(Localize, UnreachedCheckpointPanics)
{
    EXPECT_DEATH(localizeNondeterminism(factory(), machineConfig(), 1, 2,
                                        /*checkpoint_index=*/999),
                 "not reached");
}

} // namespace
} // namespace icheck::check

namespace icheck::check
{
namespace
{

TEST(Localize, AttributesCholeskyFreeListNondeterminism)
{
    // The paper's cholesky case end-to-end: the diff at the first barrier
    // checkpoint must implicate the freeTask nodes / free-list head / FP
    // tally, never the matrix columns (which are deterministic given the
    // task set completes before the barrier).
    const ProgramFactory factory = [] {
        return std::make_unique<apps::Cholesky>(8);
    };
    sim::MachineConfig mc;
    mc.numCores = 8;
    LocalizeReport report;
    bool diverged = false;
    for (std::uint64_t seed_b = 2; seed_b <= 8 && !diverged; ++seed_b) {
        report = localizeNondeterminism(factory, mc, 1, seed_b,
                                        /*checkpoint_index=*/0);
        diverged = report.totalDiffBytes > 0;
    }
    ASSERT_TRUE(diverged);
    bool saw_expected = false;
    for (const DiffSite &site : report.sites) {
        if (site.owner == "site:cholesky.cpp:task_node" ||
            site.owner == "global:free_task_head" ||
            site.owner == "global:tally") {
            saw_expected = true;
        }
        EXPECT_NE(site.owner, "global:matrix")
            << "the factorization result must not be implicated";
    }
    EXPECT_TRUE(saw_expected);
}

} // namespace
} // namespace icheck::check
