/**
 * @file
 * The three InstantCheck schemes agree: on the same run, HW-Inc, SW-Inc,
 * and SW-Tr compute bit-identical State Hashes — including FP rounding,
 * allocation/free churn, and ignore deletion.
 */

#include <gtest/gtest.h>
#include <memory>

#include "check/checker.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::check
{
namespace
{

using sim::LambdaProgram;
using sim::Machine;
using sim::MachineConfig;

/** A workload exercising ints, FP, malloc/free, locks, and barriers. */
std::unique_ptr<LambdaProgram>
busyProgram()
{
    struct Ids
    {
        sim::MutexId mutex = 0;
        sim::BarrierId barrier = 0;
    };
    auto ids = std::make_shared<Ids>();
    return std::make_unique<LambdaProgram>(
        "busy", 4,
        [ids](sim::SetupCtx &ctx) {
            ctx.global("sum", mem::tDouble());
            ctx.global("hist", mem::tArray(mem::tInt64(), 16));
            ids->mutex = ctx.mutex();
            ids->barrier = ctx.barrier(4);
        },
        [ids](sim::ThreadCtx &ctx) {
            const Addr sum = ctx.global("sum");
            const Addr hist = ctx.global("hist");
            const Addr scratch =
                ctx.malloc("busy.cpp:scratch",
                           mem::tArray(mem::tDouble(), 8));
            for (int round = 0; round < 3; ++round) {
                for (int i = 0; i < 8; ++i) {
                    ctx.store<double>(scratch + 8 * i,
                                      0.1 * (i + 1) * (ctx.tid() + 1));
                }
                double local = 0;
                for (int i = 0; i < 8; ++i)
                    local += ctx.load<double>(scratch + 8 * i);
                ctx.lock(ids->mutex);
                ctx.store<double>(sum, ctx.load<double>(sum) + local);
                ctx.unlock(ids->mutex);
                const Addr slot = hist + 8 * ((ctx.tid() + round) % 16);
                ctx.store<std::int64_t>(
                    slot, ctx.load<std::int64_t>(slot) + 1);
                ctx.barrier(ids->barrier);
            }
            ctx.free(scratch);
        });
}

/** One run of @p scheme at @p seed; returns the checkpoint hash trace. */
std::vector<HashWord>
runScheme(Scheme scheme, std::uint64_t seed, bool fp_rounding,
          const IgnoreSpec &ignores = {})
{
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.schedSeed = seed;
    cfg.minQuantum = 2;
    cfg.maxQuantum = 9;
    cfg.fpRoundingEnabled = fp_rounding;
    Machine machine(cfg);
    auto checker = makeChecker(scheme, ignores);
    checker->attach(machine);
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    std::vector<HashWord> trace;
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
        trace.push_back(checker->checkpointHash().raw());
    });
    auto prog = busyProgram();
    machine.run(*prog);
    return trace;
}

class CrossScheme : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CrossScheme, AllThreeSchemesAgreeBitwise)
{
    const std::uint64_t seed = GetParam();
    const auto hw = runScheme(Scheme::HwInc, seed, false);
    const auto sw = runScheme(Scheme::SwInc, seed, false);
    const auto tr = runScheme(Scheme::SwTr, seed, false);
    ASSERT_FALSE(hw.empty());
    EXPECT_EQ(hw, sw);
    EXPECT_EQ(hw, tr);
}

TEST_P(CrossScheme, AllThreeSchemesAgreeWithFpRounding)
{
    const std::uint64_t seed = GetParam();
    const auto hw = runScheme(Scheme::HwInc, seed, true);
    const auto sw = runScheme(Scheme::SwInc, seed, true);
    const auto tr = runScheme(Scheme::SwTr, seed, true);
    EXPECT_EQ(hw, sw);
    EXPECT_EQ(hw, tr);
}

TEST_P(CrossScheme, AllThreeSchemesAgreeWithIgnores)
{
    const std::uint64_t seed = GetParam();
    IgnoreSpec ignores;
    ignores.sites.push_back("busy.cpp:scratch");
    ignores.globals.push_back("hist");
    const auto hw = runScheme(Scheme::HwInc, seed, true, ignores);
    const auto sw = runScheme(Scheme::SwInc, seed, true, ignores);
    const auto tr = runScheme(Scheme::SwTr, seed, true, ignores);
    EXPECT_EQ(hw, sw);
    EXPECT_EQ(hw, tr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossScheme,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(Checkers, SwIncCountsHashingCost)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.schedSeed = 3;
    Machine machine(cfg);
    auto checker = makeChecker(Scheme::SwInc);
    checker->attach(machine);
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    LambdaProgram prog(
        "cost", 1,
        [](sim::SetupCtx &ctx) { ctx.global("x", mem::tInt64()); },
        [](sim::ThreadCtx &ctx) {
            for (int i = 0; i < 100; ++i)
                ctx.store<std::int64_t>(ctx.global("x"), i);
        });
    machine.run(prog);
    // 100 stores * 8 bytes * 2 (old+new) * 5 instr/byte = 8000 minimum.
    EXPECT_GE(checker->overheadInstrs(), 8000u);
}

TEST(Checkers, HwIncOverheadIsOrdersOfMagnitudeSmaller)
{
    auto measure = [](Scheme scheme) {
        MachineConfig cfg;
        cfg.numCores = 2;
        cfg.schedSeed = 3;
        Machine machine(cfg);
        auto checker = makeChecker(scheme);
        checker->attach(machine);
        machine.setRunStartHandler([&] { checker->onRunStart(); });
        std::uint64_t checkpoint_hashes = 0;
        machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
            checker->checkpointHash();
            ++checkpoint_hashes;
        });
        LambdaProgram prog(
            "cost", 1,
            [](sim::SetupCtx &ctx) {
                ctx.global("arr", mem::tArray(mem::tInt64(), 64));
            },
            [](sim::ThreadCtx &ctx) {
                const Addr arr = ctx.global("arr");
                for (int i = 0; i < 1000; ++i)
                    ctx.store<std::int64_t>(arr + 8 * (i % 64), i);
            });
        const auto result = machine.run(prog);
        return std::pair{result.overheadInstrs +
                             checker->overheadInstrs(),
                         result.nativeInstrs};
    };
    const auto [hw_over, native] = measure(Scheme::HwInc);
    const auto [sw_over, native2] = measure(Scheme::SwInc);
    EXPECT_EQ(native, native2) << "schedule must be scheme-independent";
    EXPECT_LT(hw_over * 100, sw_over)
        << "HW overhead must be orders of magnitude below SW";
}

TEST(Checkers, SchemeNamesArePrintable)
{
    EXPECT_EQ(schemeName(Scheme::HwInc), "HW-InstantCheck-Inc");
    EXPECT_EQ(schemeName(Scheme::SwInc), "SW-InstantCheck-Inc");
    EXPECT_EQ(schemeName(Scheme::SwTr), "SW-InstantCheck-Tr");
}

} // namespace
} // namespace icheck::check

namespace icheck::check
{
namespace
{

TEST(Checkers, NonIdealCostModelsExceedIdeal)
{
    auto overhead = [](Scheme scheme, bool ideal) {
        sim::MachineConfig cfg;
        cfg.numCores = 4;
        cfg.schedSeed = 9;
        sim::Machine machine(cfg);
        auto checker = makeChecker(scheme, {}, ideal);
        checker->attach(machine);
        machine.setRunStartHandler([&] { checker->onRunStart(); });
        machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
            checker->checkpointHash();
        });
        sim::LambdaProgram prog(
            "cost", 2, nullptr,
            [](sim::ThreadCtx &ctx) {
                const Addr block = ctx.malloc(
                    "cost.cpp:b", mem::tArray(mem::tInt64(), 16));
                for (int i = 0; i < 64; ++i)
                    ctx.store<std::int64_t>(block + 8 * (i % 16), i);
                ctx.free(block);
            });
        machine.run(prog);
        return checker->overheadInstrs();
    };
    EXPECT_GT(overhead(Scheme::SwInc, false),
              overhead(Scheme::SwInc, true));
    EXPECT_GT(overhead(Scheme::SwTr, false),
              overhead(Scheme::SwTr, true));
}

} // namespace
} // namespace icheck::check
