/**
 * @file
 * Distribution analysis for figures 5 and 8.
 */

#include <gtest/gtest.h>

#include "check/distribution.hpp"

namespace icheck::check
{
namespace
{

TEST(Distribution, AllSameIsDeterministic)
{
    const Distribution dist = distributionOf({7, 7, 7, 7});
    EXPECT_TRUE(dist.deterministic());
    EXPECT_EQ(dist.render(), "4");
}

TEST(Distribution, CountsSortedDescending)
{
    // 16 runs of state A, 11 of B, 3 of C — the paper's D_5 example.
    std::vector<HashWord> hashes;
    hashes.insert(hashes.end(), 16, 0xa);
    hashes.insert(hashes.end(), 11, 0xb);
    hashes.insert(hashes.end(), 3, 0xc);
    const Distribution dist = distributionOf(hashes);
    EXPECT_FALSE(dist.deterministic());
    EXPECT_EQ(dist.render(), "16-11-3");
}

TEST(Distribution, EmptyIsDeterministic)
{
    EXPECT_TRUE(distributionOf({}).deterministic());
}

TEST(Distribution, InsertionOrderIrrelevant)
{
    const Distribution a = distributionOf({1, 2, 1, 3, 1, 2});
    const Distribution b = distributionOf({3, 1, 2, 1, 2, 1});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.render(), "3-2-1");
}

TEST(Distribution, GroupingCountsCheckpointsPerShape)
{
    const Distribution det = distributionOf({9, 9, 9});
    const Distribution split = distributionOf({1, 1, 2});
    const auto groups = groupDistributions({det, split, det, det, split});
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups.at(det), 3u);
    EXPECT_EQ(groups.at(split), 2u);
}

} // namespace
} // namespace icheck::check
