/**
 * @file
 * L-rule fixtures: inconsistent guards (L1), lock-order inversions
 * (L2), and guarded-address escapes (L3) — each with a positive, a
 * negative, and a suppressed case, plus the simulated-machine idiom.
 */

#include <gtest/gtest.h>

#include "lint_test_util.hpp"

namespace icheck::lint
{
namespace
{

using testutil::countRule;
using testutil::firstLineOf;
using testutil::lintSnippet;
using testutil::lintSnippets;

/* ---------------------------------- L1 --------------------------- */

TEST(RuleL1, FiresOnWriteMissingTheUsualGuard)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
    void addRacy(long n)
    {
        value = value + 3 * n;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L1), 1);
    EXPECT_EQ(firstLineOf(findings, Rule::L1), 19);
}

TEST(RuleL1, QuietWhenEveryWriteHoldsTheGuard)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L1), 0);
}

TEST(RuleL1, QuietOnConstructorInitialization)
{
    // Publication-before-sharing: ctor writes carry no guard and must
    // not poison the vote.
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value;
    Counter()
    {
        value = 0;
    }
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L1), 0);
}

TEST(RuleL1, QuietOnAtomicsAndLocals)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <atomic>
#include <mutex>
struct Counter
{
    std::mutex mu;
    std::atomic<long> hits{0};
    void addA()
    {
        std::lock_guard<std::mutex> guard(mu);
        hits = hits + 1;
    }
    void addB()
    {
        std::lock_guard<std::mutex> guard(mu);
        hits = hits + 1;
    }
    void addRacy()
    {
        long scratch = 0;
        scratch = scratch + 1;
        hits = hits + 1;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L1), 0);
}

TEST(RuleL1, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
    void addRacy(long n)
    {
        // icheck-lint: allow(L1): single-threaded setup phase
        value = value + 3 * n;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L1), 0);
    EXPECT_EQ(countRule(findings, Rule::H4), 0);
}

TEST(RuleL1, FiresOnSimulatedMachineAccesses)
{
    // The sim idiom: ctx.store<T>(addr, v) under ctx.lock(mu).
    const auto findings = lintSnippet("src/apps/x.cpp", R"cpp(
struct App
{
    MutexId energyMutex;
    double kinetic = 0.0;
    void stepLocked(ThreadCtx &ctx)
    {
        ctx.lock(energyMutex);
        ctx.store<double>(&kinetic, ctx.load<double>(&kinetic) + 1.0);
        ctx.unlock(energyMutex);
    }
    void stepLockedToo(ThreadCtx &ctx)
    {
        ctx.lock(energyMutex);
        ctx.store<double>(&kinetic, ctx.load<double>(&kinetic) + 2.0);
        ctx.unlock(energyMutex);
    }
    void stepRacy(ThreadCtx &ctx)
    {
        ctx.store<double>(&kinetic, ctx.load<double>(&kinetic) + 3.0);
    }
};
)cpp");
    // The unguarded write, and the unguarded read feeding it.
    EXPECT_GE(countRule(findings, Rule::L1), 1);
    EXPECT_EQ(firstLineOf(findings, Rule::L1), 20);
}

TEST(RuleL1, AtomicStoreLoadIsNotASimAccess)
{
    // std::atomic's store(v)/load() never spell a template argument at
    // the call site; they must not register as tracked accesses.
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <atomic>
struct Flags
{
    std::atomic<int> ready{0};
    void publish()
    {
        ready.store(1);
    }
    void publishAgain()
    {
        ready.store(2);
    }
    int poll() const
    {
        return ready.load();
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L1), 0);
}

/* ---------------------------------- L2 --------------------------- */

TEST(RuleL2, FiresOnLockOrderInversion)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Bank
{
    std::mutex a;
    std::mutex b;
    void forward()
    {
        std::lock_guard<std::mutex> first(a);
        std::lock_guard<std::mutex> second(b);
    }
    void backward()
    {
        std::lock_guard<std::mutex> second(b);
        std::lock_guard<std::mutex> first(a);
    }
};
)cpp");
    // Both directions of the cycle are reported, once each.
    EXPECT_EQ(countRule(findings, Rule::L2), 2);
}

TEST(RuleL2, QuietOnConsistentNesting)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Bank
{
    std::mutex a;
    std::mutex b;
    void forward()
    {
        std::lock_guard<std::mutex> first(a);
        std::lock_guard<std::mutex> second(b);
    }
    void forwardAgain()
    {
        std::lock_guard<std::mutex> first(a);
        std::lock_guard<std::mutex> second(b);
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L2), 0);
}

TEST(RuleL2, SeesInversionAcrossTranslationUnits)
{
    const LintRun run = lintSnippets({
        {"src/sim/a.cpp", R"cpp(
#include <mutex>
#include "bank.hpp"
void
Bank::forward()
{
    std::lock_guard<std::mutex> first(a);
    std::lock_guard<std::mutex> second(b);
}
)cpp"},
        {"src/sim/b.cpp", R"cpp(
#include <mutex>
#include "bank.hpp"
void
Bank::backward()
{
    std::lock_guard<std::mutex> second(b);
    std::lock_guard<std::mutex> first(a);
}
)cpp"},
    });
    EXPECT_EQ(countRule(run.findings, Rule::L2), 2);
}

TEST(RuleL2, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Bank
{
    std::mutex a;
    std::mutex b;
    void forward()
    {
        std::lock_guard<std::mutex> first(a);
        // icheck-lint: allow(L2): trylock fallback breaks the cycle
        std::lock_guard<std::mutex> second(b);
    }
    void backward()
    {
        std::lock_guard<std::mutex> second(b);
        // icheck-lint: allow(L2): trylock fallback breaks the cycle
        std::lock_guard<std::mutex> first(a);
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L2), 0);
}

TEST(RuleL2, SimLockCallsFeedTheOrderGraph)
{
    const auto findings = lintSnippet("src/apps/x.cpp", R"cpp(
struct App
{
    MutexId outer;
    MutexId inner;
    void forward(ThreadCtx &ctx)
    {
        ctx.lock(outer);
        ctx.lock(inner);
        ctx.unlock(inner);
        ctx.unlock(outer);
    }
    void backward(ThreadCtx &ctx)
    {
        ctx.lock(inner);
        ctx.lock(outer);
        ctx.unlock(outer);
        ctx.unlock(inner);
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L2), 2);
}

/* ---------------------------------- L3 --------------------------- */

TEST(RuleL3, FiresWhenGuardedAddressEscapesUnlocked)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Tank
{
    std::mutex mu;
    double level = 0;
    void fill(double n)
    {
        std::lock_guard<std::mutex> guard(mu);
        level = level + n;
    }
    void drain(double n)
    {
        std::lock_guard<std::mutex> guard(mu);
        level = level - n;
    }
    double *expose()
    {
        return &level;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L3), 1);
    EXPECT_EQ(firstLineOf(findings, Rule::L3), 19);
}

TEST(RuleL3, QuietWhenEscapeHoldsTheGuard)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Tank
{
    std::mutex mu;
    double level = 0;
    void fill(double n)
    {
        std::lock_guard<std::mutex> guard(mu);
        level = level + n;
    }
    void drain(double n)
    {
        std::lock_guard<std::mutex> guard(mu);
        level = level - n;
    }
    void observe(void (*sink)(double *))
    {
        std::lock_guard<std::mutex> guard(mu);
        sink(&level);
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L3), 0);
}

TEST(RuleL3, QuietOnUnguardedObjects)
{
    // No guard inferred, so taking the address is not an escape.
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
struct Plain
{
    double level = 0;
    double *expose()
    {
        return &level;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L3), 0);
}

TEST(RuleL3, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Tank
{
    std::mutex mu;
    double level = 0;
    void fill(double n)
    {
        std::lock_guard<std::mutex> guard(mu);
        level = level + n;
    }
    void drain(double n)
    {
        std::lock_guard<std::mutex> guard(mu);
        level = level - n;
    }
    double *expose()
    {
        // icheck-lint: allow(L3): consumed before threads start
        return &level;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::L3), 0);
}

/* ------------------------------ parallelism ---------------------- */

TEST(LintJobs, OutputIsIdenticalAcrossJobCounts)
{
    std::vector<FileInput> files;
    for (int n = 0; n < 8; ++n) {
        const std::string tag = std::to_string(n);
        files.push_back({"src/sim/file" + tag + ".cpp", R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
    void addRacy(long n)
    {
        value = value + 3 * n;
    }
};
)cpp"});
    }
    LintConfig serial;
    serial.jobs = 1;
    LintConfig wide;
    wide.jobs = 4;
    const LintRun one = lintSnippets(files, serial);
    const LintRun four = lintSnippets(files, wide);
    ASSERT_EQ(one.findings.size(), four.findings.size());
    for (std::size_t i = 0; i < one.findings.size(); ++i) {
        EXPECT_EQ(one.findings[i].key, four.findings[i].key);
        EXPECT_EQ(one.findings[i].finding.line,
                  four.findings[i].finding.line);
        EXPECT_EQ(one.findings[i].finding.message,
                  four.findings[i].finding.message);
    }
}

} // namespace
} // namespace icheck::lint
