/**
 * @file
 * D-rule fixtures: each determinism rule must fire on a positive
 * snippet, stay quiet on the deterministic rewrite, and be silenced by
 * a reasoned allow-suppression.
 */

#include <gtest/gtest.h>

#include "lint_test_util.hpp"

namespace icheck::lint
{
namespace
{

using testutil::countRule;
using testutil::firstLineOf;
using testutil::lintSnippet;

/* ---------------------------------- D1 --------------------------- */

TEST(RuleD1, FiresOnRangeForOverUnorderedMap)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <unordered_map>
void emit(const std::unordered_map<int, int> &stats)
{
    for (const auto &entry : stats)
        use(entry);
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D1), 1);
    EXPECT_EQ(firstLineOf(findings, Rule::D1), 5);
}

TEST(RuleD1, FiresOnIteratorTraversal)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <unordered_set>
void walk(std::unordered_set<int> &seen)
{
    for (auto it = seen.begin(); it != seen.end(); ++it)
        use(*it);
}
)cpp");
    EXPECT_GE(countRule(findings, Rule::D1), 1);
}

TEST(RuleD1, QuietOnOrderedMapIteration)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <map>
void emit(const std::map<int, int> &stats)
{
    for (const auto &entry : stats)
        use(entry);
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D1), 0);
}

TEST(RuleD1, QuietOnNonIteratingUse)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <unordered_set>
bool insert(std::unordered_set<long> &seen, long sig)
{
    return seen.insert(sig).second;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D1), 0);
}

TEST(RuleD1, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <unordered_map>
int total(const std::unordered_map<int, int> &stats)
{
    int sum = 0;
    // icheck-lint: allow(D1): summation is order-independent.
    for (const auto &entry : stats)
        sum += entry.second;
    return sum;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D1), 0);
    EXPECT_EQ(countRule(findings, Rule::H4), 0);
}

/* ---------------------------------- D2 --------------------------- */

TEST(RuleD2, FiresOnPointerKeyedMap)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <map>
std::map<const Node *, int> ranks;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D2), 1);
}

TEST(RuleD2, FiresOnPointerComparatorSort)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <algorithm>
#include <vector>
void order(std::vector<Node *> &nodes)
{
    std::sort(nodes.begin(), nodes.end(),
              [](const Node *a, const Node *b) { return a < b; });
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D2), 1);
}

TEST(RuleD2, QuietOnValueKeyedMapAndPointerValues)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <map>
std::map<int, Node *> byId;
std::set<std::string> names;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D2), 0);
}

TEST(RuleD2, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <map>
// icheck-lint: allow(D2): scratch index, never iterated in order.
std::map<const Node *, int> ranks;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D2), 0);
}

/* ---------------------------------- D3 --------------------------- */

TEST(RuleD3, FiresOnRandAndRandomDevice)
{
    const auto findings = lintSnippet("src/apps/x.cpp", R"cpp(
#include <cstdlib>
#include <random>
int roll()
{
    std::random_device entropy;
    return rand() + static_cast<int>(entropy());
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 2);
}

TEST(RuleD3, FiresOnWallClockOutsideWhitelist)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <chrono>
double stamp()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 1);
}

TEST(RuleD3, SystemClockFlaggedEvenInTimingCode)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
#include <chrono>
auto when() { return std::chrono::system_clock::now(); }
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 1);
}

TEST(RuleD3, SteadyClockAllowedInTimingWhitelist)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
#include <chrono>
using Clock = std::chrono::steady_clock;
double elapsed(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 0);
}

TEST(RuleD3, QuietOnMemberFunctionsNamedLikeLibc)
{
    const auto findings = lintSnippet("src/explore/x.cpp", R"cpp(
struct Clocks
{
    int clock(int tid) { return tid; }
    int use() { return clock(3) + timer.time(5); }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 0);
}

TEST(RuleD3, FiresOnLibcTimeAndClock)
{
    const auto findings = lintSnippet("src/apps/x.cpp", R"cpp(
#include <ctime>
long seed() { return time(nullptr) + clock(); }
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 2);
}

TEST(RuleD3, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <cstdlib>
// icheck-lint: allow(D3): PATH is read once at startup, not hashed.
const char *path() { return getenv("PATH"); }
)cpp");
    EXPECT_EQ(countRule(findings, Rule::D3), 0);
}

} // namespace
} // namespace icheck::lint
