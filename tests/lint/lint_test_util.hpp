#ifndef ICHECK_TESTS_LINT_TEST_UTIL_HPP
#define ICHECK_TESTS_LINT_TEST_UTIL_HPP

/**
 * @file
 * Shared helpers for the icheck-lint test suite: lint an in-memory
 * snippet under a fake path (the path selects which scoped rules
 * apply) and count findings per rule.
 */

#include <string>
#include <vector>

#include "linter.hpp"

namespace icheck::lint::testutil
{

inline std::vector<KeyedFinding>
lintSnippet(const std::string &path, const std::string &source)
{
    return lintSource(path, source, LintConfig{});
}

/** Lint several in-memory TUs as one program. */
inline LintRun
lintSnippets(const std::vector<FileInput> &files,
             const LintConfig &config = LintConfig{},
             const std::vector<DynamicRace> &races = {})
{
    return lintSources(files, config, races);
}

inline int
countRule(const std::vector<KeyedFinding> &findings, Rule rule)
{
    int count = 0;
    for (const KeyedFinding &entry : findings) {
        if (entry.finding.rule == rule)
            ++count;
    }
    return count;
}

/** Line of the first finding of @p rule, or -1 if none. */
inline int
firstLineOf(const std::vector<KeyedFinding> &findings, Rule rule)
{
    for (const KeyedFinding &entry : findings) {
        if (entry.finding.rule == rule)
            return entry.finding.line;
    }
    return -1;
}

} // namespace icheck::lint::testutil

#endif // ICHECK_TESTS_LINT_TEST_UTIL_HPP
