/**
 * @file
 * SARIF output fixtures: structural 2.1.0 checks on the rendered JSON
 * (no JSON library in the tool, so the tests assert on the exact
 * substrings a consumer keys on).
 */

#include <gtest/gtest.h>

#include "lint_test_util.hpp"
#include "sarif.hpp"

namespace icheck::lint
{
namespace
{

using testutil::lintSnippet;

std::vector<KeyedFinding>
sampleFindings()
{
    return lintSnippet("src/sim/x.cpp", R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
    void addRacy(long n)
    {
        value = value + 3 * n;
    }
};
)cpp");
}

TEST(Sarif, HasVersionSchemaAndDriver)
{
    const std::string sarif = renderSarif(sampleFindings());
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\":\"icheck-lint\""), std::string::npos);
}

TEST(Sarif, DeclaresEveryRegisteredRule)
{
    const std::string sarif = renderSarif({});
    for (const RuleInfo &info : ruleRegistry()) {
        const std::string id =
            std::string("{\"id\":\"") + info.id + "\"";
        EXPECT_NE(sarif.find(id), std::string::npos) << info.id;
    }
    // Empty runs still carry an empty results array.
    EXPECT_NE(sarif.find("\"results\":[]"), std::string::npos);
}

TEST(Sarif, ResultCarriesLocationLevelAndFingerprint)
{
    const auto findings = sampleFindings();
    ASSERT_FALSE(findings.empty());
    const std::string sarif = renderSarif(findings);
    EXPECT_NE(sarif.find("\"ruleId\":\"L1\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
    EXPECT_NE(sarif.find("\"uri\":\"src/sim/x.cpp\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\":19"), std::string::npos);
    EXPECT_NE(sarif.find("\"icheckLintKey/v1\""), std::string::npos);
}

TEST(Sarif, EscapesMessageText)
{
    KeyedFinding entry;
    entry.finding.rule = Rule::L1;
    entry.finding.file = "src/a\"b.cpp";
    entry.finding.line = 3;
    entry.finding.message = "quote \" backslash \\ newline \n tab \t";
    entry.key = "L1\tsrc/a\"b.cpp\t0";
    const std::string sarif = renderSarif({entry});
    EXPECT_NE(sarif.find("quote \\\" backslash \\\\ newline \\n tab \\t"),
              std::string::npos);
    EXPECT_NE(sarif.find("\"uri\":\"src/a\\\"b.cpp\""),
              std::string::npos);
}

TEST(Sarif, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\x01z"), "a\\u0001z");
    EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(Sarif, RenderingIsDeterministic)
{
    const auto findings = sampleFindings();
    EXPECT_EQ(renderSarif(findings), renderSarif(findings));
}

} // namespace
} // namespace icheck::lint
