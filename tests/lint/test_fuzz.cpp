/**
 * @file
 * Robustness fixtures: the linter must survive hostile lexical shapes
 * (raw strings, digraphs, deeply nested templates, truncated tokens)
 * and deterministic byte-level mutations without crashing, and must
 * produce identical findings when run twice over the same input.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "lint_test_util.hpp"

namespace icheck::lint
{
namespace
{

using testutil::lintSnippet;

/** Findings reduced to a comparable transcript. */
std::string
transcript(const std::vector<KeyedFinding> &findings)
{
    std::string out;
    for (const KeyedFinding &entry : findings) {
        out += entry.key;
        out += '|';
        out += std::to_string(entry.finding.line);
        out += '|';
        out += entry.finding.message;
        out += '\n';
    }
    return out;
}

/** Lint must not throw, and two runs must agree exactly. */
void
expectStable(const std::string &source)
{
    std::string first;
    std::string second;
    ASSERT_NO_THROW(
        first = transcript(lintSnippet("src/sim/fuzz.cpp", source)));
    ASSERT_NO_THROW(
        second = transcript(lintSnippet("src/sim/fuzz.cpp", source)));
    EXPECT_EQ(first, second);
}

const std::vector<std::string> &
corpus()
{
    static const std::vector<std::string> entries = {
        // Raw strings with tricky delimiters and embedded "code".
        "const char *s = R\"(unterminated-looking { ( \" )\";\n",
        "const char *s = R\"ab(nested )\" not the end )ab\";\n"
        "std::mutex mu; // after the raw string\n",
        "auto x = R\"delim()delim\";",
        // Digraphs.
        "int a<:3:> = <%1, 2, 3%>;\n",
        "%:include <mutex>\nint y = 0;\n",
        // Deeply nested templates.
        "std::map<int, std::vector<std::pair<std::string,\n"
        "    std::tuple<int, long, std::array<double, 4>>>>> deep;\n",
        "template <typename T, template <typename...> class C>\n"
        "struct Rebind { using type = C<T, T>; };\n",
        "bool cmp = a < b >> c > d;\n",
        // Truncated / unbalanced shapes.
        "struct Half {\n    std::mutex mu;\n    int x;\n",
        "void f() { std::lock_guard<std::mutex> g(",
        "class",
        "::",
        "\"",
        "'",
        "/*",
        "//",
        "R\"(",
        "#define",
        "template <",
        "a.b->c.",
        "&",
        "++",
        "x = ",
        // Mixed hostile soup.
        "struct S { std::mutex m; int v; void f() {\n"
        "  std::lock_guard<std::mutex> g(m); v = v + 1; } void h() {\n"
        "  v = v + 2; } void i() {\n"
        "  std::lock_guard<std::mutex> g(m); v = v + 3; } };\n",
        "#if 0\nstruct Fake { std::mutex m; };\n#endif\n"
        "int real = 0;\n",
    };
    return entries;
}

TEST(Fuzz, CorpusEntriesLintWithoutCrashingAndDeterministically)
{
    for (const std::string &entry : corpus())
        expectStable(entry);
}

TEST(Fuzz, EveryPrefixOfARealisticSourceIsSafe)
{
    const std::string source = R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void add(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n; // icheck-lint: allow(L1): fixture
    }
    long *leak() { return &value; }
};
)cpp";
    for (std::size_t cut = 0; cut <= source.size(); ++cut)
        expectStable(source.substr(0, cut));
}

TEST(Fuzz, DeterministicByteMutationsNeverCrash)
{
    // xorshift64: reproducible mutation stream, no global RNG state.
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    const auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    const std::string base = R"cpp(
#include <mutex>
struct Bank
{
    std::mutex a;
    std::mutex b;
    long total = 0;
    void forward()
    {
        std::lock_guard<std::mutex> first(a);
        std::lock_guard<std::mutex> second(b);
        total = total + 1;
    }
    void backward()
    {
        std::lock_guard<std::mutex> second(b);
        std::lock_guard<std::mutex> first(a);
        total = total - 1;
    }
    long *expose() { return &total; }
};
)cpp";
    const char alphabet[] = "{}()<>;:&*=+-.\"'/\\ \n\tRL0x";
    for (int round = 0; round < 200; ++round) {
        std::string mutated = base;
        const int edits = 1 + static_cast<int>(next() % 4);
        for (int e = 0; e < edits; ++e) {
            const std::size_t at = next() % mutated.size();
            switch (next() % 3) {
              case 0: // overwrite
                mutated[at] =
                    alphabet[next() % (sizeof alphabet - 1)];
                break;
              case 1: // delete
                mutated.erase(at, 1 + next() % 3);
                break;
              default: // insert
                mutated.insert(
                    at, 1, alphabet[next() % (sizeof alphabet - 1)]);
            }
            if (mutated.empty())
                mutated = "{";
        }
        expectStable(mutated);
    }
}

TEST(Fuzz, MultiTuAnalysisIsStableUnderHostileInputs)
{
    std::vector<FileInput> files;
    int n = 0;
    for (const std::string &entry : corpus())
        files.push_back(
            {"src/sim/fuzz" + std::to_string(n++) + ".cpp", entry});
    LintConfig config;
    config.jobs = 4;
    LintRun first;
    LintRun second;
    ASSERT_NO_THROW(first = lintSources(files, config));
    ASSERT_NO_THROW(second = lintSources(files, config));
    ASSERT_EQ(first.findings.size(), second.findings.size());
    for (std::size_t i = 0; i < first.findings.size(); ++i)
        EXPECT_EQ(first.findings[i].key, second.findings[i].key);
}

} // namespace
} // namespace icheck::lint
