/**
 * @file
 * H-rule fixtures: missing override, raw new/delete outside arenas,
 * unowned to-do markers, and malformed suppressions (which are
 * themselves findings and can never be suppressed).
 */

#include <gtest/gtest.h>

#include "lint_test_util.hpp"

namespace icheck::lint
{
namespace
{

using testutil::countRule;
using testutil::lintSnippet;

/* ---------------------------------- H1 --------------------------- */

TEST(RuleH1, FiresOnVirtualWithoutOverrideInDerivedClass)
{
    const auto findings = lintSnippet("src/sim/x.hpp", R"cpp(
struct Listener
{
    virtual void onEvent(int id);
    virtual ~Listener() = default;
};
struct Tracer : public Listener
{
    virtual void onEvent(int id);
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H1), 1);
}

TEST(RuleH1, QuietWithOverrideOrFinal)
{
    const auto findings = lintSnippet("src/sim/x.hpp", R"cpp(
struct Listener
{
    virtual void onEvent(int id);
};
struct Tracer : public Listener
{
    void onEvent(int id) override;
    virtual void onDone() final;
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H1), 0);
}

TEST(RuleH1, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.hpp", R"cpp(
struct Tracer : public Listener
{
    // icheck-lint: allow(H1): introduces a new virtual, not an
    // override of a base member.
    virtual void onExtension(int id);
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H1), 0);
}

/* ---------------------------------- H2 --------------------------- */

TEST(RuleH2, FiresOnRawNewAndDelete)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
void churn()
{
    int *p = new int(3);
    delete p;
    int *arr = new int[8];
    delete[] arr;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H2), 4);
}

TEST(RuleH2, QuietInArenaCodeAndOnDeletedFunctions)
{
    const auto arena = lintSnippet("src/mem/alloc.cpp", R"cpp(
void *grow() { return new char[4096]; }
)cpp");
    EXPECT_EQ(countRule(arena, Rule::H2), 0);

    const auto deleted = lintSnippet("src/sim/x.hpp", R"cpp(
struct Pinned
{
    Pinned(const Pinned &) = delete;
    Pinned &operator=(const Pinned &) = delete;
};
)cpp");
    EXPECT_EQ(countRule(deleted, Rule::H2), 0);
}

TEST(RuleH2, QuietOnOperatorNewDeclarations)
{
    const auto findings = lintSnippet("src/sim/x.hpp", R"cpp(
struct Arena
{
    void *operator new(unsigned long size);
    void operator delete(void *p);
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H2), 0);
}

TEST(RuleH2, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
void *raw()
{
    // icheck-lint: allow(H2): ownership passes to the C callback API.
    return new char[16];
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H2), 0);
}

/* ---------------------------------- H3 --------------------------- */

TEST(RuleH3, FiresOnUnownedTodoAndFixme)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
// TODO: make this faster
int a;
/* FIXME - drop the copy */
int b;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H3), 2);
}

TEST(RuleH3, QuietWithIssueReference)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
// TODO(#142): make this faster
int a;
// FIXME(gh-77): drop the copy
int b;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H3), 0);
}

TEST(RuleH3, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
// icheck-lint: allow(H3): tracked in the design doc, not an issue.
// TODO: revisit when the arena grows beyond one segment
int a;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H3), 0);
}

/* ---------------------------------- H4 --------------------------- */

TEST(RuleH4, FiresOnMissingReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
// icheck-lint: allow(D1)
int a;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H4), 1);
}

TEST(RuleH4, FiresOnUnknownRule)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
// icheck-lint: allow(Z9): no such rule family.
int a;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H4), 1);
}

TEST(RuleH4, FiresOnMarkerWithoutDirective)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
// icheck-lint: please ignore everything below
int a;
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H4), 1);
}

TEST(RuleH4, MalformedSuppressionDoesNotSuppress)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <unordered_map>
void emit(const std::unordered_map<int, int> &stats)
{
    // icheck-lint: allow(D1)
    for (const auto &entry : stats)
        use(entry);
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H4), 1);
    EXPECT_EQ(countRule(findings, Rule::D1), 1);
}

TEST(RuleH4, MultipleDirectivesInOneComment)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
#include <unordered_map>
int total(const std::unordered_map<int, int> &stats)
{
    int sum = 0;
    // icheck-lint: allow(D1): order-independent sum.
    // icheck-lint: allow(D3): seed is logged, not hashed.
    for (const auto &entry : stats) sum += entry.second + rand();
    return sum;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::H4), 0);
    EXPECT_EQ(countRule(findings, Rule::D1), 0);
    EXPECT_EQ(countRule(findings, Rule::D3), 0);
}

} // namespace
} // namespace icheck::lint
