/**
 * @file
 * The repository itself must lint clean against the committed baseline.
 * This is the same check the `lint` CTest target runs via the CLI, kept
 * here as a unit test so a rule change that floods the repo with new
 * findings fails the test suite even before the CLI is rebuilt.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "linter.hpp"

namespace icheck::lint
{
namespace
{

// Root of the source checkout, injected by the build so the test can be
// run from any working directory.
const std::string kRoot = ICHECK_REPO_ROOT;

TEST(RepoLint, LintsCleanAgainstCommittedBaseline)
{
    namespace fs = std::filesystem;

    // Scan with repo-relative paths, as the `lint` CTest target does:
    // baseline keys embed the path exactly as scanned.
    const fs::path previous = fs::current_path();
    fs::current_path(kRoot);
    LintRun run;
    try {
        run = lintPaths({"src", "tools", "bench", "tests"},
                        LintConfig{});
    } catch (...) {
        fs::current_path(previous);
        throw;
    }
    fs::current_path(previous);
    EXPECT_GT(run.filesScanned, 100);

    std::ifstream in(kRoot + "/tools/lint/baseline.txt");
    ASSERT_TRUE(in.good()) << "missing tools/lint/baseline.txt";
    const Baseline baseline = readBaseline(in);

    const auto fresh = subtractBaseline(run.findings, baseline);
    std::ostringstream detail;
    for (const KeyedFinding &entry : fresh)
        detail << entry.finding.file << ":" << entry.finding.line << ": ["
               << ruleInfo(entry.finding.rule).id << "] "
               << entry.finding.message << "\n";
    EXPECT_TRUE(fresh.empty()) << detail.str();
}

} // namespace
} // namespace icheck::lint
