/**
 * @file
 * Race-log cross-check fixtures: JSONL parsing, path suffix matching,
 * promotion of dynamically-confirmed findings, and X1 contradictions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "lint_test_util.hpp"
#include "racelog.hpp"

namespace icheck::lint
{
namespace
{

using testutil::countRule;
using testutil::lintSnippets;

const char *const kCounterSource = R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
    void addRacy(long n)
    {
        value = value + 3 * n;
    }
};
)cpp";

// Same shape but fully guarded: with no racy write the lockset pass
// believes 'value' protected, so its write lines (10 and 15) land in
// guardedLines — the precondition for X1.
const char *const kGuardedSource = R"cpp(
#include <mutex>
struct Counter
{
    std::mutex mu;
    long value = 0;
    void addA(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + n;
    }
    void addB(long n)
    {
        std::lock_guard<std::mutex> guard(mu);
        value = value + 2 * n;
    }
};
)cpp";

DynamicRace
raceAt(const std::string &file, int first_line, int second_line)
{
    DynamicRace race;
    race.app = "waterSP";
    race.kind = "write-write";
    race.symbol = "global:value+0x0";
    race.first = {file, first_line, 1};
    race.second = {file, second_line, 3};
    return race;
}

TEST(RaceLog, ParsesWriterFormat)
{
    std::istringstream in(
        R"({"app":"waterSP","kind":"write-write","symbol":"global:kinetic+0x0",)"
        R"("first":{"tid":3,"file":"src/apps/apps_fp.cpp","line":275},)"
        R"("second":{"tid":1,"file":"src/apps/apps_fp.cpp","line":278}})"
        "\n"
        "not json at all\n"
        R"({"app":"x","kind":"read-write","symbol":"s",)"
        R"("first":{"tid":0,"file":"","line":0},)"
        R"("second":{"tid":2,"file":"a/b.cpp","line":7}})"
        "\n");
    const auto races = readRaceLog(in);
    ASSERT_EQ(races.size(), 2u);
    EXPECT_EQ(races[0].kind, "write-write");
    EXPECT_EQ(races[0].first.file, "src/apps/apps_fp.cpp");
    EXPECT_EQ(races[0].first.line, 275);
    EXPECT_EQ(races[0].second.tid, 1);
    // Second record: only one endpoint attributed, still kept.
    EXPECT_EQ(races[1].second.line, 7);
    EXPECT_EQ(races[1].first.line, 0);
}

TEST(RaceLog, PathSuffixMatchingRespectsComponentBoundaries)
{
    EXPECT_TRUE(pathsMatch("src/apps/apps_fp.cpp",
                           "/build/../src/apps/apps_fp.cpp"));
    EXPECT_TRUE(pathsMatch("apps_fp.cpp", "src/apps/apps_fp.cpp"));
    EXPECT_TRUE(pathsMatch("a/b.cpp", "a/b.cpp"));
    EXPECT_FALSE(pathsMatch("x_apps_fp.cpp", "src/apps/apps_fp.cpp"));
    EXPECT_FALSE(pathsMatch("", "a.cpp"));
    EXPECT_FALSE(pathsMatch("a/b.cpp", "a/c.cpp"));
}

TEST(CrossCheck, PromotesConfirmedFindingToError)
{
    // The racy write sits on line 19 of the fixture.
    const LintRun plain =
        lintSnippets({{"src/sim/counter.cpp", kCounterSource}});
    ASSERT_EQ(countRule(plain.findings, Rule::L1), 1);
    EXPECT_EQ(plain.findings[0].finding.severity, Severity::Warning);

    const LintRun checked = lintSnippets(
        {{"src/sim/counter.cpp", kCounterSource}}, LintConfig{},
        {raceAt("/abs/path/src/sim/counter.cpp", 19, 10)});
    ASSERT_EQ(countRule(checked.findings, Rule::L1), 1);
    const Finding &finding = checked.findings[0].finding;
    EXPECT_EQ(finding.severity, Severity::Error);
    EXPECT_NE(finding.message.find("confirmed by dynamic race"),
              std::string::npos);
}

TEST(CrossCheck, UnrelatedRaceDoesNotPromote)
{
    const LintRun checked = lintSnippets(
        {{"src/sim/counter.cpp", kCounterSource}}, LintConfig{},
        {raceAt("src/other/elsewhere.cpp", 19, 10)});
    ASSERT_EQ(countRule(checked.findings, Rule::L1), 1);
    EXPECT_EQ(checked.findings[0].finding.severity, Severity::Warning);
}

TEST(CrossCheck, EmitsX1WhenRaceHitsABelievedGuardedLine)
{
    // Lines 10 and 15 are the guarded writes; a dynamic race there
    // contradicts the static model.
    const LintRun checked = lintSnippets(
        {{"src/sim/counter.cpp", kGuardedSource}}, LintConfig{},
        {raceAt("src/sim/counter.cpp", 10, 15)});
    EXPECT_EQ(countRule(checked.findings, Rule::X1), 2);
    for (const KeyedFinding &entry : checked.findings) {
        if (entry.finding.rule == Rule::X1)
            EXPECT_EQ(entry.finding.severity, Severity::Error);
    }
}

TEST(CrossCheck, X1DeduplicatesRepeatedEndpoints)
{
    const LintRun checked = lintSnippets(
        {{"src/sim/counter.cpp", kGuardedSource}}, LintConfig{},
        {raceAt("src/sim/counter.cpp", 10, 10),
         raceAt("src/sim/counter.cpp", 10, 10)});
    EXPECT_EQ(countRule(checked.findings, Rule::X1), 1);
}

TEST(CrossCheck, NoRacesMeansNoX1AndNoPromotion)
{
    const LintRun checked =
        lintSnippets({{"src/sim/counter.cpp", kCounterSource}});
    EXPECT_EQ(countRule(checked.findings, Rule::X1), 0);
    for (const KeyedFinding &entry : checked.findings)
        EXPECT_NE(entry.finding.severity, Severity::Error);
}

} // namespace
} // namespace icheck::lint
