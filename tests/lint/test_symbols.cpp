/**
 * @file
 * Symbol-table fixtures: class member extraction, mutex/atomic/const
 * classification, base-chain member lookup, and namespace globals.
 */

#include <gtest/gtest.h>

#include "lexer.hpp"
#include "symbols.hpp"

namespace icheck::lint
{
namespace
{

SymbolTable
tableFor(const std::string &source)
{
    return collectSymbols("src/sim/x.cpp", lex(source));
}

TEST(Symbols, RecordsClassMembersWithTypeFlags)
{
    const SymbolTable table = tableFor(R"cpp(
#include <mutex>
#include <atomic>
struct Account
{
    std::mutex mu;
    std::atomic<long> hits{0};
    const int limit = 8;
    double balance = 0.0;
    void deposit(double amount);
};
)cpp");
    ASSERT_EQ(table.classes.count("Account"), 1u);
    const ClassInfo &account = table.classes.at("Account");
    ASSERT_EQ(account.members.count("mu"), 1u);
    EXPECT_TRUE(account.members.at("mu").isMutex);
    ASSERT_EQ(account.members.count("hits"), 1u);
    EXPECT_TRUE(account.members.at("hits").isAtomic);
    ASSERT_EQ(account.members.count("limit"), 1u);
    EXPECT_TRUE(account.members.at("limit").isConst);
    ASSERT_EQ(account.members.count("balance"), 1u);
    const VarInfo &balance = account.members.at("balance");
    EXPECT_FALSE(balance.isMutex);
    EXPECT_FALSE(balance.isAtomic);
    EXPECT_FALSE(balance.isConst);
    // Methods are not data members.
    EXPECT_EQ(account.members.count("deposit"), 0u);
    EXPECT_TRUE(account.hasMutexMember());
}

TEST(Symbols, RecordsNamespaceGlobals)
{
    const SymbolTable table = tableFor(R"cpp(
#include <mutex>
namespace demo
{
std::mutex registryMu;
int hitCount = 0;
}
long freeTotal;
)cpp");
    ASSERT_EQ(table.globals.count("registryMu"), 1u);
    EXPECT_TRUE(table.globals.at("registryMu").isMutex);
    EXPECT_EQ(table.globals.count("hitCount"), 1u);
    EXPECT_EQ(table.globals.count("freeTotal"), 1u);
}

TEST(Symbols, FindMemberWalksBaseChain)
{
    const SymbolTable table = tableFor(R"cpp(
struct Base
{
    int shared = 0;
};
struct Mid : public Base
{
    int own = 0;
};
struct Leaf : Mid
{
};
)cpp");
    ASSERT_NE(table.findMember("Leaf", "own"), nullptr);
    ASSERT_NE(table.findMember("Leaf", "shared"), nullptr);
    EXPECT_EQ(table.findMember("Leaf", "absent"), nullptr);
    EXPECT_EQ(table.findMember("NoSuchClass", "own"), nullptr);
}

TEST(Symbols, FindMemberSurvivesInheritanceCycle)
{
    // Illegal C++, but the parser must not loop on it.
    const SymbolTable table = tableFor(R"cpp(
struct A : B { int a = 0; };
struct B : A { int b = 0; };
)cpp");
    ASSERT_NE(table.findMember("A", "b"), nullptr);
    EXPECT_EQ(table.findMember("A", "missing"), nullptr);
}

TEST(Symbols, SimMutexIdCountsAsMutex)
{
    EXPECT_TRUE(isMutexType("MutexId"));
    EXPECT_TRUE(isMutexType("mutex"));
    EXPECT_TRUE(isMutexType("shared_mutex"));
    EXPECT_FALSE(isMutexType("int"));

    const SymbolTable table = tableFor(R"cpp(
struct App
{
    MutexId energyMutex;
    double kinetic = 0.0;
};
)cpp");
    ASSERT_EQ(table.classes.count("App"), 1u);
    EXPECT_TRUE(table.classes.at("App").members.at("energyMutex").isMutex);
}

TEST(Symbols, TemplateAndAccessSpecifiersDoNotConfuseBases)
{
    const SymbolTable table = tableFor(R"cpp(
template <typename T>
class Holder : private std::vector<T>, public Tag
{
    T item;
};
)cpp");
    ASSERT_EQ(table.classes.count("Holder"), 1u);
    const ClassInfo &holder = table.classes.at("Holder");
    ASSERT_FALSE(holder.bases.empty());
    EXPECT_EQ(holder.bases.back(), "Tag");
}

TEST(Symbols, FunctionLocalsAreNotMembers)
{
    const SymbolTable table = tableFor(R"cpp(
struct Worker
{
    int total = 0;
    void run()
    {
        int scratch = 0;
        scratch += 1;
    }
};
)cpp");
    const ClassInfo &worker = table.classes.at("Worker");
    EXPECT_EQ(worker.members.count("scratch"), 0u);
    EXPECT_EQ(worker.members.count("total"), 1u);
}

} // namespace
} // namespace icheck::lint
