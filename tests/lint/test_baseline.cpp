/**
 * @file
 * Baseline mechanics: round-trip through the text format, multiset
 * matching, and tolerance to findings moving between lines as long as
 * the offending source text is unchanged.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "lint_test_util.hpp"

namespace icheck::lint
{
namespace
{

using testutil::lintSnippet;

const char *const kHazard = R"cpp(
#include <unordered_map>
void emit(const std::unordered_map<int, int> &stats)
{
    for (const auto &entry : stats)
        use(entry);
}
)cpp";

TEST(LintBaseline, RoundTripSubtractsEverything)
{
    const auto findings = lintSnippet("src/check/x.cpp", kHazard);
    ASSERT_FALSE(findings.empty());

    std::ostringstream out;
    writeBaseline(out, findings);
    std::istringstream in(out.str());
    const Baseline baseline = readBaseline(in);

    EXPECT_TRUE(subtractBaseline(findings, baseline).empty());
}

TEST(LintBaseline, SurvivesLineNumberDrift)
{
    const auto original = lintSnippet("src/check/x.cpp", kHazard);
    std::ostringstream out;
    writeBaseline(out, original);
    std::istringstream in(out.str());
    const Baseline baseline = readBaseline(in);

    // Same hazard, pushed down by new code above it.
    const auto shifted = lintSnippet("src/check/x.cpp",
                                     std::string("// a new comment\n"
                                                 "int added = 1;\n") +
                                         kHazard);
    EXPECT_TRUE(subtractBaseline(shifted, baseline).empty());
}

TEST(LintBaseline, NewFindingIsNotAbsorbed)
{
    const auto original = lintSnippet("src/check/x.cpp", kHazard);
    std::ostringstream out;
    writeBaseline(out, original);
    std::istringstream in(out.str());
    const Baseline baseline = readBaseline(in);

    const auto grown = lintSnippet(
        "src/check/x.cpp",
        std::string(kHazard) +
            "void more(std::unordered_map<int, int> &m)\n"
            "{\n"
            "    for (const auto &e : m)\n"
            "        use(e);\n"
            "}\n");
    const auto fresh = subtractBaseline(grown, baseline);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].finding.rule, Rule::D1);
}

TEST(LintBaseline, DuplicateFindingsNeedDuplicateEntries)
{
    // Two identical hazards on identical source lines: a baseline with
    // one entry absorbs only one of them.
    const std::string twice = std::string(kHazard) +
                              "void emitAgain(const "
                              "std::unordered_map<int, int> &stats)\n"
                              "{\n"
                              "    for (const auto &entry : stats)\n"
                              "        use(entry);\n"
                              "}\n";
    const auto findings = lintSnippet("src/check/x.cpp", twice);
    ASSERT_EQ(findings.size(), 2u);
    // Both findings share one key (same rule, file, line text).
    ASSERT_EQ(findings[0].key, findings[1].key);

    Baseline one;
    one[findings[0].key] = 1;
    EXPECT_EQ(subtractBaseline(findings, one).size(), 1u);

    Baseline both;
    both[findings[0].key] = 2;
    EXPECT_TRUE(subtractBaseline(findings, both).empty());
}

TEST(LintBaseline, CommentsAndBlankLinesIgnored)
{
    std::istringstream in("# header\n\n# another\nD1\tsrc/x.cpp\tdead\n");
    const Baseline baseline = readBaseline(in);
    ASSERT_EQ(baseline.size(), 1u);
    EXPECT_EQ(baseline.count("D1\tsrc/x.cpp\tdead"), 1u);
}

TEST(LintBaseline, KeyIncludesRuleFileAndLineHash)
{
    const auto findings = lintSnippet("src/check/x.cpp", kHazard);
    ASSERT_FALSE(findings.empty());
    const std::string &key = findings[0].key;
    EXPECT_EQ(key.rfind("D1\tsrc/check/x.cpp\t", 0), 0u);
    char expected[32];
    std::snprintf(expected, sizeof expected, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(findings[0].lineText)));
    EXPECT_NE(key.find(expected), std::string::npos);
}

} // namespace
} // namespace icheck::lint
