/**
 * @file
 * C-rule fixtures: shared mutable statics, unlocked counter updates in
 * the runtime layer, and detached threads.
 */

#include <gtest/gtest.h>

#include "lint_test_util.hpp"

namespace icheck::lint
{
namespace
{

using testutil::countRule;
using testutil::lintSnippet;

/* ---------------------------------- C1 --------------------------- */

TEST(RuleC1, FiresOnMutableStaticAndAnonymousNamespaceGlobal)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
namespace demo
{
static int hitCount = 0;
double lastSeen;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C1), 2);
}

TEST(RuleC1, FiresOnMutableClassLevelStatic)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
class Registry
{
    static Registry *instance;
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C1), 1);
}

TEST(RuleC1, QuietOnConstAtomicAndMutexStatics)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <atomic>
#include <mutex>
namespace demo
{
const int kLimit = 8;
constexpr double kScale = 1.5;
static const char *const kName = "icheck";
std::atomic<int> liveCount{0};
static std::mutex registryMu;
thread_local int scratch = 0;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C1), 0);
}

TEST(RuleC1, QuietOnFunctionDeclarations)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
namespace demo
{
static int helper(int x);
int publicHelper(double y);
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C1), 0);
}

TEST(RuleC1, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
namespace demo
{
// icheck-lint: allow(C1): written only before threads start.
static int configuredWidth = 64;
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C1), 0);
}

/* ---------------------------------- C2 --------------------------- */

TEST(RuleC2, FiresOnUnlockedCounterUpdateInRuntime)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
struct Stats
{
    long executed = 0;
    void
    bump()
    {
        ++executed;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C2), 1);
}

TEST(RuleC2, QuietWhenLockGuardIsHeld)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
#include <mutex>
struct Stats
{
    std::mutex mu;
    long executed = 0;
    void
    bump()
    {
        std::lock_guard<std::mutex> lock(mu);
        ++executed;
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C2), 0);
}

TEST(RuleC2, QuietOnLocalsLoopIndicesAndAtomics)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
#include <atomic>
std::atomic<long> liveTotal{0};
void
work(int n)
{
    int done = 0;
    for (int i = 0; i < n; ++i)
        ++done;
    liveTotal += done;
    std::string text;
    text += "chunk";
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C2), 0);
}

TEST(RuleC2, LockInDefiningScopeDoesNotCoverLambdaBody)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
#include <mutex>
struct Pool
{
    std::mutex mu;
    long queued = 0;
    auto
    deferred()
    {
        std::lock_guard<std::mutex> lock(mu);
        return [this] { ++queued; };
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C2), 1);
}

TEST(RuleC2, DoesNotApplyOutsideRuntime)
{
    const auto findings = lintSnippet("src/check/x.cpp", R"cpp(
struct Stats
{
    long executed = 0;
    void bump() { ++executed; }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C2), 0);
}

TEST(RuleC2, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/runtime/x.cpp", R"cpp(
struct Stats
{
    long executed = 0;
    void
    bump()
    {
        ++executed; // icheck-lint: allow(C2): caller holds mu.
    }
};
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C2), 0);
}

/* ---------------------------------- C3 --------------------------- */

TEST(RuleC3, FiresOnDetach)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <thread>
void fireAndForget()
{
    std::thread worker([] {});
    worker.detach();
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C3), 1);
}

TEST(RuleC3, QuietOnJoin)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <thread>
void waitFor()
{
    std::thread worker([] {});
    worker.join();
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C3), 0);
}

TEST(RuleC3, SuppressedWithReason)
{
    const auto findings = lintSnippet("src/sim/x.cpp", R"cpp(
#include <thread>
void fireAndForget()
{
    std::thread watchdog([] {});
    // icheck-lint: allow(C3): watchdog outlives main by design.
    watchdog.detach();
}
)cpp");
    EXPECT_EQ(countRule(findings, Rule::C3), 0);
}

} // namespace
} // namespace icheck::lint
