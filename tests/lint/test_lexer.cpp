/**
 * @file
 * The lexer's contracts: code that looks like code inside strings and
 * comments must not become tokens, raw strings must not derail the
 * scan, and consecutive // lines merge into one logical comment.
 */

#include <gtest/gtest.h>

#include "lexer.hpp"

namespace icheck::lint
{
namespace
{

std::vector<std::string>
tokenTexts(const LexResult &lexed)
{
    std::vector<std::string> texts;
    for (const Token &token : lexed.tokens)
        texts.push_back(token.text);
    return texts;
}

TEST(LintLexer, TokenizesIdentifiersOperatorsAndNumbers)
{
    const LexResult lexed = lex("int x = a->b + 0x1f;");
    const std::vector<std::string> expected = {"int", "x",  "=", "a",
                                               "->",  "b",  "+", "0x1f",
                                               ";"};
    EXPECT_EQ(tokenTexts(lexed), expected);
}

TEST(LintLexer, StringsAndCharsDoNotLeakCodeTokens)
{
    const LexResult lexed =
        lex("call(\"rand() detach() new delete\", 'x');");
    for (const Token &token : lexed.tokens) {
        EXPECT_NE(token.text, "rand");
        EXPECT_NE(token.text, "detach");
        EXPECT_NE(token.text, "new");
    }
}

TEST(LintLexer, RawStringsAreSkippedWholesale)
{
    const LexResult lexed =
        lex("auto s = R\"(for (x : m) { rand(); })\"; int after = 1;");
    bool saw_after = false;
    for (const Token &token : lexed.tokens) {
        EXPECT_NE(token.text, "rand");
        if (token.text == "after")
            saw_after = true;
    }
    EXPECT_TRUE(saw_after);
}

TEST(LintLexer, CommentsGoToTheSideChannel)
{
    const LexResult lexed = lex("int a; // trailing note\n"
                                "/* block\n spanning */ int b;");
    ASSERT_EQ(lexed.comments.size(), 2u);
    EXPECT_EQ(lexed.comments[0].text, " trailing note");
    EXPECT_EQ(lexed.comments[0].line, 1);
    EXPECT_EQ(lexed.comments[1].line, 2);
    EXPECT_EQ(lexed.comments[1].endLine, 3);
    for (const Token &token : lexed.tokens) {
        EXPECT_NE(token.text, "trailing");
        EXPECT_NE(token.text, "block");
    }
}

TEST(LintLexer, ConsecutiveLineCommentsMergeIntoOne)
{
    const LexResult lexed = lex("// first half\n"
                                "// second half\n"
                                "int x;\n"
                                "// separate\n");
    ASSERT_EQ(lexed.comments.size(), 2u);
    EXPECT_EQ(lexed.comments[0].line, 1);
    EXPECT_EQ(lexed.comments[0].endLine, 2);
    EXPECT_NE(lexed.comments[0].text.find("second"), std::string::npos);
    EXPECT_EQ(lexed.comments[1].line, 4);
}

TEST(LintLexer, TrailingCommentDoesNotMergeWithNextLine)
{
    const LexResult lexed = lex("int a; // about a\n"
                                "// about something else\n");
    ASSERT_EQ(lexed.comments.size(), 2u);
}

TEST(LintLexer, PreprocessorDirectivesBecomeSingleTokens)
{
    const LexResult lexed = lex("#include <unordered_map>\n"
                                "#define X(a) \\\n    (a + 1)\n"
                                "int y;");
    ASSERT_GE(lexed.tokens.size(), 3u);
    EXPECT_EQ(lexed.tokens[0].kind, TokenKind::Preprocessor);
    EXPECT_EQ(lexed.tokens[1].kind, TokenKind::Preprocessor);
    EXPECT_EQ(lexed.tokens[2].text, "int");
    // The directive's body must not produce an identifier token that a
    // rule could mistake for a declaration.
    for (std::size_t i = 2; i < lexed.tokens.size(); ++i)
        EXPECT_NE(lexed.tokens[i].text, "unordered_map");
}

TEST(LintLexer, LineNumbersSurviveMultilineConstructs)
{
    const LexResult lexed = lex("/* one\n two\n three */\n"
                                "int here;");
    ASSERT_FALSE(lexed.tokens.empty());
    EXPECT_EQ(lexed.tokens[0].text, "int");
    EXPECT_EQ(lexed.tokens[0].line, 4);
}

} // namespace
} // namespace icheck::lint
