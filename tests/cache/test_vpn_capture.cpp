/**
 * @file
 * End-to-end VPN capture (Fig 3a): the MHM must hash *virtual* addresses
 * reconstructed from the write-buffer's saved VPN plus the physical page
 * offset. The simulated machine uses a nonzero linear translation, so if
 * the MHM saw physical addresses instead, its TH would differ from a
 * software hash computed over virtual addresses — which is exactly what
 * this test cross-checks.
 */

#include <gtest/gtest.h>

#include "cache/write_buffer.hpp"
#include "hashing/state_hash.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

namespace icheck::cache
{
namespace
{

TEST(VpnCapture, TranslationIsNontrivialAndPageAligned)
{
    ASSERT_NE(physOffset, 0u)
        << "a zero offset would make this test vacuous";
    EXPECT_EQ(physOffset % vpnPageSize, 0u)
        << "page offsets must survive translation";
    EXPECT_EQ(translate(0x1234) - 0x1234, physOffset);
}

TEST(VpnCapture, MhmHashesVirtualAddresses)
{
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    cfg.schedSeed = 1;
    cfg.fpRoundingEnabled = false;
    sim::Machine machine(cfg);
    Addr target = 0;
    sim::LambdaProgram prog(
        "vpn", 1,
        [&](sim::SetupCtx &ctx) {
            target = ctx.global("x", mem::tInt64());
        },
        [&](sim::ThreadCtx &ctx) {
            ctx.store<std::int64_t>(target, 0x5a5a);
        });
    machine.run(prog);

    const hashing::StateHasher pipeline(machine.hasher(),
                                        hashing::FpRoundMode::none());
    const hashing::ModHash expected_virtual = pipeline.valueHash(
        target, 0x5a5a, 8, hashing::ValueClass::Integer);
    const hashing::ModHash wrong_physical = pipeline.valueHash(
        translate(target), 0x5a5a, 8, hashing::ValueClass::Integer);

    EXPECT_EQ(machine.threadHash(0), expected_virtual.raw())
        << "TH must reflect the virtual address";
    EXPECT_NE(machine.threadHash(0), wrong_physical.raw())
        << "hashing physical addresses would be detectable";
}

TEST(VpnCapture, CrossPageStoreReconstructsBothPages)
{
    // A store straddling a page boundary: per-byte hashing attributes
    // each byte to its own virtual address; the write-buffer entry's
    // reconstruction must keep that exact.
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    cfg.schedSeed = 1;
    sim::Machine machine(cfg);
    const Addr boundary =
        mem::staticBase + vpnPageSize - 3; // 8-byte store crosses
    sim::LambdaProgram prog(
        "cross", 1,
        [&](sim::SetupCtx &ctx) {
            ctx.global("pad",
                       mem::tArray(mem::tInt64(), vpnPageSize / 4));
        },
        [&](sim::ThreadCtx &ctx) {
            ctx.store<std::uint64_t>(boundary, 0x1122334455667788ULL);
        });
    machine.run(prog);

    const hashing::StateHasher pipeline(machine.hasher(),
                                        hashing::FpRoundMode::none());
    EXPECT_EQ(machine.threadHash(0),
              pipeline
                  .valueHash(boundary, 0x1122334455667788ULL, 8,
                             hashing::ValueClass::Integer)
                  .raw());
}

} // namespace
} // namespace icheck::cache
