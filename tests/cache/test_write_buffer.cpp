/**
 * @file
 * Write buffer: VPN capture / V_addr reconstruction (Fig 3a) and drain-
 * order freedom (Section 3.2).
 */

#include <gtest/gtest.h>
#include <vector>

#include "cache/write_buffer.hpp"
#include "hashing/location_hash.hpp"

namespace icheck::cache
{
namespace
{

WriteBufferEntry
entryFor(Addr vaddr, std::uint64_t old_bits, std::uint64_t new_bits)
{
    WriteBufferEntry entry;
    entry.paddr = translate(vaddr);
    entry.vpn = vaddr / vpnPageSize;
    entry.width = 8;
    entry.oldBits = old_bits;
    entry.newBits = new_bits;
    return entry;
}

TEST(WriteBuffer, VaddrReconstructionFromVpn)
{
    for (Addr vaddr : {Addr{0x1234}, Addr{0x10000 + 4095},
                       Addr{0xdeadb000}, Addr{7}}) {
        const WriteBufferEntry entry = entryFor(vaddr, 0, 1);
        EXPECT_EQ(entry.vaddr(), vaddr);
        EXPECT_NE(entry.paddr, vaddr)
            << "translation must be nontrivial for the test to matter";
    }
}

TEST(WriteBuffer, PushDrainsWhenFull)
{
    WriteBuffer wb(4, DrainPolicy::Fifo, 1);
    std::vector<Addr> drained;
    auto sink = [&](const WriteBufferEntry &e) {
        drained.push_back(e.vaddr());
    };
    for (Addr a = 0; a < 6; ++a)
        wb.push(entryFor(0x1000 + a * 8, 0, a), sink);
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0], 0x1000u) << "FIFO drains oldest first";
    EXPECT_EQ(wb.size(), 4u);
}

TEST(WriteBuffer, DrainAllEmpties)
{
    WriteBuffer wb(8, DrainPolicy::Lifo, 1);
    std::vector<Addr> drained;
    auto sink = [&](const WriteBufferEntry &e) {
        drained.push_back(e.vaddr());
    };
    for (Addr a = 0; a < 5; ++a)
        wb.push(entryFor(0x2000 + a * 8, 0, a), sink);
    wb.drainAll(sink);
    EXPECT_EQ(wb.size(), 0u);
    ASSERT_EQ(drained.size(), 5u);
    EXPECT_EQ(drained.front(), 0x2000u + 4 * 8) << "LIFO drains newest";
}

TEST(WriteBuffer, DrainOrderDoesNotAffectHash)
{
    // Section 3.2: entries may drain in any order without changing TH,
    // because the hash group is commutative. Run identical store streams
    // through FIFO / LIFO / Random drains and compare the summed hash.
    const hashing::Mix64LocationHasher hasher;
    auto run = [&](DrainPolicy policy, std::uint64_t seed) {
        WriteBuffer wb(4, policy, seed);
        hashing::ModHash th;
        auto sink = [&](const WriteBufferEntry &e) {
            for (unsigned i = 0; i < e.width; ++i) {
                th -= hasher.hashByte(
                    e.vaddr() + i,
                    static_cast<std::uint8_t>(e.oldBits >> (8 * i)));
                th += hasher.hashByte(
                    e.vaddr() + i,
                    static_cast<std::uint8_t>(e.newBits >> (8 * i)));
            }
        };
        std::uint64_t value = 0;
        for (Addr a = 0; a < 40; ++a) {
            const Addr addr = 0x3000 + (a % 10) * 8;
            wb.push(entryFor(addr, value, value + a + 1), sink);
            value = value + a + 1;
        }
        wb.drainAll(sink);
        return th;
    };
    const hashing::ModHash fifo = run(DrainPolicy::Fifo, 1);
    EXPECT_EQ(run(DrainPolicy::Lifo, 1), fifo);
    EXPECT_EQ(run(DrainPolicy::Random, 99), fifo);
    EXPECT_EQ(run(DrainPolicy::Random, 12345), fifo);
}

} // namespace
} // namespace icheck::cache
