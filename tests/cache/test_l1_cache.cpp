/**
 * @file
 * L1 cache model: hit/miss behaviour, write-allocate, LRU, and the
 * Section 3.1 claim that the MHM's old-value read costs no extra miss.
 */

#include <gtest/gtest.h>

#include "cache/l1_cache.hpp"

namespace icheck::cache
{
namespace
{

CacheConfig
tiny()
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.lineBytes = 64;
    cfg.associativity = 2; // 8 sets
    return cfg;
}

TEST(L1Cache, ColdMissThenHit)
{
    L1Cache cache(tiny());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1030, false).hit) << "same line";
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(L1Cache, WriteAllocates)
{
    L1Cache cache(tiny());
    EXPECT_FALSE(cache.access(0x2000, true).hit);
    EXPECT_TRUE(cache.resident(0x2000));
    EXPECT_TRUE(cache.access(0x2008, false).hit);
}

TEST(L1Cache, LruEvictsOldest)
{
    L1Cache cache(tiny());
    // Three lines mapping to the same set (set stride = 8 sets * 64 B).
    const Addr stride = 8 * 64;
    cache.access(0x0000, false);
    cache.access(0x0000 + stride, false);
    cache.access(0x0000, false); // refresh first line
    cache.access(0x0000 + 2 * stride, false); // evicts the middle line
    EXPECT_TRUE(cache.resident(0x0000));
    EXPECT_FALSE(cache.resident(0x0000 + stride));
    EXPECT_TRUE(cache.resident(0x0000 + 2 * stride));
}

TEST(L1Cache, DirtyEvictionWritesBack)
{
    L1Cache cache(tiny());
    const Addr stride = 8 * 64;
    cache.access(0x0000, true); // dirty
    cache.access(0x0000 + stride, false);
    const AccessResult result = cache.access(0x0000 + 2 * stride, false);
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(L1Cache, CleanEvictionDoesNot)
{
    L1Cache cache(tiny());
    const Addr stride = 8 * 64;
    cache.access(0x0000, false);
    cache.access(0x0000 + stride, false);
    const AccessResult result = cache.access(0x0000 + 2 * stride, false);
    EXPECT_FALSE(result.evictedDirty);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(L1Cache, ResetClearsEverything)
{
    L1Cache cache(tiny());
    cache.access(0x1000, true);
    cache.reset();
    EXPECT_FALSE(cache.resident(0x1000));
    EXPECT_EQ(cache.accesses(), 0u);
}

TEST(L1Cache, OldValueReadCostsNoExtraMiss)
{
    // The paper's key microarchitectural claim: a store brings its line in
    // anyway (write-allocate), so Data_old is available without another
    // access. In the model a store is exactly one access; this test
    // documents the invariant that reading old data adds no counter.
    L1Cache cache(tiny());
    cache.access(0x4000, true); // miss + allocate; old data now resident
    const std::uint64_t accesses = cache.accesses();
    EXPECT_TRUE(cache.resident(0x4000))
        << "Data_old readable from the resident line";
    EXPECT_EQ(cache.accesses(), accesses)
        << "resident() inspection is not an access";
}

class GeometryTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(GeometryTest, FillsWholeCapacityWithoutConflict)
{
    const auto [size, assoc] = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.lineBytes = 64;
    cfg.associativity = assoc;
    L1Cache cache(cfg);
    const std::size_t lines = size / 64;
    for (std::size_t i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    // Sequential fill of exactly capacity: every line still resident.
    for (std::size_t i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.resident(i * 64)) << "line " << i;
    EXPECT_EQ(cache.misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryTest,
    ::testing::Values(std::tuple{1024, 1}, std::tuple{1024, 2},
                      std::tuple{4096, 4}, std::tuple{32768, 8}));

} // namespace
} // namespace icheck::cache
