/**
 * @file
 * The fleet-config parser: strict field validation (the router refuses
 * to guess at a typo'd topology), plus an every-prefix truncation sweep
 * — a router reading a half-written config must always get a clean
 * error, never a partial fleet.
 */

#include <string>

#include <gtest/gtest.h>

#include "fleet/fleet_config.hpp"

namespace fleet = icheck::fleet;

namespace
{

const char *const kFullDoc =
    "{\"vnodes\":32,\"ship\":\"sync\",\"pullMaxBytes\":8192,"
    "\"pullIntervalMs\":50,\"backends\":["
    "{\"name\":\"b0\",\"socket\":\"/tmp/b0.sock\"},"
    "{\"name\":\"b1\",\"socket\":\"/tmp/b1.sock\"},"
    "{\"name\":\"b2\",\"socket\":\"/tmp/b2.sock\"}]}";

} // namespace

TEST(FleetConfig, ParsesAFullDocument)
{
    const fleet::ParsedFleetConfig parsed =
        fleet::parseFleetConfig(kFullDoc);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const fleet::FleetTopology &topology = *parsed.topology;
    ASSERT_EQ(topology.backends.size(), 3u);
    EXPECT_EQ(topology.backends[0].name, "b0");
    EXPECT_EQ(topology.backends[2].socket, "/tmp/b2.sock");
    EXPECT_EQ(topology.vnodes, 32u);
    EXPECT_TRUE(topology.syncShip);
    EXPECT_EQ(topology.pullMaxBytes, 8192u);
    EXPECT_EQ(topology.pullIntervalMs, 50);
}

TEST(FleetConfig, DefaultsApplyWhenFieldsAreOmitted)
{
    const fleet::ParsedFleetConfig parsed = fleet::parseFleetConfig(
        "{\"backends\":[{\"name\":\"solo\",\"socket\":\"/tmp/s.sock\"}]}");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.topology->vnodes, 64u);
    EXPECT_FALSE(parsed.topology->syncShip);
    EXPECT_EQ(parsed.topology->pullMaxBytes, 24576u);
    EXPECT_EQ(parsed.topology->pullIntervalMs, 20);
}

TEST(FleetConfig, RejectsUnknownFields)
{
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{\"backends\":[{\"name\":\"a\",\"socket\":\"s\"}],"
                     "\"shards\":4}")
                     .ok());
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{\"backends\":[{\"name\":\"a\",\"socket\":\"s\","
                     "\"weight\":2}]}")
                     .ok());
}

TEST(FleetConfig, RejectsMissingOrEmptyBackends)
{
    EXPECT_FALSE(fleet::parseFleetConfig("{}").ok());
    EXPECT_FALSE(fleet::parseFleetConfig("{\"backends\":[]}").ok());
    EXPECT_FALSE(fleet::parseFleetConfig("{\"backends\":7}").ok());
    EXPECT_FALSE(fleet::parseFleetConfig("[1,2]").ok());
}

TEST(FleetConfig, RejectsDuplicateNamesAndSockets)
{
    EXPECT_FALSE(
        fleet::parseFleetConfig(
            "{\"backends\":[{\"name\":\"a\",\"socket\":\"s1\"},"
            "{\"name\":\"a\",\"socket\":\"s2\"}]}")
            .ok());
    EXPECT_FALSE(
        fleet::parseFleetConfig(
            "{\"backends\":[{\"name\":\"a\",\"socket\":\"s\"},"
            "{\"name\":\"b\",\"socket\":\"s\"}]}")
            .ok());
}

TEST(FleetConfig, RejectsInvalidBackendNames)
{
    // '#' delimits vnode labels on the ring, so names cannot carry it.
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{\"backends\":[{\"name\":\"a#0\",\"socket\":\"s\"}]}")
                     .ok());
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{\"backends\":[{\"name\":\"\",\"socket\":\"s\"}]}")
                     .ok());
    const std::string long_name(65, 'x');
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{\"backends\":[{\"name\":\"" + long_name +
                     "\",\"socket\":\"s\"}]}")
                     .ok());
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{\"backends\":[{\"name\":\"a\",\"socket\":\"\"}]}")
                     .ok());
}

TEST(FleetConfig, RejectsOutOfRangeNumbers)
{
    const std::string backends =
        "\"backends\":[{\"name\":\"a\",\"socket\":\"s\"}]";
    EXPECT_FALSE(
        fleet::parseFleetConfig("{" + backends + ",\"vnodes\":0}").ok());
    EXPECT_FALSE(
        fleet::parseFleetConfig("{" + backends + ",\"vnodes\":1025}")
            .ok());
    EXPECT_FALSE(
        fleet::parseFleetConfig("{" + backends + ",\"pullMaxBytes\":63}")
            .ok());
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{" + backends + ",\"pullMaxBytes\":1048577}")
                     .ok());
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{" + backends + ",\"pullIntervalMs\":0}")
                     .ok());
    EXPECT_FALSE(fleet::parseFleetConfig(
                     "{" + backends + ",\"ship\":\"both\"}")
                     .ok());
    EXPECT_FALSE(
        fleet::parseFleetConfig("{" + backends + ",\"ship\":7}").ok());
}

TEST(FleetConfig, EveryPrefixTruncationFailsCleanly)
{
    // A JSON object is only complete at its final byte, so every
    // proper prefix must parse to an error — with a message, without
    // crashing, and without yielding a topology.
    const std::string doc = kFullDoc;
    for (std::size_t len = 0; len < doc.size(); ++len) {
        const fleet::ParsedFleetConfig parsed =
            fleet::parseFleetConfig(doc.substr(0, len));
        EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
        EXPECT_FALSE(parsed.error.empty()) << "prefix length " << len;
        EXPECT_FALSE(parsed.topology.has_value())
            << "prefix length " << len;
    }
    EXPECT_TRUE(fleet::parseFleetConfig(doc).ok());
}

TEST(FleetConfig, EveryPrefixWithTrailingGarbageAlsoFails)
{
    // The same sweep with bytes appended after the cut: a torn write
    // followed by unrelated data must not resurrect a valid parse.
    const std::string doc = kFullDoc;
    for (std::size_t len = 1; len < doc.size(); len += 7) {
        const fleet::ParsedFleetConfig parsed = fleet::parseFleetConfig(
            doc.substr(0, len) + std::string("\0garbage", 8));
        EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
    }
}
