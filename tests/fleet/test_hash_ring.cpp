/**
 * @file
 * The consistent-hash ring: ownership must be a pure function of the
 * membership set (any two routers with the same members agree), spread
 * keys roughly evenly, and remap only the dead member's share when the
 * membership changes — the property that keeps failover from
 * reshuffling work the survivors already own.
 */

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/hash_ring.hpp"

namespace fleet = icheck::fleet;

namespace
{

std::vector<std::string>
sampleKeys(int count)
{
    std::vector<std::string> keys;
    keys.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        keys.push_back("check|radix|dev|hw|s" + std::to_string(1000 + i) +
                       "|r1|i1|c8");
    return keys;
}

} // namespace

TEST(HashRing, EmptyRingOwnsNothing)
{
    fleet::HashRing ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.ownerOf("anything"), nullptr);
}

TEST(HashRing, SingleMemberOwnsEverything)
{
    fleet::HashRing ring;
    ring.add("b0");
    for (const std::string &key : sampleKeys(64)) {
        const std::string *owner = ring.ownerOf(key);
        ASSERT_NE(owner, nullptr);
        EXPECT_EQ(*owner, "b0");
    }
}

TEST(HashRing, OwnershipIsAPureFunctionOfMembership)
{
    // Two rings built in different insertion orders must agree on
    // every key: the ring is rebuilt from the membership set, so
    // history cannot leak into ownership.
    fleet::HashRing forward;
    fleet::HashRing reverse;
    const std::vector<std::string> members = {"b0", "b1", "b2", "b3"};
    for (const std::string &member : members)
        forward.add(member);
    for (auto it = members.rbegin(); it != members.rend(); ++it)
        reverse.add(*it);
    for (const std::string &key : sampleKeys(500))
        EXPECT_EQ(*forward.ownerOf(key), *reverse.ownerOf(key)) << key;
}

TEST(HashRing, SpreadIsRoughlyBalanced)
{
    fleet::HashRing ring;
    for (const std::string &member : {"b0", "b1", "b2", "b3"})
        ring.add(member);
    std::map<std::string, int> counts;
    const std::vector<std::string> keys = sampleKeys(2000);
    for (const std::string &key : keys)
        ++counts[*ring.ownerOf(key)];
    // With 64 vnodes each, every member should land within a loose
    // band around the fair share of 25%.
    for (const auto &[member, count] : counts) {
        EXPECT_GT(count, 2000 / 10) << member;
        EXPECT_LT(count, 2000 / 2) << member;
    }
    EXPECT_EQ(counts.size(), 4u);
}

TEST(HashRing, RemovalRemapsOnlyTheDeadMembersKeys)
{
    fleet::HashRing ring;
    for (const std::string &member : {"b0", "b1", "b2", "b3"})
        ring.add(member);
    const std::vector<std::string> keys = sampleKeys(2000);
    std::vector<std::string> before;
    before.reserve(keys.size());
    for (const std::string &key : keys)
        before.push_back(*ring.ownerOf(key));

    ring.remove("b2");
    int moved = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::string &after = *ring.ownerOf(keys[i]);
        EXPECT_NE(after, "b2");
        if (before[i] == "b2") {
            ++moved;
        } else {
            // Survivors keep every key they already owned.
            EXPECT_EQ(after, before[i]) << keys[i];
        }
    }
    // Exactly the dead member's share moved: ~1/4 of the keys, within
    // a generous band for hash variance.
    EXPECT_GT(moved, 2000 / 10);
    EXPECT_LT(moved, 2000 / 2);
}

TEST(HashRing, AdditionStealsOnlyForTheNewMember)
{
    fleet::HashRing ring;
    for (const std::string &member : {"b0", "b1", "b2"})
        ring.add(member);
    const std::vector<std::string> keys = sampleKeys(1500);
    std::vector<std::string> before;
    before.reserve(keys.size());
    for (const std::string &key : keys)
        before.push_back(*ring.ownerOf(key));

    ring.add("b3");
    int stolen = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::string &after = *ring.ownerOf(keys[i]);
        if (after != before[i]) {
            // Every moved key moved to the newcomer, never sideways.
            EXPECT_EQ(after, "b3") << keys[i];
            ++stolen;
        }
    }
    EXPECT_GT(stolen, 1500 / 10);
    EXPECT_LT(stolen, 1500 / 2);
}

TEST(HashRing, RemoveThenReaddRestoresOwnership)
{
    fleet::HashRing ring;
    for (const std::string &member : {"b0", "b1", "b2"})
        ring.add(member);
    const std::vector<std::string> keys = sampleKeys(300);
    std::vector<std::string> before;
    before.reserve(keys.size());
    for (const std::string &key : keys)
        before.push_back(*ring.ownerOf(key));
    ring.remove("b1");
    ring.add("b1");
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(*ring.ownerOf(keys[i]), before[i]) << keys[i];
}

TEST(HashRing, MembershipQueries)
{
    fleet::HashRing ring(8);
    EXPECT_EQ(ring.vnodesPerMember(), 8u);
    ring.add("b0");
    ring.add("b1");
    EXPECT_TRUE(ring.contains("b0"));
    EXPECT_FALSE(ring.contains("bX"));
    EXPECT_EQ(ring.memberCount(), 2u);
    ring.remove("b0");
    EXPECT_FALSE(ring.contains("b0"));
    EXPECT_EQ(ring.memberCount(), 1u);
    // Removing an absent member is a no-op, not an error.
    ring.remove("b0");
    EXPECT_EQ(ring.memberCount(), 1u);
}
