/**
 * @file
 * Router request handling that must work without any live backend:
 * local ping, reserved-id policing, backend-internal op rejection,
 * malformed lines, and the no-owner error path. The full data path
 * (sharding, shipping, failover) is exercised end-to-end by the
 * fleet_identity_* and fleet-smoke harness tests, which spawn real
 * backends.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/fleet_config.hpp"
#include "fleet/router.hpp"

namespace fleet = icheck::fleet;

namespace
{

fleet::FleetTopology
twoBackendTopology()
{
    fleet::FleetTopology topology;
    topology.backends.push_back(
        fleet::BackendAddress{"b0", "/nonexistent/b0.sock"});
    topology.backends.push_back(
        fleet::BackendAddress{"b1", "/nonexistent/b1.sock"});
    return topology;
}

/** handleClientLine responds synchronously on these local paths. */
std::string
ask(fleet::Router &router, const std::string &line)
{
    std::string response;
    router.handleClientLine(
        line, [&response](const std::string &r) { response = r; });
    return response;
}

} // namespace

TEST(RouterLocal, AnswersPingWithoutBackends)
{
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    const std::string response =
        ask(router, "{\"id\":\"p1\",\"op\":\"ping\"}");
    // Byte-identical to a backend's pong: the router is transparent
    // even for the one op it answers itself.
    EXPECT_EQ(response,
              "{\"id\":\"p1\",\"status\":\"ok\",\"pong\":true}");
}

TEST(RouterLocal, RejectsReservedIdPrefix)
{
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    const std::string response = ask(
        router, "{\"id\":\"__fleet:evil\",\"op\":\"ping\"}");
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(response.find("reserved"), std::string::npos);
    EXPECT_EQ(router.stats().protocolErrors, 1u);
}

TEST(RouterLocal, RejectsBackendInternalOps)
{
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    for (const char *line :
         {"{\"id\":\"x1\",\"op\":\"pull\",\"from\":0}",
          "{\"id\":\"x2\",\"op\":\"install\",\"frames\":\"\"}"}) {
        const std::string response = ask(router, line);
        EXPECT_NE(response.find("\"status\":\"error\""),
                  std::string::npos)
            << line;
        EXPECT_NE(response.find("backend-internal"), std::string::npos)
            << line;
    }
}

TEST(RouterLocal, RejectsMalformedLines)
{
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    for (const char *line :
         {"not json", "{\"op\":\"ping\"}", "{\"id\":\"a\"}",
          "{\"id\":\"a\",\"op\":\"launch\"}"}) {
        const std::string response = ask(router, line);
        EXPECT_NE(response.find("\"status\":\"error\""),
                  std::string::npos)
            << line;
    }
    EXPECT_EQ(router.stats().protocolErrors, 4u);
}

TEST(RouterLocal, ChecksFailCleanlyWithAnEmptyRing)
{
    // start() was never called, so no backend ever joined the ring:
    // a check must get a crisp error, not a hang or a crash.
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    const std::string response = ask(
        router,
        "{\"id\":\"c1\",\"op\":\"check\",\"app\":\"radix\",\"runs\":4}");
    EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(response.find("no live backend"), std::string::npos);
}

TEST(RouterLocal, StatsReportZeroAliveBackends)
{
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    const std::string response =
        ask(router, "{\"id\":\"s1\",\"op\":\"stats\"}");
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(response.find("\"backends\":2"), std::string::npos);
    EXPECT_NE(response.find("\"aliveBackends\":0"), std::string::npos);
}

TEST(RouterLocal, StartFailsWhenABackendIsUnreachable)
{
    fleet::Router router(twoBackendTopology(), "/nonexistent/router.sock");
    EXPECT_FALSE(router.start());
}
