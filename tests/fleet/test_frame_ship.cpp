/**
 * @file
 * The log-shipping substrate: CRC frame encode/decode, hex armoring,
 * and the ResultStore readLog/install round trip the router's replica
 * path is built on. Every hop re-verifies frame CRCs, so a corrupt or
 * torn log must decode to exactly the intact prefix — silently
 * ingesting a damaged frame would poison the replica.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/frame.hpp"
#include "service/result_store.hpp"

namespace service = icheck::service;

namespace
{

std::string
threeFrameLog()
{
    return service::encodeFrame("check|radix#u0", "payload-zero") +
           service::encodeFrame("check|radix#log", "the log body") +
           service::encodeFrame("resp#c1",
                                "check|radix\n{\"id\":\"c1\"}");
}

} // namespace

TEST(FrameShip, EncodeDecodeRoundTrip)
{
    const std::string log = threeFrameLog();
    std::vector<service::Frame> frames;
    bool corrupt = true;
    const std::size_t consumed =
        service::decodeFrames(log, frames, &corrupt);
    EXPECT_EQ(consumed, log.size());
    EXPECT_FALSE(corrupt);
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].key, "check|radix#u0");
    EXPECT_EQ(frames[0].payload, "payload-zero");
    EXPECT_EQ(frames[2].key, "resp#c1");
    EXPECT_EQ(frames[2].payload, "check|radix\n{\"id\":\"c1\"}");
}

TEST(FrameShip, EmptyPayloadRoundTrip)
{
    // Keys must be non-empty (the codec asserts), but a zero-byte
    // payload is a legal frame and must survive the trip.
    const std::string log = service::encodeFrame("k#u0", "");
    std::vector<service::Frame> frames;
    bool corrupt = true;
    EXPECT_EQ(service::decodeFrames(log, frames, &corrupt), log.size());
    EXPECT_FALSE(corrupt);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].key, "k#u0");
    EXPECT_TRUE(frames[0].payload.empty());
}

TEST(FrameShip, EveryTruncationDecodesTheIntactPrefixOnly)
{
    // A torn tail (power loss, mid-ship kill) is not corruption: the
    // decoder must consume exactly the whole frames before the tear
    // and report a clean stop.
    const std::string log = threeFrameLog();
    const std::string f0 = service::encodeFrame("check|radix#u0",
                                                "payload-zero");
    const std::string f1 = service::encodeFrame("check|radix#log",
                                                "the log body");
    for (std::size_t len = 0; len < log.size(); ++len) {
        std::vector<service::Frame> frames;
        bool corrupt = true;
        const std::size_t consumed = service::decodeFrames(
            std::string_view(log.data(), len), frames, &corrupt);
        EXPECT_FALSE(corrupt) << "truncation at " << len;
        std::size_t expect_frames = 0;
        std::size_t expect_consumed = 0;
        if (len >= f0.size() + f1.size()) {
            expect_frames = 2;
            expect_consumed = f0.size() + f1.size();
        } else if (len >= f0.size()) {
            expect_frames = 1;
            expect_consumed = f0.size();
        }
        EXPECT_EQ(frames.size(), expect_frames) << "truncation at " << len;
        EXPECT_EQ(consumed, expect_consumed) << "truncation at " << len;
    }
}

TEST(FrameShip, CorruptPayloadByteSetsTheCorruptFlag)
{
    std::string log = threeFrameLog();
    // Flip one byte inside the first frame's payload region.
    log[service::frameHeaderBytes + 15] ^= 0x40;
    std::vector<service::Frame> frames;
    bool corrupt = false;
    const std::size_t consumed =
        service::decodeFrames(log, frames, &corrupt);
    EXPECT_TRUE(corrupt);
    EXPECT_TRUE(frames.empty());
    EXPECT_EQ(consumed, 0u);
}

TEST(FrameShip, BadMagicSetsTheCorruptFlag)
{
    std::string log = threeFrameLog();
    log[0] ^= 0xFF;
    std::vector<service::Frame> frames;
    bool corrupt = false;
    service::decodeFrames(log, frames, &corrupt);
    EXPECT_TRUE(corrupt);
    EXPECT_TRUE(frames.empty());
}

TEST(FrameShip, MidLogCorruptionKeepsTheCleanPrefix)
{
    const std::string f0 = service::encodeFrame("a#u0", "first");
    std::string log = f0 + service::encodeFrame("b#u0", "second");
    log[f0.size() + 2] ^= 0x01; // Damage the second frame's header.
    std::vector<service::Frame> frames;
    bool corrupt = false;
    const std::size_t consumed =
        service::decodeFrames(log, frames, &corrupt);
    EXPECT_TRUE(corrupt);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].payload, "first");
    EXPECT_EQ(consumed, f0.size());
}

TEST(FrameShip, HexArmorRoundTrips)
{
    const std::string log = threeFrameLog();
    const std::string hex = service::hexEncode(log);
    EXPECT_EQ(hex.size(), log.size() * 2);
    const auto decoded = service::hexDecode(hex);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, log);
}

TEST(FrameShip, HexDecodeRejectsBadInput)
{
    EXPECT_FALSE(service::hexDecode("abc").has_value());  // Odd length.
    EXPECT_FALSE(service::hexDecode("zz").has_value());   // Not hex.
    EXPECT_FALSE(service::hexDecode("4 ").has_value());
    const auto empty = service::hexDecode("");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());
}

TEST(FrameShip, ReadLogPagesWholeFramesFromAnyBoundary)
{
    service::ResultStore store;
    store.put("k0", "payload-0");
    store.put("k1", std::string(300, 'x'));
    store.put("k2", "payload-2");

    // Page with a max_bytes smaller than the big middle frame: each
    // call must still return at least one whole frame and advance the
    // cursor to a frame boundary.
    std::uint64_t cursor = 0;
    bool eof = false;
    std::vector<service::Frame> collected;
    while (!eof) {
        std::uint64_t next = 0;
        const std::string chunk = store.readLog(cursor, 64, next, eof);
        if (!chunk.empty()) {
            bool corrupt = false;
            std::vector<service::Frame> frames;
            EXPECT_EQ(service::decodeFrames(chunk, frames, &corrupt),
                      chunk.size());
            EXPECT_FALSE(corrupt);
            collected.insert(collected.end(), frames.begin(),
                             frames.end());
        }
        EXPECT_GE(next, cursor);
        cursor = next;
    }
    ASSERT_EQ(collected.size(), 3u);
    EXPECT_EQ(collected[0].key, "k0");
    EXPECT_EQ(collected[1].payload, std::string(300, 'x'));
    EXPECT_EQ(cursor, store.logBytes());
}

TEST(FrameShip, ReadLogRejectsNonBoundaryCursors)
{
    service::ResultStore store;
    store.put("k0", "payload");
    std::uint64_t next = 0;
    bool eof = false;
    EXPECT_THROW(store.readLog(3, 4096, next, eof),
                 service::StoreError);
    EXPECT_THROW(store.readLog(store.logBytes() + 8, 4096, next, eof),
                 service::StoreError);
}

TEST(FrameShip, ShipAndInstallReplicatesAStoreExactly)
{
    // The full replica path in miniature: read the source log, armor
    // it, unarmor it, decode, install into a fresh store — every key
    // answers identically and duplicate installs are no-ops.
    service::ResultStore source;
    source.put("check|radix#u0", "unit zero");
    source.put("check|radix#log", "log bytes");
    source.put("resp#c1", "check|radix\nresponse line");

    std::uint64_t next = 0;
    bool eof = false;
    const std::string log =
        source.readLog(0, 1 << 20, next, eof);
    EXPECT_TRUE(eof);

    const auto unarmored = service::hexDecode(service::hexEncode(log));
    ASSERT_TRUE(unarmored.has_value());
    std::vector<service::Frame> frames;
    bool corrupt = false;
    service::decodeFrames(*unarmored, frames, &corrupt);
    ASSERT_FALSE(corrupt);
    ASSERT_EQ(frames.size(), 3u);

    service::ResultStore replica;
    for (const service::Frame &frame : frames)
        EXPECT_TRUE(replica.put(frame.key, frame.payload));
    for (const service::Frame &frame : frames)
        EXPECT_FALSE(replica.put(frame.key, frame.payload));

    for (const char *key :
         {"check|radix#u0", "check|radix#log", "resp#c1"}) {
        const auto expected = source.get(key);
        const auto got = replica.get(key);
        ASSERT_TRUE(expected.has_value());
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, *expected) << key;
    }
    EXPECT_EQ(replica.logBytes(), source.logBytes());
}
