/**
 * @file
 * Router behavior against a scripted fake backend: the sync-ship
 * hold/witness protocol (a pull already in flight when a response is
 * held predates its frames and must not flush it), the death paths a
 * SIGKILLed backend exercises (writes surface as EPIPE, never a
 * process-fatal SIGPIPE), and fd hygiene when start() fails partway.
 * The fake backend owns the wire verbatim, so each interleaving is
 * forced rather than raced.
 */

#include <chrono>
#include <cstring>
#include <future>
#include <string>

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "fleet/fleet_config.hpp"
#include "fleet/router.hpp"

namespace fleet = icheck::fleet;

namespace
{

/**
 * A hand-driven `icheck serve` stand-in: listens on a Unix socket,
 * accepts the router's single connection, and lets the test read and
 * write protocol lines in an exact order.
 */
class FakeBackend
{
  public:
    explicit FakeBackend(std::string socket_path)
        : path(std::move(socket_path))
    {
    }

    ~FakeBackend()
    {
        closeConn();
        if (listener >= 0)
            ::close(listener);
        ::unlink(path.c_str());
    }

    bool
    listen()
    {
        listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listener < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof addr.sun_path)
            return false;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(path.c_str());
        return ::bind(listener,
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0 &&
               ::listen(listener, 4) == 0;
    }

    bool
    acceptOne()
    {
        conn = ::accept(listener, nullptr, nullptr);
        return conn >= 0;
    }

    /** Next '\n'-terminated line, or "" after @p timeout_ms idle. */
    std::string
    readLine(int timeout_ms = 5000)
    {
        while (true) {
            const std::size_t newline = buffer.find('\n');
            if (newline != std::string::npos) {
                std::string line = buffer.substr(0, newline);
                buffer.erase(0, newline + 1);
                return line;
            }
            pollfd pfd{conn, POLLIN, 0};
            if (::poll(&pfd, 1, timeout_ms) <= 0)
                return {};
            char chunk[4096];
            const ssize_t n = ::read(conn, chunk, sizeof chunk);
            if (n <= 0)
                return {};
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

    bool
    sendLine(const std::string &line)
    {
        std::string framed = line;
        framed += '\n';
        std::size_t written = 0;
        while (written < framed.size()) {
            const ssize_t n =
                ::send(conn, framed.data() + written,
                       framed.size() - written, MSG_NOSIGNAL);
            if (n < 0)
                return false;
            written += static_cast<std::size_t>(n);
        }
        return true;
    }

    void
    closeConn()
    {
        if (conn >= 0)
            ::close(conn);
        conn = -1;
    }

  private:
    std::string path;
    int listener = -1;
    int conn = -1;
    std::string buffer;
};

std::string
socketPath(const char *tag)
{
    return "/tmp/icheck_rs_" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
}

fleet::FleetTopology
oneBackendTopology(const std::string &socket, bool sync_ship)
{
    fleet::FleetTopology topology;
    topology.backends.push_back(fleet::BackendAddress{"b0", socket});
    topology.syncShip = sync_ship;
    return topology;
}

std::size_t
countOpenFds()
{
    std::size_t count = 0;
    DIR *dir = ::opendir("/proc/self/fd");
    if (dir == nullptr)
        return 0;
    while (::readdir(dir) != nullptr)
        ++count;
    ::closedir(dir);
    return count;
}

constexpr const char *checkLine =
    "{\"id\":\"c1\",\"op\":\"check\",\"app\":\"radix\",\"runs\":4}";

std::string
pullEofResponse(std::uint64_t next)
{
    return "{\"id\":\"__fleet:pull\",\"status\":\"ok\",\"next\":" +
           std::to_string(next) + ",\"eof\":true,\"frames\":\"\"}";
}

} // namespace

TEST(RouterShip, StaleMidflightPullCannotFlushASyncShipHold)
{
    const std::string path = socketPath("stale");
    FakeBackend backend(path);
    ASSERT_TRUE(backend.listen());

    fleet::Router router(oneBackendTopology(path, /*sync_ship=*/true),
                         "/nonexistent/router.sock");
    ASSERT_TRUE(router.start());
    ASSERT_TRUE(backend.acceptOne());

    // The shipper's first pull goes out before any check exists — from
    // the backend's point of view, before any frames were appended.
    const std::string stale_pull = backend.readLine();
    ASSERT_NE(stale_pull.find("\"op\":\"pull\""), std::string::npos);

    std::promise<std::string> answered;
    std::future<std::string> response = answered.get_future();
    router.handleClientLine(checkLine,
                            [&answered](const std::string &line) {
                                answered.set_value(line);
                            });
    const std::string forwarded = backend.readLine();
    ASSERT_NE(forwarded.find("\"op\":\"check\""), std::string::npos);

    // Answer the check first (the hold registers while the stale pull
    // is still in flight), then let the stale pull report eof. The
    // router's reader consumes both lines in this order.
    const std::string check_response =
        "{\"id\":\"c1\",\"status\":\"ok\",\"fake\":true}";
    ASSERT_TRUE(backend.sendLine(check_response));
    ASSERT_TRUE(backend.sendLine(pullEofResponse(0)));

    // The stale pull was sent before the check's frames existed, so its
    // eof proves nothing about them: the hold must survive it and a
    // fresh witness pull must go out instead.
    const std::string witness_pull = backend.readLine();
    ASSERT_NE(witness_pull.find("\"op\":\"pull\""), std::string::npos);
    EXPECT_EQ(response.wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout)
        << "sync-ship hold flushed on a pull that predates its frames";

    // Only the witness pull's eof releases the response, verbatim.
    ASSERT_TRUE(backend.sendLine(pullEofResponse(0)));
    ASSERT_EQ(response.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    EXPECT_EQ(response.get(), check_response);
}

TEST(RouterShip, DeadBackendAnswersWithAnErrorNotASignal)
{
    const std::string path = socketPath("dead");
    FakeBackend backend(path);
    ASSERT_TRUE(backend.listen());

    fleet::Router router(oneBackendTopology(path, /*sync_ship=*/false),
                         "/nonexistent/router.sock");
    ASSERT_TRUE(router.start());
    ASSERT_TRUE(backend.acceptOne());
    // Simulate a SIGKILLed backend. The forwarding write then fails
    // with EPIPE — before MSG_NOSIGNAL it raised SIGPIPE and killed
    // the whole process (this test binary included).
    backend.closeConn();

    std::promise<std::string> answered;
    std::future<std::string> response = answered.get_future();
    router.handleClientLine(checkLine,
                            [&answered](const std::string &line) {
                                answered.set_value(line);
                            });
    // Whichever of the dispatcher or the reader's failover observes the
    // death first must answer — an error, never a hang or a crash.
    ASSERT_EQ(response.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    EXPECT_NE(response.get().find("\"status\":\"error\""),
              std::string::npos);
}

TEST(RouterShip, FailedStartClosesTheBackendsThatDidConnect)
{
    const std::string path = socketPath("leak");
    FakeBackend backend(path);
    ASSERT_TRUE(backend.listen());

    fleet::FleetTopology topology =
        oneBackendTopology(path, /*sync_ship=*/false);
    topology.backends.push_back(
        fleet::BackendAddress{"b1", "/nonexistent/b1.sock"});

    const std::size_t fds_before = countOpenFds();
    fleet::Router router(std::move(topology),
                         "/nonexistent/router.sock");
    EXPECT_FALSE(router.start());
    // b0's connected socket must not outlive the failed start: stop()
    // never runs on this path (started stays false).
    EXPECT_EQ(countOpenFds(), fds_before);
}
