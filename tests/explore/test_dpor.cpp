/**
 * @file
 * Dynamic partial-order reduction: the branch ledger's exactly-once
 * claims, sleep-set wake tracking, and the explorer-level guarantees —
 * DPOR visits one representative schedule per Mazurkiewicz trace while
 * finding exactly the final states exhaustive enumeration finds.
 */

#include <gtest/gtest.h>
#include <memory>

#include "explore/dpor.hpp"
#include "explore/explorer.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::explore
{
namespace
{

using sim::LambdaProgram;

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

ExploreConfig
exploreConfig(PruneMode mode, bool dpor)
{
    ExploreConfig cfg;
    cfg.prune = mode;
    cfg.dpor = dpor;
    cfg.maxRuns = 20000;
    cfg.quantum = 1;
    return cfg;
}

/** Figure 1 without the lock: racy, multiple final states. */
check::ProgramFactory
figure1Racy()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "fig1racy", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
            });
    };
}

/** Figure 1 with the lock: both acquisition orders reach G == 12. */
check::ProgramFactory
figure1Locked()
{
    return [] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "fig1", 2,
            [mutex_id](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
                ctx.unlock(*mutex_id);
            });
    };
}

/** Three threads writing three disjoint globals: every schedule commutes. */
check::ProgramFactory
disjointWriters()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "disjoint", 3,
            [](sim::SetupCtx &ctx) {
                ctx.init<std::int64_t>(ctx.global("A", mem::tInt64()), 0);
                ctx.init<std::int64_t>(ctx.global("B", mem::tInt64()), 0);
                ctx.init<std::int64_t>(ctx.global("C", mem::tInt64()), 0);
            },
            [](sim::ThreadCtx &ctx) {
                const char *names[] = {"A", "B", "C"};
                const Addr mine = ctx.global(names[ctx.tid()]);
                for (int i = 0; i < 1; ++i) {
                    const auto v = ctx.load<std::int64_t>(mine);
                    ctx.store<std::int64_t>(mine, v + 1);
                }
            });
    };
}

// ---------------------------------------------------------------------------
// BranchLedger

TEST(BranchLedger, ClaimsAreExactlyOnce)
{
    BranchLedger ledger;
    const std::uint32_t path[] = {0, 1, 0};
    EXPECT_TRUE(ledger.claim(path, 3, 2));
    EXPECT_FALSE(ledger.claim(path, 3, 2)) << "second claim must lose";
    EXPECT_TRUE(ledger.claim(path, 3, 1)) << "other child of same point";
    EXPECT_TRUE(ledger.claim(path, 2, 2)) << "other branch point (len)";
}

TEST(BranchLedger, PrefixContentDistinguishesClaims)
{
    // Same length, same choice, different history: both must win —
    // a hash collision mapping them together would drop coverage.
    BranchLedger ledger;
    const std::uint32_t a[] = {0, 1};
    const std::uint32_t b[] = {0, 2};
    EXPECT_TRUE(ledger.claim(a, 2, 0));
    EXPECT_TRUE(ledger.claim(b, 2, 0));
    EXPECT_FALSE(ledger.claim(a, 2, 0));
    EXPECT_FALSE(ledger.claim(b, 2, 0));
}

TEST(BranchLedger, EmptyPrefixIsAValidBranchPoint)
{
    BranchLedger ledger;
    EXPECT_TRUE(ledger.claim(nullptr, 0, 0));
    EXPECT_FALSE(ledger.claim(nullptr, 0, 0));
    EXPECT_TRUE(ledger.claim(nullptr, 0, 1));
}

// ---------------------------------------------------------------------------
// SleepEval

TEST(SleepEval, ThreadWakesWhenScheduled)
{
    detail::SleepSet sleep;
    sleep.push_back({/*tid=*/1, {{0x1000, true}}});

    race::SliceHb hb(2);
    hb.closeSlice(2, race::SliceHb::noIndex);
    hb.record(race::SliceHb::Op::Write, 0x9999); // disjoint object
    hb.closeSlice(1, 0); // the sleeping thread itself runs at decision 0

    SleepEval eval;
    eval.reset(&sleep, /*branch_decision=*/0);
    eval.advance(hb);
    const std::vector<std::size_t> wake = eval.takeWakeAt();
    ASSERT_EQ(wake.size(), 1u);
    EXPECT_EQ(wake[0], 0u);
}

TEST(SleepEval, ConflictingSliceWakesTheEntry)
{
    detail::SleepSet sleep;
    sleep.push_back({/*tid=*/1, {{0x1000, true}}});

    race::SliceHb hb(2);
    hb.closeSlice(2, race::SliceHb::noIndex);
    hb.record(race::SliceHb::Op::Write, 0x2000);
    hb.closeSlice(0, 0); // disjoint: no wake
    hb.record(race::SliceHb::Op::Read, 0x1000);
    hb.closeSlice(0, 1); // reads the entry's pending write target: wake

    SleepEval eval;
    eval.reset(&sleep, 0);
    eval.advance(hb);
    const std::vector<std::size_t> wake = eval.takeWakeAt();
    ASSERT_EQ(wake.size(), 1u);
    EXPECT_EQ(wake[0], 1u);
}

TEST(SleepEval, DisjointRunNeverWakes)
{
    detail::SleepSet sleep;
    sleep.push_back({/*tid=*/1, {{0x1000, false}}});

    race::SliceHb hb(2);
    hb.closeSlice(2, race::SliceHb::noIndex);
    hb.record(race::SliceHb::Op::Read, 0x1000); // read-read: no conflict
    hb.closeSlice(0, 0);
    hb.record(race::SliceHb::Op::Write, 0x2000);
    hb.closeSlice(0, 1);

    SleepEval eval;
    eval.reset(&sleep, 0);
    eval.advance(hb);
    EXPECT_EQ(eval.takeWakeAt()[0], noDecision);
}

TEST(SleepEval, SlicesBeforeTheBranchCannotWake)
{
    // Replayed prefix slices were already accounted for when the sleep
    // set was inherited; only slices at or past the branch may wake.
    detail::SleepSet sleep;
    sleep.push_back({/*tid=*/1, {{0x1000, true}}});

    race::SliceHb hb(2);
    hb.closeSlice(2, race::SliceHb::noIndex);
    hb.record(race::SliceHb::Op::Write, 0x1000);
    hb.closeSlice(0, 0); // conflicting, but decision 0 < branch 2
    hb.record(race::SliceHb::Op::Write, 0x1000);
    hb.closeSlice(0, 3); // past the branch: wakes

    SleepEval eval;
    eval.reset(&sleep, /*branch_decision=*/2);
    eval.advance(hb);
    EXPECT_EQ(eval.takeWakeAt()[0], 3u);
}

TEST(SleepEval, FoldActiveDistinguishesSleepSets)
{
    detail::SleepSet one;
    one.push_back({1, {}});
    detail::SleepSet two;
    two.push_back({1, {}});
    two.push_back({2, {}});

    SleepEval a, b, c;
    a.reset(&one, 0);
    b.reset(&two, 0);
    c.reset(nullptr, 0);
    const std::uint64_t seed = 0xfeed;
    EXPECT_NE(a.foldActive(seed), b.foldActive(seed));
    EXPECT_NE(a.foldActive(seed), c.foldActive(seed));
    EXPECT_EQ(c.foldActive(seed), seed) << "empty set folds nothing";
}

// ---------------------------------------------------------------------------
// Explorer-level DPOR

TEST(Dpor, FindsAllFinalStatesOfTheRacyProgram)
{
    const ExploreResult full =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(PruneMode::None, false));
    const ExploreResult dpor =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(PruneMode::None, true));
    ASSERT_TRUE(full.exhausted);
    ASSERT_TRUE(dpor.exhausted);
    EXPECT_EQ(dpor.finalStates, full.finalStates);
    EXPECT_LT(dpor.runsExecuted, full.runsExecuted)
        << "reduction must actually reduce on the racy program";
    EXPECT_GT(dpor.stats.backtracksInserted, 0u);
    EXPECT_TRUE(dpor.stats.dporActive);
    EXPECT_EQ(dpor.stats.tracesExplored,
              static_cast<std::uint64_t>(dpor.runsExecuted));
}

TEST(Dpor, LockedProgramStillExploresBothAcquisitionOrders)
{
    const ExploreResult full =
        explore(figure1Locked(), machineConfig(),
                exploreConfig(PruneMode::None, false));
    const ExploreResult dpor =
        explore(figure1Locked(), machineConfig(),
                exploreConfig(PruneMode::None, true));
    ASSERT_TRUE(dpor.exhausted);
    EXPECT_EQ(dpor.finalStates, full.finalStates);
    EXPECT_GT(dpor.stats.dporRaces, 0u)
        << "acquire-acquire contention must be visible to DPOR";
}

TEST(Dpor, DisjointWritersCollapseToOneTrace)
{
    // No two slices conflict, so every interleaving is one Mazurkiewicz
    // trace: DPOR must finish after exactly the first run. The unreduced
    // space is combinatorial in the step count, so give it headroom.
    ExploreConfig fullCfg = exploreConfig(PruneMode::None, false);
    fullCfg.maxRuns = 60000;
    const ExploreResult full =
        explore(disjointWriters(), machineConfig(), fullCfg);
    const ExploreResult dpor =
        explore(disjointWriters(), machineConfig(),
                exploreConfig(PruneMode::None, true));
    ASSERT_TRUE(full.exhausted);
    ASSERT_TRUE(dpor.exhausted);
    EXPECT_EQ(dpor.runsExecuted, 1);
    EXPECT_EQ(dpor.finalStates, full.finalStates);
    EXPECT_GT(full.runsExecuted, 100)
        << "the unreduced space must be non-trivial for this to mean "
           "anything";
}

class DporComposability : public ::testing::TestWithParam<PruneMode>
{
};

TEST_P(DporComposability, SameFinalStatesOnAnyBaseMode)
{
    const ExploreResult baseline =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(PruneMode::None, false));
    const ExploreResult layered =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(GetParam(), true));
    ASSERT_TRUE(layered.exhausted);
    EXPECT_EQ(layered.finalStates, baseline.finalStates);
}

INSTANTIATE_TEST_SUITE_P(Modes, DporComposability,
                         ::testing::Values(PruneMode::None,
                                           PruneMode::HappensBefore,
                                           PruneMode::StateHash));

TEST(Dpor, ColdAndCheckpointedSearchesAreIdentical)
{
    ExploreConfig warm = exploreConfig(PruneMode::None, true);
    ExploreConfig cold = warm;
    cold.checkpoints = false;
    const ExploreResult a =
        explore(figure1Racy(), machineConfig(), warm);
    const ExploreResult b =
        explore(figure1Racy(), machineConfig(), cold);
    EXPECT_EQ(a.runsExecuted, b.runsExecuted);
    EXPECT_EQ(a.finalStates, b.finalStates);
    EXPECT_EQ(a.branchesPruned, b.branchesPruned);
    EXPECT_EQ(a.stats.backtracksInserted, b.stats.backtracksInserted);
    EXPECT_EQ(a.stats.sleepSetHits, b.stats.sleepSetHits);
    EXPECT_EQ(a.stats.dporRaces, b.stats.dporRaces);
}

TEST(Dpor, StatsJsonCarriesTheDporCounters)
{
    const ExploreResult dpor =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(PruneMode::None, true));
    const std::string json = renderStatsJson(dpor.stats);
    EXPECT_NE(json.find("\"dpor\": true"), std::string::npos);
    EXPECT_NE(json.find("\"traces_explored\": "), std::string::npos);
    EXPECT_NE(json.find("\"backtracks_inserted\": "), std::string::npos);
    EXPECT_NE(json.find("\"sleep_set_hits\": "), std::string::npos);
    EXPECT_NE(json.find("\"dpor_pruned\": "), std::string::npos);
}

TEST(Dpor, RespectsMaxRuns)
{
    ExploreConfig cfg = exploreConfig(PruneMode::None, true);
    cfg.maxRuns = 1;
    const ExploreResult result =
        explore(figure1Racy(), machineConfig(), cfg);
    EXPECT_EQ(result.runsExecuted, 1);
    EXPECT_FALSE(result.exhausted);
}

} // namespace
} // namespace icheck::explore
