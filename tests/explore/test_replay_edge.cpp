/**
 * @file
 * Replay edge cases: empty partial logs, logs longer than the run they
 * replay, and hash-verified replay resumed from a restored machine
 * checkpoint instead of a cold start.
 */

#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <vector>

#include "explore/replay.hpp"
#include "hashing/mod_hash.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/sched.hpp"

namespace icheck::explore
{
namespace
{

using sim::LambdaProgram;

/** Racy two-thread increments; final state depends on the schedule. */
check::ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "replay-edge-racy", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                for (int i = 0; i < 4; ++i) {
                    const auto g =
                        ctx.load<std::int64_t>(ctx.global("G"));
                    ctx.store<std::int64_t>(ctx.global("G"),
                                            g * 2 + local);
                }
            });
    };
}

/** Disjoint per-thread slots: every schedule reaches the same state. */
check::ProgramFactory
deterministicFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "replay-edge-det", 2,
            [](sim::SetupCtx &ctx) {
                ctx.global("slots", mem::tArray(mem::tInt64(), 2));
            },
            [](sim::ThreadCtx &ctx) {
                const Addr mine = ctx.global("slots") + 8 * ctx.tid();
                for (int i = 0; i < 4; ++i) {
                    const auto v = ctx.load<std::int64_t>(mine);
                    ctx.store<std::int64_t>(mine, v + ctx.tid() + 1);
                }
            });
    };
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    cfg.minQuantum = 2;
    cfg.maxQuantum = 2; // fixed quantum: choices alone define a schedule
    return cfg;
}

/** The hash recordRun() stores: modular sum of all thread hashes. */
HashWord
finalHash(const sim::Machine &machine)
{
    hashing::ModHash sum;
    for (ThreadId t = 0; t < machine.numThreads(); ++t)
        sum += hashing::ModHash(machine.threadHash(t));
    return sum.raw();
}

TEST(ReplayEdge, EmptyPartialLogIsPureRandomSearch)
{
    const ScheduleLog log =
        recordRun(deterministicFactory(), machineConfig(), /*seed=*/11);

    // prefix_fraction 0 keeps nothing of the log: the search runs free,
    // and must still verify via the recorded hash. The program is
    // schedule-independent, so the very first attempt reproduces it.
    const ReplaySearchResult result = searchReplay(
        deterministicFactory(), machineConfig(), log,
        /*prefix_fraction=*/0.0, /*max_attempts=*/4);
    EXPECT_TRUE(result.reproduced);
    EXPECT_EQ(result.attempts, 1);
}

TEST(ReplayEdge, LogWithNoChoicesReplaysRandomly)
{
    // A literally empty log (no decisions recorded at all) must not
    // trip replay: every decision falls through to the seeded suffix.
    ScheduleLog empty;
    empty.finalStateHash = replayExact(deterministicFactory(),
                                       machineConfig(), empty);

    // For the deterministic program the reached hash matches any
    // recorded run, making the empty log a valid (if vacuous) log.
    const ScheduleLog recorded =
        recordRun(deterministicFactory(), machineConfig(), /*seed=*/3);
    EXPECT_EQ(empty.finalStateHash, recorded.finalStateHash);

    // Round-trip through the text format with zero entries.
    const ScheduleLog parsed = ScheduleLog::deserialize(empty.serialize());
    EXPECT_EQ(parsed, empty);
}

TEST(ReplayEdge, LogLongerThanRunIgnoresSurplusEntries)
{
    ScheduleLog log =
        recordRun(racyFactory(), machineConfig(), /*seed=*/17);
    ASSERT_FALSE(log.choices.empty());

    // Pad the log far past the run's decision count, as a log recorded
    // against a longer build of the program would be. Replay consumes
    // decisions only while threads run; the surplus must be ignored.
    for (int i = 0; i < 64; ++i) {
        log.choices.push_back(static_cast<std::uint32_t>(i % 2));
        log.quanta.push_back(2);
    }
    EXPECT_EQ(replayExact(racyFactory(), machineConfig(), log),
              log.finalStateHash);

    // Searching with the padded log keeps working too: every real
    // decision is inside the prefix, so attempt 1 reproduces.
    const ReplaySearchResult result =
        searchReplay(racyFactory(), machineConfig(), log,
                     /*prefix_fraction=*/1.0, /*max_attempts=*/1);
    EXPECT_TRUE(result.reproduced);
}

TEST(ReplayEdge, DeserializeRejectsJunk)
{
    EXPECT_THROW(ScheduleLog::deserialize(""), std::invalid_argument);
    EXPECT_THROW(ScheduleLog::deserialize("v2 0 0"),
                 std::invalid_argument);
    EXPECT_THROW(ScheduleLog::deserialize("v1 5 2 0:1"),
                 std::invalid_argument); // count says 2, one entry given
    EXPECT_THROW(ScheduleLog::deserialize("v1 5 1 01"),
                 std::invalid_argument); // missing colon
}

TEST(ReplayEdge, ReplayExactFromRestoredCheckpoint)
{
    if (!sim::Machine::snapshotSupported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    const ScheduleLog log =
        recordRun(racyFactory(), machineConfig(), /*seed=*/23);
    ASSERT_GE(log.choices.size(), 4u)
        << "need a few decisions for a mid-run checkpoint";
    ASSERT_EQ(replayExact(racyFactory(), machineConfig(), log),
              log.finalStateHash);

    // Replay the same log on a machine that checkpoints mid-run: with a
    // fixed quantum the recorded choices script the schedule exactly.
    const std::size_t checkpoint_decision = log.choices.size() / 2;
    sim::Machine machine(machineConfig());
    auto program = racyFactory()();
    auto scripted = std::make_unique<sim::ScriptedScheduler>(
        log.choices, /*fixed_quantum=*/2);
    sim::ScriptedScheduler *sched = scripted.get();
    machine.setScheduler(std::move(scripted));

    std::shared_ptr<const sim::MachineSnapshot> snap;
    std::vector<std::uint32_t> fanout, chosen;
    std::vector<std::int32_t> prev_idx;
    ThreadId last_pick = invalidThreadId;
    std::size_t decision = 0;
    machine.setDecisionHandler(
        [&](const std::vector<ThreadId> &) {
            if (decision == checkpoint_decision) {
                snap = machine.checkpoint();
                fanout = sched->decisionFanout();
                chosen = sched->chosenIndices();
                prev_idx = sched->previousIndices();
                last_pick = sched->lastPicked();
            }
            ++decision;
        });
    machine.beginRun(*program);
    machine.finishRun();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(finalHash(machine), log.finalStateHash)
        << "scripting the recorded choices must reproduce the log";

    // Restore the checkpoint and replay only the suffix: the run must
    // still land on the recorded hash, which is exactly the check the
    // replay searcher relies on when resuming from shared prefixes.
    auto resumed = std::make_unique<sim::ScriptedScheduler>(
        log.choices, /*fixed_quantum=*/2);
    resumed->resumeAt(fanout, chosen, prev_idx, last_pick);
    machine.restore(*snap);
    machine.setScheduler(std::move(resumed));
    machine.finishRun();
    EXPECT_EQ(finalHash(machine), log.finalStateHash)
        << "restore + suffix replay must verify against the recorded "
           "state hash";
}

} // namespace
} // namespace icheck::explore
