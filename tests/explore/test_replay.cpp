/**
 * @file
 * Deterministic-replay assist (Section 6.3): exact replay reproduces the
 * recorded state hash; partial-log search uses the hash to verify when
 * the entire state has been reproduced.
 */

#include <gtest/gtest.h>
#include <memory>

#include "explore/replay.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::explore
{
namespace
{

using sim::LambdaProgram;

/** A racy program whose final state varies across schedules. */
check::ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racy", 3,
            [](sim::SetupCtx &ctx) {
                ctx.global("slots", mem::tArray(mem::tInt64(), 8));
            },
            [](sim::ThreadCtx &ctx) {
                const Addr slots = ctx.global("slots");
                for (int i = 0; i < 12; ++i) {
                    const Addr slot = slots + 8 * (i % 8);
                    const auto v = ctx.load<std::int64_t>(slot);
                    ctx.store<std::int64_t>(slot,
                                            v * 2 + ctx.tid() + 1);
                }
            });
    };
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    cfg.minQuantum = 1;
    cfg.maxQuantum = 4;
    return cfg;
}

TEST(Replay, ExactReplayReproducesStateHash)
{
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        const ScheduleLog log =
            recordRun(racyFactory(), machineConfig(), seed);
        EXPECT_FALSE(log.choices.empty());
        EXPECT_EQ(replayExact(racyFactory(), machineConfig(), log),
                  log.finalStateHash)
            << "seed " << seed;
    }
}

TEST(Replay, DifferentSeedsUsuallyDiverge)
{
    const ScheduleLog a = recordRun(racyFactory(), machineConfig(), 1);
    std::set<HashWord> hashes{a.finalStateHash};
    for (std::uint64_t seed = 2; seed <= 8; ++seed) {
        hashes.insert(
            recordRun(racyFactory(), machineConfig(), seed)
                .finalStateHash);
    }
    EXPECT_GT(hashes.size(), 1u) << "the workload must actually be racy";
}

TEST(Replay, FullPrefixSearchSucceedsImmediately)
{
    const ScheduleLog log = recordRun(racyFactory(), machineConfig(), 9);
    const ReplaySearchResult result = searchReplay(
        racyFactory(), machineConfig(), log, /*prefix_fraction=*/1.0,
        /*max_attempts=*/1);
    EXPECT_TRUE(result.reproduced);
    EXPECT_EQ(result.attempts, 1);
}

TEST(Replay, PartialLogSearchEventuallyReproduces)
{
    const ScheduleLog log = recordRun(racyFactory(), machineConfig(), 9);
    const ReplaySearchResult result = searchReplay(
        racyFactory(), machineConfig(), log, /*prefix_fraction=*/0.8,
        /*max_attempts=*/200);
    EXPECT_TRUE(result.reproduced)
        << "80% of the log should pin the state within 200 attempts";
    EXPECT_GE(result.attempts, 1);
}

TEST(Replay, HashVerificationRejectsWrongExecutions)
{
    // With no prefix at all, most random continuations reach different
    // states; the hash must reject them (attempts > 1 in general) while
    // still certifying a true match when one is found.
    const ScheduleLog log = recordRun(racyFactory(), machineConfig(), 11);
    const ReplaySearchResult result = searchReplay(
        racyFactory(), machineConfig(), log, /*prefix_fraction=*/0.0,
        /*max_attempts=*/500);
    if (result.reproduced) {
        // Verify the match really reproduces the hash.
        ScheduleLog probe = log;
        EXPECT_EQ(replayExact(racyFactory(), machineConfig(), log),
                  log.finalStateHash);
    }
    SUCCEED();
}

} // namespace
} // namespace icheck::explore

namespace icheck::explore
{
namespace
{

TEST(Replay, ScheduleLogSerializationRoundTrips)
{
    const ScheduleLog log = recordRun(racyFactory(), machineConfig(), 3);
    const ScheduleLog back = ScheduleLog::deserialize(log.serialize());
    EXPECT_EQ(back, log);
    // And the deserialized log replays to the same state.
    EXPECT_EQ(replayExact(racyFactory(), machineConfig(), back),
              log.finalStateHash);
}

TEST(Replay, DeserializeRejectsJunk)
{
    EXPECT_THROW(ScheduleLog::deserialize(""), std::invalid_argument);
    EXPECT_THROW(ScheduleLog::deserialize("v2 1 0"),
                 std::invalid_argument);
    EXPECT_THROW(ScheduleLog::deserialize("v1 5 2 3:4"),
                 std::invalid_argument);
    EXPECT_THROW(ScheduleLog::deserialize("v1 5 1 34"),
                 std::invalid_argument);
}

} // namespace
} // namespace icheck::explore
