/**
 * @file
 * Systematic-testing explorer (Section 6.2): exhaustive enumeration finds
 * all final states; state-hash pruning finds the same states with fewer
 * runs; happens-before pruning is weaker than state pruning on the
 * Figure 1 example, exactly as the paper argues.
 */

#include <gtest/gtest.h>
#include <memory>

#include "explore/explorer.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::explore
{
namespace
{

using sim::LambdaProgram;

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

/** Figure 1 with the lock: both interleavings reach G == 12. */
check::ProgramFactory
figure1Locked()
{
    return [] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "fig1", 2,
            [mutex_id](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
                ctx.unlock(*mutex_id);
            });
    };
}

/** Figure 1 without the lock: racy, multiple final states. */
check::ProgramFactory
figure1Racy()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "fig1racy", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
            });
    };
}

ExploreConfig
exploreConfig(PruneMode mode)
{
    ExploreConfig cfg;
    cfg.prune = mode;
    cfg.maxRuns = 5000;
    cfg.quantum = 1;
    return cfg;
}

TEST(Explorer, LockedFigure1HasOneFinalState)
{
    const ExploreResult result =
        explore(figure1Locked(), machineConfig(),
                exploreConfig(PruneMode::None));
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.finalStates.size(), 1u)
        << "externally deterministic: one final state across all "
           "interleavings";
    EXPECT_GT(result.runsExecuted, 1);
}

TEST(Explorer, RacyFigure1HasMultipleFinalStates)
{
    const ExploreResult result =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(PruneMode::None));
    EXPECT_TRUE(result.exhausted);
    // G ends as 12 (serialized), 9 (t1's update lost), or 5 (t0's lost).
    EXPECT_GE(result.finalStates.size(), 2u);
    EXPECT_LE(result.finalStates.size(), 3u);
}

class PruneSoundness : public ::testing::TestWithParam<PruneMode>
{
};

TEST_P(PruneSoundness, FindsTheSameFinalStates)
{
    const ExploreResult baseline =
        explore(figure1Racy(), machineConfig(),
                exploreConfig(PruneMode::None));
    const ExploreResult pruned = explore(figure1Racy(), machineConfig(),
                                         exploreConfig(GetParam()));
    EXPECT_EQ(pruned.finalStates, baseline.finalStates);
}

INSTANTIATE_TEST_SUITE_P(Modes, PruneSoundness,
                         ::testing::Values(PruneMode::HappensBefore,
                                           PruneMode::StateHash));

TEST(Explorer, StatePruningReducesRuns)
{
    const ExploreResult none = explore(figure1Locked(), machineConfig(),
                                       exploreConfig(PruneMode::None));
    const ExploreResult state =
        explore(figure1Locked(), machineConfig(),
                exploreConfig(PruneMode::StateHash));
    EXPECT_LT(state.runsExecuted, none.runsExecuted)
        << "state-hash pruning must cut the search";
    EXPECT_EQ(state.finalStates, none.finalStates);
    EXPECT_GT(state.branchesPruned, 0u);
}

TEST(Explorer, StatePruningBeatsHappensBeforeOnFigure1)
{
    // The paper's Section 6.2 argument: the two lock-order interleavings
    // have different happens-before but identical states, so state
    // pruning merges strictly more than happens-before pruning.
    const ExploreResult hb =
        explore(figure1Locked(), machineConfig(),
                exploreConfig(PruneMode::HappensBefore));
    const ExploreResult state =
        explore(figure1Locked(), machineConfig(),
                exploreConfig(PruneMode::StateHash));
    EXPECT_LE(state.runsExecuted, hb.runsExecuted);
    EXPECT_EQ(state.finalStates, hb.finalStates);
}

TEST(Explorer, RespectsMaxRuns)
{
    ExploreConfig cfg = exploreConfig(PruneMode::None);
    cfg.maxRuns = 3;
    const ExploreResult result =
        explore(figure1Racy(), machineConfig(), cfg);
    EXPECT_EQ(result.runsExecuted, 3);
    EXPECT_FALSE(result.exhausted);
}

} // namespace
} // namespace icheck::explore
