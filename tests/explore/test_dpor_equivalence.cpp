/**
 * @file
 * DPOR equivalence suite: reduced and unreduced full explorations of the
 * bundled applications — clean and bug-seeded, across base prune modes
 * and worker counts — report byte-identical results. The comparison is a
 * canonical rendering of (exhausted, final-state set), i.e. exactly the
 * schedule-dependent outcome; every configuration must exhaust its
 * search, since a budget-truncated comparison would prove nothing.
 *
 * The unreduced baseline uses state-hash pruning: on 4-thread apps the
 * raw interleaving space is astronomically large, but barrier-structured
 * programs converge to few distinct states, so the state-pruned search
 * exhausts while remaining exactly as complete (PruneSoundness tests).
 * DPOR must find the same final states — with and without a base mode,
 * cold and checkpointed, at any --jobs.
 *
 * Deliberately absent: maxPreemptions. DPOR composed with preemption
 * bounding is the classic unsound combination (a race-justified branch
 * can be bounded out while its trace-equivalent sibling was pruned), so
 * no equivalence is claimed or tested for it.
 */

#include <gtest/gtest.h>
#include <cinttypes>
#include <memory>
#include <string>

#include "apps/apps.hpp"
#include "explore/explorer.hpp"
#include "runtime/parallel_explore.hpp"

namespace icheck::explore
{
namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

ExploreConfig
exploreConfig(PruneMode mode, bool dpor)
{
    ExploreConfig cfg;
    cfg.prune = mode;
    cfg.dpor = dpor;
    cfg.maxRuns = 200000;
    // Large quantum: threads run until they block, so scheduling
    // decisions happen at synchronization boundaries. Every config in
    // the comparison shares the slice alphabet, and every program here
    // finishes well inside maxDepth — truncation would break the
    // Mazurkiewicz-trace argument.
    cfg.quantum = 1u << 20;
    return cfg;
}

/** Canonical one-line report of a schedule-dependent outcome. */
std::string
renderOutcome(const ExploreResult &result)
{
    std::string out =
        result.exhausted ? "exhausted;states:" : "TRUNCATED;states:";
    char word[32];
    for (const HashWord state : result.finalStates) {
        std::snprintf(word, sizeof word, "%016" PRIx64 ",",
                      static_cast<std::uint64_t>(state));
        out += word;
    }
    return out;
}

struct AppCase
{
    const char *label;
    check::ProgramFactory factory;
    bool buggy; ///< Seeded bug: expect >1 final state.
};

std::vector<AppCase>
appCases()
{
    using namespace icheck::apps;
    std::vector<AppCase> cases;
    cases.push_back({"radix_clean",
                     [] { return std::make_unique<Radix>(4, 8); }, false});
    cases.push_back({"radix_order",
                     [] {
                         return std::make_unique<Radix>(
                             4, 8, BugSeed::OrderViolation);
                     },
                     true});
    cases.push_back({"waterNS_semantic",
                     [] {
                         return std::make_unique<WaterNS>(
                             4, 4, 1, BugSeed::Semantic);
                     },
                     true});
    cases.push_back({"waterSP_atomicity",
                     [] {
                         return std::make_unique<WaterSP>(
                             4, 4, 1, BugSeed::AtomicityViolation);
                     },
                     true});
    return cases;
}

class DporEquivalence : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DporEquivalence, FullCoverageMatchesUnreducedByteForByte)
{
    const AppCase app = appCases()[GetParam()];
    SCOPED_TRACE(app.label);

    // Unreduced baseline: state-pruned full coverage.
    const ExploreResult baseline =
        explore(app.factory, machineConfig(),
                exploreConfig(PruneMode::StateHash, false));
    ASSERT_TRUE(baseline.exhausted)
        << "baseline must exhaust or the comparison proves nothing";
    const std::string want = renderOutcome(baseline);
    if (app.buggy) {
        ASSERT_GE(baseline.finalStates.size(), 2u)
            << "the seeded bug must be schedule-visible at this scale";
    } else {
        ASSERT_EQ(baseline.finalStates.size(), 1u);
    }

    // DPOR layered over each base mode, sequential.
    for (const PruneMode base :
         {PruneMode::None, PruneMode::HappensBefore,
          PruneMode::StateHash}) {
        const ExploreResult reduced = explore(
            app.factory, machineConfig(), exploreConfig(base, true));
        ASSERT_TRUE(reduced.exhausted);
        EXPECT_EQ(renderOutcome(reduced), want)
            << "base mode " << static_cast<int>(base);
    }

    // Cold (no checkpoints) DPOR: identical again.
    ExploreConfig cold = exploreConfig(PruneMode::None, true);
    cold.checkpoints = false;
    const ExploreResult coldRun =
        explore(app.factory, machineConfig(), cold);
    ASSERT_TRUE(coldRun.exhausted);
    EXPECT_EQ(renderOutcome(coldRun), want);

    // Parallel frontier: the fixpoint is worker-count independent.
    for (const int jobs : {2, 4}) {
        const ExploreResult parallel = runtime::exploreParallel(
            app.factory, machineConfig(),
            exploreConfig(PruneMode::StateHash, true), jobs);
        ASSERT_TRUE(parallel.exhausted) << "jobs " << jobs;
        EXPECT_EQ(renderOutcome(parallel), want) << "jobs " << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, DporEquivalence,
                         ::testing::Range<std::size_t>(0, 4));

TEST(DporEquivalence, ReductionReachesFullCoverageInFewerRuns)
{
    // The headline claim at test scale: on a racy (bug-seeded) app, DPOR
    // needs far fewer schedules than the unreduced state-pruned search
    // to cover every reachable final state.
    const AppCase app = appCases()[1]; // radix_order
    const ExploreResult baseline =
        explore(app.factory, machineConfig(),
                exploreConfig(PruneMode::StateHash, false));
    const ExploreResult reduced =
        explore(app.factory, machineConfig(),
                exploreConfig(PruneMode::StateHash, true));
    ASSERT_TRUE(baseline.exhausted);
    ASSERT_TRUE(reduced.exhausted);
    EXPECT_EQ(reduced.finalStates, baseline.finalStates);
    EXPECT_LT(reduced.runsExecuted, baseline.runsExecuted);
}

} // namespace
} // namespace icheck::explore
