/**
 * @file
 * Prefix-sharing exploration: with checkpointing on, every exploration
 * outcome (runs executed, prune/bound counts, exhaustion, final states)
 * must be byte-identical to the cold path, for every pruning mode; the
 * checkpoint tree must survive tiny byte budgets (eviction) and the
 * parallel frontier must agree with the sequential engine.
 */

#include <gtest/gtest.h>
#include <memory>

#include "explore/explorer.hpp"
#include "explore/snapshot_tree.hpp"
#include "runtime/parallel_explore.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::explore
{
namespace
{

using sim::LambdaProgram;

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

/** Figure 1 without the lock: racy, multiple final states. */
check::ProgramFactory
racyFactory()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "snapexp-racy", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                for (int i = 0; i < 3; ++i) {
                    const auto g =
                        ctx.load<std::int64_t>(ctx.global("G"));
                    ctx.store<std::int64_t>(ctx.global("G"), g + local);
                }
            });
    };
}

/** Mutex-serialized increments: deterministic final state. */
check::ProgramFactory
lockedFactory()
{
    return [] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "snapexp-locked", 2,
            [mutex_id](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
                ctx.unlock(*mutex_id);
            });
    };
}

ExploreConfig
baseConfig(PruneMode mode)
{
    ExploreConfig cfg;
    cfg.prune = mode;
    cfg.maxRuns = 4000;
    cfg.quantum = 1;
    return cfg;
}

/** The exploration outcome minus the (explicitly excluded) stats. */
void
expectSameOutcome(const ExploreResult &warm, const ExploreResult &cold,
                  const char *label)
{
    EXPECT_EQ(warm.runsExecuted, cold.runsExecuted) << label;
    EXPECT_EQ(warm.branchesPruned, cold.branchesPruned) << label;
    EXPECT_EQ(warm.branchesBoundedOut, cold.branchesBoundedOut) << label;
    EXPECT_EQ(warm.exhausted, cold.exhausted) << label;
    EXPECT_EQ(warm.finalStates, cold.finalStates) << label;
}

TEST(SnapshotExplore, WarmEqualsColdEveryPruneMode)
{
    for (const PruneMode mode :
         {PruneMode::None, PruneMode::HappensBefore,
          PruneMode::StateHash}) {
        for (const auto &factory : {racyFactory(), lockedFactory()}) {
            ExploreConfig warm_cfg = baseConfig(mode);
            warm_cfg.checkpoints = true;
            ExploreConfig cold_cfg = baseConfig(mode);
            cold_cfg.checkpoints = false;

            const ExploreResult warm =
                explore(factory, machineConfig(), warm_cfg);
            const ExploreResult cold =
                explore(factory, machineConfig(), cold_cfg);
            expectSameOutcome(warm, cold, "prune-mode sweep");
            if (PrefixEngine::supported())
                EXPECT_TRUE(warm.stats.checkpointing);
            EXPECT_FALSE(cold.stats.checkpointing);
        }
    }
}

TEST(SnapshotExplore, WarmEqualsColdUnderContextBound)
{
    ExploreConfig warm_cfg = baseConfig(PruneMode::None);
    warm_cfg.maxPreemptions = 2;
    warm_cfg.checkpoints = true;
    ExploreConfig cold_cfg = warm_cfg;
    cold_cfg.checkpoints = false;

    const ExploreResult warm =
        explore(racyFactory(), machineConfig(), warm_cfg);
    const ExploreResult cold =
        explore(racyFactory(), machineConfig(), cold_cfg);
    expectSameOutcome(warm, cold, "context bound");
    EXPECT_GT(cold.branchesBoundedOut, 0u)
        << "the bound must actually bite for this to test anything";
}

TEST(SnapshotExplore, TinyBudgetEvictsButStaysExact)
{
    ExploreConfig warm_cfg = baseConfig(PruneMode::StateHash);
    warm_cfg.checkpoints = true;
    // A budget too small for more than a handful of snapshots: the tree
    // must evict (and fall back to shallower ancestors / the pinned
    // root) without changing any outcome.
    warm_cfg.checkpointBudgetBytes = 64 * 1024;
    ExploreConfig cold_cfg = baseConfig(PruneMode::StateHash);
    cold_cfg.checkpoints = false;

    const ExploreResult warm =
        explore(racyFactory(), machineConfig(), warm_cfg);
    const ExploreResult cold =
        explore(racyFactory(), machineConfig(), cold_cfg);
    expectSameOutcome(warm, cold, "tiny budget");
    if (sim::Machine::snapshotSupported())
        EXPECT_GT(warm.stats.checkpointsEvicted, 0u)
            << "a 64 KiB budget must force evictions here";
}

TEST(SnapshotExplore, StrideOneMatchesDefaultStride)
{
    ExploreConfig dense_cfg = baseConfig(PruneMode::None);
    dense_cfg.checkpoints = true;
    dense_cfg.checkpointStride = 1;
    ExploreConfig sparse_cfg = baseConfig(PruneMode::None);
    sparse_cfg.checkpoints = true;
    sparse_cfg.checkpointStride = 8;

    const ExploreResult dense =
        explore(racyFactory(), machineConfig(), dense_cfg);
    const ExploreResult sparse =
        explore(racyFactory(), machineConfig(), sparse_cfg);
    expectSameOutcome(dense, sparse, "stride sweep");
}

TEST(SnapshotExplore, ParallelWarmEqualsSequentialCold)
{
    // Pruning-off parallel exploration is deterministic (each prefix is
    // generated exactly once by its designated parent), so the full
    // outcome must match the sequential cold search for any job count.
    ExploreConfig cfg = baseConfig(PruneMode::None);
    cfg.checkpoints = true;

    ExploreConfig cold_cfg = cfg;
    cold_cfg.checkpoints = false;
    const ExploreResult cold =
        explore(racyFactory(), machineConfig(), cold_cfg);
    ASSERT_TRUE(cold.exhausted);

    for (const int jobs : {2, 4}) {
        const ExploreResult par = runtime::exploreParallel(
            racyFactory(), machineConfig(), cfg, jobs);
        ASSERT_TRUE(par.exhausted);
        EXPECT_EQ(par.runsExecuted, cold.runsExecuted) << jobs;
        EXPECT_EQ(par.finalStates, cold.finalStates) << jobs;
        EXPECT_EQ(par.branchesBoundedOut, cold.branchesBoundedOut)
            << jobs;
    }
}

TEST(SnapshotExplore, StatsCountRestores)
{
    if (!PrefixEngine::supported())
        GTEST_SKIP() << "fiber snapshots unavailable in this build";

    ExploreConfig cfg = baseConfig(PruneMode::None);
    cfg.checkpoints = true;
    const ExploreResult result =
        explore(racyFactory(), machineConfig(), cfg);
    EXPECT_TRUE(result.stats.checkpointing);
    EXPECT_EQ(result.stats.nodesExpanded,
              static_cast<std::uint64_t>(result.runsExecuted));
    EXPECT_GT(result.stats.checkpointsCreated, 0u);
    EXPECT_GT(result.stats.checkpointHits, 0u);
    EXPECT_GT(result.stats.decisionsRestored, 0u)
        << "hits that restore nothing are not prefix sharing";
    EXPECT_GT(result.stats.pagesCowCloned, 0u);
}

} // namespace
} // namespace icheck::explore
