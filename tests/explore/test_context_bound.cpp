/**
 * @file
 * CHESS-style iterative context bounding in the explorer: with a
 * preemption budget of 0 only non-preemptive schedules run; raising the
 * budget monotonically grows the covered state set until it reaches the
 * unbounded exploration's set — the empirical basis for CHESS's "most
 * bugs need few preemptions" strategy (Section 6.2 context).
 */

#include <gtest/gtest.h>
#include <memory>

#include "explore/explorer.hpp"
#include "sim/lambda_program.hpp"

namespace icheck::explore
{
namespace
{

using sim::LambdaProgram;

/** Racy two-thread increment; lost updates need a mid-body preemption. */
check::ProgramFactory
racyIncrement()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racy-inc", 2,
            [](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
            },
            [](sim::ThreadCtx &ctx) {
                const std::int64_t local = ctx.tid() == 0 ? 7 : 3;
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"), g + local);
            });
    };
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

ExploreResult
exploreWith(std::size_t max_preemptions)
{
    ExploreConfig cfg;
    cfg.prune = PruneMode::None;
    cfg.maxRuns = 5000;
    cfg.quantum = 1;
    cfg.maxPreemptions = max_preemptions;
    return explore(racyIncrement(), machineConfig(), cfg);
}

TEST(ContextBound, ZeroPreemptionsCoversSerialSchedulesOnly)
{
    const ExploreResult bound0 = exploreWith(0);
    EXPECT_TRUE(bound0.exhausted);
    // Serial executions (one thread runs to completion, then the other)
    // always produce G == 12: exactly one final state.
    EXPECT_EQ(bound0.finalStates.size(), 1u);
    EXPECT_GT(bound0.branchesBoundedOut, 0u);
}

TEST(ContextBound, CoverageGrowsMonotonicallyWithBudget)
{
    const ExploreResult unbounded = exploreWith(~std::size_t{0});
    std::size_t prev_states = 0;
    int prev_runs = 0;
    for (std::size_t budget : {0u, 1u, 2u, 4u}) {
        const ExploreResult bounded = exploreWith(budget);
        EXPECT_GE(bounded.finalStates.size(), prev_states)
            << "budget " << budget;
        EXPECT_GE(bounded.runsExecuted, prev_runs);
        for (HashWord state : bounded.finalStates) {
            EXPECT_TRUE(unbounded.finalStates.contains(state))
                << "bounded search found a state unbounded search "
                   "did not";
        }
        prev_states = bounded.finalStates.size();
        prev_runs = bounded.runsExecuted;
    }
}

TEST(ContextBound, SmallBudgetAlreadyFindsTheRaceBug)
{
    // The paper's CHESS citation: few preemptions expose most bugs. One
    // preemption is enough to lose an update here.
    const ExploreResult bound1 = exploreWith(1);
    EXPECT_GT(bound1.finalStates.size(), 1u)
        << "one preemption must expose the lost update";
    const ExploreResult unbounded = exploreWith(~std::size_t{0});
    EXPECT_EQ(bound1.finalStates, unbounded.finalStates)
        << "for this program one preemption covers every outcome";
    EXPECT_LT(bound1.runsExecuted, unbounded.runsExecuted);
}

} // namespace
} // namespace icheck::explore
