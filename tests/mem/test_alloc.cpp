/**
 * @file
 * Deterministic allocator: record/replay of addresses (the Section 5
 * malloc-nondeterminism control), free-list reuse, the live-block table.
 */

#include <gtest/gtest.h>

#include "mem/alloc.hpp"

namespace icheck::mem
{
namespace
{

TEST(ReplayLog, RecordsAndLooksUp)
{
    ReplayLog log;
    EXPECT_TRUE(log.empty());
    log.record("site_a", 0, 0x1000);
    log.record("site_a", 1, 0x2000);
    log.record("site_b", 0, 0x3000);
    EXPECT_EQ(log.lookup("site_a", 0), 0x1000u);
    EXPECT_EQ(log.lookup("site_a", 1), 0x2000u);
    EXPECT_EQ(log.lookup("site_b", 0), 0x3000u);
    EXPECT_FALSE(log.lookup("site_a", 2).has_value());
    EXPECT_FALSE(log.lookup("site_c", 0).has_value());
    EXPECT_EQ(log.size(), 3u);
}

TEST(Allocator, RecordModeIsOrderDeterministic)
{
    ReplayLog log_a, log_b;
    DeterministicAllocator alloc_a(log_a,
                                   DeterministicAllocator::Mode::Record);
    DeterministicAllocator alloc_b(log_b,
                                   DeterministicAllocator::Mode::Record);
    const TypeRef t = tArray(tInt64(), 4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(alloc_a.allocate("s", t), alloc_b.allocate("s", t));
}

TEST(Allocator, RecordModeReusesFreedBlocksLifo)
{
    ReplayLog log;
    DeterministicAllocator alloc(log,
                                 DeterministicAllocator::Mode::Record);
    const TypeRef t = tArray(tInt64(), 2);
    const Addr a = alloc.allocate("s", t);
    const Addr b = alloc.allocate("s", t);
    alloc.free(a);
    alloc.free(b);
    // LIFO: most recently freed first.
    EXPECT_EQ(alloc.allocate("s", t), b);
    EXPECT_EQ(alloc.allocate("s", t), a);
}

TEST(Allocator, ReplayModeServesLoggedAddresses)
{
    ReplayLog log;
    std::vector<Addr> recorded;
    {
        DeterministicAllocator rec(log,
                                   DeterministicAllocator::Mode::Record);
        const TypeRef t = tArray(tInt32(), 8);
        recorded.push_back(rec.allocate("x", t));
        recorded.push_back(rec.allocate("y", t));
        recorded.push_back(rec.allocate("x", t));
    }
    // A replay run allocating in a *different* interleaved order still
    // gets the same address per (site, seq).
    DeterministicAllocator rep(log, DeterministicAllocator::Mode::Replay);
    const TypeRef t = tArray(tInt32(), 8);
    const Addr y0 = rep.allocate("y", t);
    const Addr x0 = rep.allocate("x", t);
    const Addr x1 = rep.allocate("x", t);
    EXPECT_EQ(x0, recorded[0]);
    EXPECT_EQ(y0, recorded[1]);
    EXPECT_EQ(x1, recorded[2]);
}

TEST(Allocator, ReplayMissFallsBackAboveHighWater)
{
    ReplayLog log;
    Addr recorded;
    {
        DeterministicAllocator rec(log,
                                   DeterministicAllocator::Mode::Record);
        recorded = rec.allocate("x", tInt64());
    }
    DeterministicAllocator rep(log, DeterministicAllocator::Mode::Replay);
    const Addr known = rep.allocate("x", tInt64());
    const Addr unknown = rep.allocate("never_seen", tInt64());
    EXPECT_EQ(known, recorded);
    EXPECT_GE(unknown, log.highWater())
        << "unlogged allocations must not clobber replayed blocks";
}

TEST(Allocator, LiveBlockLookup)
{
    ReplayLog log;
    DeterministicAllocator alloc(log,
                                 DeterministicAllocator::Mode::Record);
    const TypeRef t = tArray(tInt8(), 100);
    const Addr a = alloc.allocate("blk", t);
    const Block *block = alloc.findLive(a + 50);
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->addr, a);
    EXPECT_EQ(block->site, "blk");
    EXPECT_EQ(block->size, 100u);
    EXPECT_EQ(alloc.findLive(a + 100), nullptr) << "one past the end";
    EXPECT_EQ(alloc.liveBytes(), 100u);
}

TEST(Allocator, HistoricalLookupSurvivesFree)
{
    ReplayLog log;
    DeterministicAllocator alloc(log,
                                 DeterministicAllocator::Mode::Record);
    const Addr a = alloc.allocate("ghost", tArray(tInt8(), 64));
    alloc.free(a);
    EXPECT_EQ(alloc.findLive(a + 10), nullptr);
    const Block *block = alloc.findHistorical(a + 10);
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->site, "ghost");
    EXPECT_FALSE(block->live);
}

TEST(Allocator, LiveBlocksEnumeratesInAddressOrder)
{
    ReplayLog log;
    DeterministicAllocator alloc(log,
                                 DeterministicAllocator::Mode::Record);
    const Addr a = alloc.allocate("a", tInt64());
    const Addr b = alloc.allocate("b", tInt64());
    const Addr c = alloc.allocate("c", tInt64());
    alloc.free(b);
    const auto live = alloc.liveBlocks();
    ASSERT_EQ(live.size(), 2u);
    EXPECT_EQ(live[0]->addr, a);
    EXPECT_EQ(live[1]->addr, c);
}

TEST(Allocator, PerSiteSequencesAreIndependent)
{
    ReplayLog log;
    DeterministicAllocator alloc(log,
                                 DeterministicAllocator::Mode::Record);
    alloc.allocate("p", tInt64());
    alloc.allocate("q", tInt64());
    const Addr p1 = alloc.allocate("p", tInt64());
    const Block *block = alloc.findLive(p1);
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->seq, 1u);
}

} // namespace
} // namespace icheck::mem
