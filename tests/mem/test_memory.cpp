/**
 * @file
 * SparseMemory semantics: zero-default reads, typed round trips, clone
 * and diff (the localization substrate).
 */

#include <gtest/gtest.h>
#include <vector>

#include "mem/memory.hpp"

namespace icheck::mem
{
namespace
{

TEST(SparseMemory, UnmappedReadsZero)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readByte(0x12345), 0u);
    EXPECT_EQ(mem.readValue(0xdeadbeef, 8), 0u);
    EXPECT_EQ(mem.mappedPages(), 0u) << "reads must not materialize pages";
}

TEST(SparseMemory, ValueRoundTripAllWidths)
{
    SparseMemory mem;
    for (unsigned width = 1; width <= 8; ++width) {
        const std::uint64_t value =
            0x1122334455667788ULL &
            (width == 8 ? ~0ULL : ((1ULL << (8 * width)) - 1));
        mem.writeValue(0x1000 + width * 16, width, value);
        EXPECT_EQ(mem.readValue(0x1000 + width * 16, width), value);
    }
}

TEST(SparseMemory, LittleEndianLayout)
{
    SparseMemory mem;
    mem.writeValue(0x2000, 4, 0xddccbbaa);
    EXPECT_EQ(mem.readByte(0x2000), 0xaa);
    EXPECT_EQ(mem.readByte(0x2001), 0xbb);
    EXPECT_EQ(mem.readByte(0x2002), 0xcc);
    EXPECT_EQ(mem.readByte(0x2003), 0xdd);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    const Addr boundary = pageSize - 3;
    mem.writeValue(boundary, 8, 0x0807060504030201ULL);
    EXPECT_EQ(mem.readValue(boundary, 8), 0x0807060504030201ULL);
    EXPECT_EQ(mem.mappedPages(), 2u);
}

TEST(SparseMemory, BulkReadWrite)
{
    SparseMemory mem;
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    mem.writeBytes(0x3000, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    mem.readBytes(0x3000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(SparseMemory, CloneIsDeepAndIndependent)
{
    SparseMemory mem;
    mem.writeValue(0x100, 8, 42);
    SparseMemory copy = mem.clone();
    mem.writeValue(0x100, 8, 43);
    EXPECT_EQ(copy.readValue(0x100, 8), 42u);
    EXPECT_EQ(mem.readValue(0x100, 8), 43u);
}

TEST(SparseMemory, DiffFindsExactBytes)
{
    SparseMemory a, b;
    a.writeValue(0x100, 4, 0x01020304);
    b.writeValue(0x100, 4, 0x01ff0304);
    b.writeValue(0x9000, 1, 0x55); // page only in b
    std::vector<std::tuple<Addr, std::uint8_t, std::uint8_t>> diffs;
    SparseMemory::diff(a, b, [&](Addr addr, std::uint8_t va,
                                 std::uint8_t vb) {
        diffs.emplace_back(addr, va, vb);
    });
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(std::get<0>(diffs[0]), 0x102u);
    EXPECT_EQ(std::get<1>(diffs[0]), 0x02);
    EXPECT_EQ(std::get<2>(diffs[0]), 0xff);
    EXPECT_EQ(std::get<0>(diffs[1]), 0x9000u);
    EXPECT_EQ(std::get<1>(diffs[1]), 0x00);
    EXPECT_EQ(std::get<2>(diffs[1]), 0x55);
}

TEST(SparseMemory, DiffOfEqualStatesIsEmpty)
{
    SparseMemory a;
    a.writeValue(0x500, 8, 999);
    SparseMemory b = a.clone();
    int count = 0;
    SparseMemory::diff(a, b,
                       [&](Addr, std::uint8_t, std::uint8_t) { ++count; });
    EXPECT_EQ(count, 0);
}

} // namespace
} // namespace icheck::mem
