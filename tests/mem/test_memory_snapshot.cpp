/**
 * @file
 * Copy-on-write forking and checkpoint restore of SparseMemory: fork
 * aliasing, write isolation, translation-cache versioning across
 * fork/restore/move, and clone()/diff() behaviour on COW-shared images.
 */

#include <gtest/gtest.h>
#include <utility>
#include <vector>

#include "mem/memory.hpp"

namespace icheck::mem
{
namespace
{

TEST(MemorySnapshot, ForkSharesPagesWithoutCopying)
{
    SparseMemory parent;
    for (int p = 0; p < 8; ++p)
        parent.writeValue(0x10000 + p * pageSize, 8, 100 + p);

    SparseMemory child = parent.fork();
    EXPECT_EQ(child.mappedPages(), parent.mappedPages());
    EXPECT_EQ(parent.cowClonedPages(), 0u)
        << "fork alone must not deep-copy any page";
    for (int p = 0; p < 8; ++p)
        EXPECT_EQ(child.readValue(0x10000 + p * pageSize, 8),
                  100u + p);
}

TEST(MemorySnapshot, FirstWriteToSharedPageClonesIt)
{
    SparseMemory parent;
    parent.writeValue(0x10000, 8, 41);

    SparseMemory child = parent.fork();
    child.writeValue(0x10000, 8, 42);
    EXPECT_EQ(child.cowClonedPages(), 1u);
    EXPECT_EQ(child.readValue(0x10000, 8), 42u);
    EXPECT_EQ(parent.readValue(0x10000, 8), 41u)
        << "child write must not alias the parent's page";

    // The page is exclusive after the clone: further writes are free.
    child.writeValue(0x10008, 8, 43);
    EXPECT_EQ(child.cowClonedPages(), 1u);
}

TEST(MemorySnapshot, ParentWriteAfterForkDoesNotLeakIntoChild)
{
    SparseMemory parent;
    parent.writeValue(0x30000, 8, 7);
    SparseMemory child = parent.fork();

    parent.writeValue(0x30000, 8, 8);
    EXPECT_EQ(parent.cowClonedPages(), 1u)
        << "parent's first write to the now-shared page must clone";
    EXPECT_EQ(child.readValue(0x30000, 8), 7u);
}

TEST(MemorySnapshot, RestoreFromRewindsToSnapshotContents)
{
    SparseMemory mem;
    mem.writeValue(0x10000, 8, 1);
    mem.writeValue(0x20000, 8, 2);

    SparseMemory snap = mem.fork();

    // Diverge: modify one page, map a new one.
    mem.writeValue(0x10000, 8, 99);
    mem.writeValue(0x50000, 8, 50);
    EXPECT_EQ(mem.mappedPages(), 3u);

    mem.restoreFrom(snap);
    EXPECT_EQ(mem.readValue(0x10000, 8), 1u);
    EXPECT_EQ(mem.readValue(0x20000, 8), 2u);
    EXPECT_EQ(mem.readValue(0x50000, 8), 0u)
        << "pages mapped after the snapshot must vanish on restore";
    EXPECT_EQ(mem.mappedPages(), 2u);
}

TEST(MemorySnapshot, ForkWriteRestoreAliasing)
{
    // The satellite's audit case: write through a cached translation,
    // fork, write again (COW clone), restore, and verify no write ever
    // lands in the snapshot image via a stale cached page pointer.
    SparseMemory mem;
    mem.writeValue(0x10000, 8, 10); // fills the translation cache slot

    SparseMemory snap = mem.fork();
    mem.writeValue(0x10000, 8, 20); // must clone, not reuse the cache
    EXPECT_EQ(mem.cowClonedPages(), 1u);

    mem.restoreFrom(snap);
    EXPECT_EQ(mem.readValue(0x10000, 8), 10u);

    // Writing after restore shares with snap again: another clone.
    mem.writeValue(0x10000, 8, 30);
    EXPECT_GE(mem.cowClonedPages(), 2u);
    EXPECT_EQ(mem.readValue(0x10000, 8), 30u);

    SparseMemory snap2 = snap.fork();
    EXPECT_EQ(snap2.readValue(0x10000, 8), 10u)
        << "the snapshot image must stay pristine through it all";
}

TEST(MemorySnapshot, UnmappedPageProbesAfterRestore)
{
    SparseMemory mem;
    mem.writeValue(0x10000, 8, 1);
    SparseMemory snap = mem.fork();

    // Map and cache a page the snapshot does not have...
    mem.writeValue(0x70000, 8, 7);
    EXPECT_EQ(mem.readValue(0x70000, 8), 7u);

    // ...then restore: probes of that page must read zero, not hit a
    // stale cached translation of the dropped page.
    mem.restoreFrom(snap);
    EXPECT_EQ(mem.readValue(0x70000, 8), 0u);
    EXPECT_EQ(mem.readByte(0x70000), 0u);
    EXPECT_EQ(mem.mappedPages(), 1u)
        << "the probe itself must not materialize the page";
}

TEST(MemorySnapshot, CacheVersionBumpsOnSharingEvents)
{
    SparseMemory mem;
    mem.writeValue(0x10000, 8, 1);

    const std::uint64_t v0 = mem.cacheVersion();
    SparseMemory child = mem.fork();
    EXPECT_GT(mem.cacheVersion(), v0)
        << "fork must demote the source's cached write permissions";

    const std::uint64_t v1 = mem.cacheVersion();
    mem.restoreFrom(child);
    EXPECT_GT(mem.cacheVersion(), v1)
        << "restore must invalidate the target's cache";
}

TEST(MemorySnapshot, MoveInvalidatesSourceCache)
{
    SparseMemory a;
    a.writeValue(0x10000, 8, 5);
    EXPECT_EQ(a.readValue(0x10000, 8), 5u); // cache the translation

    const std::uint64_t v0 = a.cacheVersion();
    SparseMemory b = std::move(a);
    EXPECT_EQ(b.readValue(0x10000, 8), 5u);
    EXPECT_GT(a.cacheVersion(), v0)
        << "moved-from image must not keep stale page pointers";

    // The moved-from image is empty; reads must see zero, not the old
    // cached page.
    EXPECT_EQ(a.readValue(0x10000, 8), 0u);
    EXPECT_EQ(a.mappedPages(), 0u);

    // Move-assignment equally invalidates the source.
    SparseMemory c;
    c.writeValue(0x20000, 8, 9);
    const std::uint64_t vb = b.cacheVersion();
    c = std::move(b);
    EXPECT_GT(b.cacheVersion(), vb);
    EXPECT_EQ(b.readValue(0x10000, 8), 0u);
    EXPECT_EQ(c.readValue(0x10000, 8), 5u);
}

TEST(MemorySnapshot, CloneIsIndependentOfCowState)
{
    SparseMemory parent;
    parent.writeValue(0x10000, 8, 1);
    SparseMemory shared = parent.fork();

    // clone() of an image whose pages are COW-shared must deep-copy:
    // writes to the clone touch neither the parent nor the fork.
    SparseMemory deep = parent.clone();
    deep.writeValue(0x10000, 8, 77);
    EXPECT_EQ(parent.readValue(0x10000, 8), 1u);
    EXPECT_EQ(shared.readValue(0x10000, 8), 1u);
    EXPECT_EQ(parent.cowClonedPages(), 0u)
        << "writes to a deep clone are not COW events on the source";
}

TEST(MemorySnapshot, DiffSkipsSharedPagesButSeesDivergence)
{
    SparseMemory a;
    a.writeValue(0x10000, 8, 1);
    a.writeValue(0x20000, 8, 2);
    SparseMemory b = a.fork();

    std::vector<Addr> addrs;
    const auto visit = [&addrs](Addr addr, std::uint8_t, std::uint8_t) {
        addrs.push_back(addr);
    };
    SparseMemory::diff(a, b, visit);
    EXPECT_TRUE(addrs.empty())
        << "physically shared pages must not produce diffs";

    b.writeValue(0x20000, 8, 3); // COW-clones, then diverges
    SparseMemory::diff(a, b, visit);
    ASSERT_FALSE(addrs.empty());
    for (const Addr addr : addrs)
        EXPECT_TRUE(addr >= 0x20000 && addr < 0x20000 + 8)
            << "only the diverged bytes may differ";
}

TEST(MemorySnapshot, DiffAfterMoveUsesFreshTranslations)
{
    // The audited clone()/diff()-vs-cache interaction: diff must not
    // trust translations cached before a move re-homed the page map.
    SparseMemory a;
    a.writeValue(0x10000, 8, 1);
    EXPECT_EQ(a.readValue(0x10000, 8), 1u);

    SparseMemory moved = std::move(a);
    SparseMemory other;
    other.writeValue(0x10000, 8, 2);

    int diffs = 0;
    SparseMemory::diff(moved, other,
                       [&diffs](Addr, std::uint8_t, std::uint8_t) {
                           ++diffs;
                       });
    EXPECT_GT(diffs, 0);

    SparseMemory clone = moved.clone();
    int clone_diffs = 0;
    SparseMemory::diff(moved, clone,
                       [&clone_diffs](Addr, std::uint8_t, std::uint8_t) {
                           ++clone_diffs;
                       });
    EXPECT_EQ(clone_diffs, 0);
}

} // namespace
} // namespace icheck::mem
