/**
 * @file
 * Recursive type descriptors: layout sizes, scalar enumeration with FP
 * identification (the SW-Tr annotation language of Section 4.2).
 */

#include <gtest/gtest.h>
#include <vector>

#include "mem/type_desc.hpp"

namespace icheck::mem
{
namespace
{

using Visit = std::tuple<std::size_t, ScalarKind, unsigned>;

std::vector<Visit>
scan(const TypeRef &type)
{
    std::vector<Visit> visits;
    type->forEachScalar([&](std::size_t off, ScalarKind kind, unsigned w) {
        visits.emplace_back(off, kind, w);
    });
    return visits;
}

TEST(TypeDesc, ScalarSizes)
{
    EXPECT_EQ(tInt8()->size(), 1u);
    EXPECT_EQ(tInt16()->size(), 2u);
    EXPECT_EQ(tInt32()->size(), 4u);
    EXPECT_EQ(tInt64()->size(), 8u);
    EXPECT_EQ(tFloat()->size(), 4u);
    EXPECT_EQ(tDouble()->size(), 8u);
    EXPECT_EQ(tPointer()->size(), 8u);
    EXPECT_EQ(tPad(13)->size(), 13u);
}

TEST(TypeDesc, ArrayLayout)
{
    const TypeRef arr = tArray(tDouble(), 10);
    EXPECT_EQ(arr->size(), 80u);
    const auto visits = scan(arr);
    ASSERT_EQ(visits.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(std::get<0>(visits[i]), i * 8);
        EXPECT_EQ(std::get<1>(visits[i]), ScalarKind::Double);
    }
}

TEST(TypeDesc, StructLayoutSequential)
{
    const TypeRef node = tStruct({tInt32(), tPad(4), tDouble(),
                                  tPointer()});
    EXPECT_EQ(node->size(), 24u);
    const auto visits = scan(node);
    ASSERT_EQ(visits.size(), 4u);
    EXPECT_EQ(std::get<0>(visits[0]), 0u);
    EXPECT_EQ(std::get<0>(visits[1]), 4u);
    EXPECT_EQ(std::get<1>(visits[1]), ScalarKind::Pad);
    EXPECT_EQ(std::get<0>(visits[2]), 8u);
    EXPECT_EQ(std::get<1>(visits[2]), ScalarKind::Double);
    EXPECT_EQ(std::get<0>(visits[3]), 16u);
}

TEST(TypeDesc, NestedArrayOfStructs)
{
    const TypeRef elem = tStruct({tFloat(), tInt32()});
    const TypeRef arr = tArray(elem, 3);
    const auto visits = scan(arr);
    ASSERT_EQ(visits.size(), 6u);
    EXPECT_EQ(std::get<0>(visits[2]), 8u); // second struct's float
    EXPECT_EQ(std::get<1>(visits[2]), ScalarKind::Float);
    EXPECT_EQ(std::get<0>(visits[5]), 20u); // third struct's int
}

TEST(TypeDesc, FpClassification)
{
    EXPECT_EQ(scalarClass(ScalarKind::Float), hashing::ValueClass::Float);
    EXPECT_EQ(scalarClass(ScalarKind::Double),
              hashing::ValueClass::Double);
    EXPECT_EQ(scalarClass(ScalarKind::Int64),
              hashing::ValueClass::Integer);
    EXPECT_EQ(scalarClass(ScalarKind::Pointer),
              hashing::ValueClass::Integer);
}

TEST(TypeDesc, DescribeRendersShape)
{
    EXPECT_EQ(tDouble()->describe(), "f64");
    EXPECT_EQ(tArray(tDouble(), 128)->describe(), "f64[128]");
    EXPECT_EQ(tStruct({tInt32(), tFloat()})->describe(), "{i32,f32}");
}

TEST(TypeDesc, SharedDescriptorsAreImmutable)
{
    const TypeRef d = tDouble();
    const TypeRef a1 = tArray(d, 4);
    const TypeRef a2 = tArray(d, 8);
    EXPECT_EQ(a1->size(), 32u);
    EXPECT_EQ(a2->size(), 64u);
}

} // namespace
} // namespace icheck::mem
