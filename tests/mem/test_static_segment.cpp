/**
 * @file
 * Static segment layout of program globals.
 */

#include <gtest/gtest.h>

#include "mem/static_segment.hpp"

namespace icheck::mem
{
namespace
{

TEST(StaticSegment, SequentialAlignedLayout)
{
    StaticSegment seg;
    const Addr a = seg.reserve("a", tInt32());
    const Addr b = seg.reserve("b", tDouble());
    EXPECT_EQ(a, staticBase);
    EXPECT_EQ(b, staticBase + 8) << "4-byte global padded to 8";
    EXPECT_EQ(seg.bytes(), 16u);
}

TEST(StaticSegment, AddressOfFindsGlobals)
{
    StaticSegment seg;
    seg.reserve("x", tInt64());
    const Addr y = seg.reserve("y", tArray(tFloat(), 5));
    EXPECT_EQ(seg.addressOf("y"), y);
}

TEST(StaticSegment, UnknownGlobalPanics)
{
    StaticSegment seg;
    EXPECT_DEATH(seg.addressOf("nope"), "unknown global");
}

TEST(StaticSegment, DuplicateNamePanics)
{
    StaticSegment seg;
    seg.reserve("dup", tInt8());
    EXPECT_DEATH(seg.reserve("dup", tInt8()), "duplicate global");
}

TEST(StaticSegment, FindContainingCoversWholeType)
{
    StaticSegment seg;
    seg.reserve("first", tInt64());
    const Addr arr = seg.reserve("arr", tArray(tInt32(), 10));
    const GlobalVar *var = seg.findContaining(arr + 17);
    ASSERT_NE(var, nullptr);
    EXPECT_EQ(var->name, "arr");
    EXPECT_EQ(seg.findContaining(arr + 40), nullptr);
}

} // namespace
} // namespace icheck::mem
