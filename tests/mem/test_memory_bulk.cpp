/**
 * @file
 * The fast paths of SparseMemory: the page-translation cache, the aligned
 * word path in readValue/writeValue, and the page-chunk bulk and diff
 * loops. Every case is phrased so that the fast path and the per-byte
 * definition must agree — boundary straddles, cache-slot aliasing, and
 * moved-from instances are where they could diverge.
 */

#include <algorithm>
#include <cstring>
#include <gtest/gtest.h>
#include <tuple>
#include <utility>
#include <vector>

#include "mem/memory.hpp"
#include "support/rng.hpp"

namespace icheck::mem
{
namespace
{

TEST(SparseMemoryBulk, ValueAccessAgreesWithBytesAtEveryBoundaryOffset)
{
    // Slide every width across a page boundary so each access is exercised
    // fully-inside, straddling, and fully-after.
    SparseMemory mem;
    SplitMix64 gen(0x1234);
    const Addr boundary = heapBase + pageSize;
    for (unsigned width = 1; width <= 8; ++width) {
        for (unsigned back = 0; back <= 8; ++back) {
            const Addr addr = boundary - back;
            const std::uint64_t value =
                width == 8 ? gen.next()
                           : gen.next() & ((1ULL << (8 * width)) - 1);
            mem.writeValue(addr, width, value);
            EXPECT_EQ(mem.readValue(addr, width), value);
            std::uint64_t composed = 0;
            for (unsigned i = 0; i < width; ++i) {
                composed |= static_cast<std::uint64_t>(
                                mem.readByte(addr + i))
                            << (8 * i);
            }
            EXPECT_EQ(composed, value)
                << "width " << width << " back " << back;
        }
    }
}

TEST(SparseMemoryBulk, PerByteWritesVisibleToValueReads)
{
    SparseMemory mem;
    const Addr addr = staticBase + pageSize - 3; // straddles
    for (unsigned i = 0; i < 8; ++i)
        mem.writeByte(addr + i, static_cast<std::uint8_t>(0xa0 + i));
    EXPECT_EQ(mem.readValue(addr, 8), 0xa7a6a5a4a3a2a1a0ULL);
}

TEST(SparseMemoryBulk, BulkWriteReadStraddlesManyPages)
{
    SparseMemory mem;
    const std::size_t len = 3 * pageSize + 123;
    std::vector<std::uint8_t> data(len);
    for (std::size_t i = 0; i < len; ++i)
        data[i] = static_cast<std::uint8_t>(i * 13 + 7);
    const Addr addr = heapBase + pageSize - 50; // unaligned start
    mem.writeBytes(addr, data.data(), len);
    std::vector<std::uint8_t> back(len);
    mem.readBytes(addr, back.data(), len);
    EXPECT_EQ(back, data);
    // Spot-check against the per-byte view.
    for (std::size_t i : {std::size_t{0}, std::size_t{49},
                          std::size_t{50}, len - 1})
        EXPECT_EQ(mem.readByte(addr + i), data[i]);
}

TEST(SparseMemoryBulk, BulkReadZeroFillsUnmappedGap)
{
    SparseMemory mem;
    const Addr addr = heapBase;
    mem.writeByte(addr, 0x11);                     // page 0 mapped
    mem.writeByte(addr + 2 * pageSize, 0x22);      // page 2 mapped
    std::vector<std::uint8_t> out(3 * pageSize, 0xcc);
    mem.readBytes(addr, out.data(), out.size());
    EXPECT_EQ(out[0], 0x11);
    EXPECT_EQ(out[2 * pageSize], 0x22);
    // The unmapped middle page must read as zero, not stale buffer bytes.
    for (std::size_t i = pageSize; i < 2 * pageSize; ++i)
        ASSERT_EQ(out[i], 0) << "offset " << i;
    EXPECT_EQ(mem.mappedPages(), 2u) << "bulk read must not map pages";
}

TEST(SparseMemoryBulk, ZeroLengthBulkOpsAreNoOps)
{
    SparseMemory mem;
    mem.writeBytes(heapBase, nullptr, 0);
    mem.readBytes(heapBase, nullptr, 0);
    EXPECT_EQ(mem.mappedPages(), 0u);
}

TEST(SparseMemoryBulk, CacheAliasingManyPagesStaysCoherent)
{
    // More distinct pages than cache slots, revisited in a pattern that
    // forces every slot to be evicted and refilled repeatedly.
    SparseMemory mem;
    const std::size_t nPages = 300;
    for (std::size_t p = 0; p < nPages; ++p) {
        mem.writeValue(heapBase + p * pageSize, 8,
                       0x1000 + static_cast<std::uint64_t>(p));
    }
    for (std::size_t round = 0; round < 3; ++round) {
        for (std::size_t p = 0; p < nPages; ++p) {
            const std::size_t q = (p * 67) % nPages; // stride through slots
            EXPECT_EQ(mem.readValue(heapBase + q * pageSize, 8),
                      0x1000 + static_cast<std::uint64_t>(q));
        }
    }
}

TEST(SparseMemoryBulk, InterleavedReadWriteThroughSamePage)
{
    // Reads prime the translation cache; subsequent writes through the
    // cached page must be observed by subsequent reads and vice versa.
    SparseMemory mem;
    const Addr addr = scratchBase + 8;
    EXPECT_EQ(mem.readValue(addr, 8), 0u); // cache the miss path
    mem.writeValue(addr, 8, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.readValue(addr, 8), 0xdeadbeefcafef00dULL);
    mem.writeByte(addr + 3, 0x00);
    EXPECT_EQ(mem.readValue(addr, 8), 0xdeadbeef00fef00dULL);
}

TEST(SparseMemoryBulk, MovedInstancesStayCorrect)
{
    SparseMemory mem;
    mem.writeValue(heapBase, 8, 41);
    EXPECT_EQ(mem.readValue(heapBase, 8), 41u); // warm the cache

    SparseMemory moved(std::move(mem));
    EXPECT_EQ(moved.readValue(heapBase, 8), 41u);

    SparseMemory target;
    target.writeValue(heapBase, 8, 99);
    EXPECT_EQ(target.readValue(heapBase, 8), 99u); // warm target cache
    target = std::move(moved);
    EXPECT_EQ(target.readValue(heapBase, 8), 41u)
        << "stale cached page from before the move-assign";

    // The moved-from source must be safely reusable as an empty memory.
    mem = SparseMemory{}; // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(mem.readValue(heapBase, 8), 0u);
    mem.writeValue(heapBase, 8, 7);
    EXPECT_EQ(mem.readValue(heapBase, 8), 7u);
}

TEST(SparseMemoryBulk, CloneAfterCachedReadsIsIndependent)
{
    SparseMemory mem;
    mem.writeValue(heapBase, 8, 1);
    EXPECT_EQ(mem.readValue(heapBase, 8), 1u); // warm the cache
    SparseMemory copy = mem.clone();
    copy.writeValue(heapBase, 8, 2);
    EXPECT_EQ(mem.readValue(heapBase, 8), 1u);
    EXPECT_EQ(copy.readValue(heapBase, 8), 2u);
}

TEST(SparseMemoryBulk, DiffFindsAdjacentBytesInsideOneWord)
{
    SparseMemory a, b;
    a.writeValue(heapBase, 8, 0x1111111111111111ULL);
    b.writeValue(heapBase, 8, 0x1111ff11ee111111ULL);
    std::vector<std::tuple<Addr, std::uint8_t, std::uint8_t>> diffs;
    SparseMemory::diff(a, b, [&](Addr addr, std::uint8_t va,
                                 std::uint8_t vb) {
        diffs.emplace_back(addr, va, vb);
    });
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(diffs[0], std::make_tuple(Addr{heapBase + 3},
                                        std::uint8_t{0x11},
                                        std::uint8_t{0xee}));
    EXPECT_EQ(diffs[1], std::make_tuple(Addr{heapBase + 5},
                                        std::uint8_t{0x11},
                                        std::uint8_t{0xff}));
}

TEST(SparseMemoryBulk, DiffVisitsIncreasingAddressesAcrossPages)
{
    SparseMemory a, b;
    // Differences in the last word of one page and the first word of the
    // next, plus a page present on only one side in between.
    a.writeByte(heapBase + pageSize - 1, 0x01);
    b.writeByte(heapBase + 2 * pageSize, 0x02);
    a.writeByte(heapBase + 3 * pageSize + 7, 0x03);
    b.writeByte(heapBase + 3 * pageSize + 7, 0x04);
    std::vector<Addr> order;
    SparseMemory::diff(a, b, [&](Addr addr, std::uint8_t,
                                 std::uint8_t) {
        order.push_back(addr);
    });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], heapBase + pageSize - 1);
    EXPECT_EQ(order[1], heapBase + 2 * pageSize);
    EXPECT_EQ(order[2], heapBase + 3 * pageSize + 7);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SparseMemoryBulk, DiffIgnoresPagesMappedButEqual)
{
    SparseMemory a, b;
    a.writeValue(heapBase, 8, 123); // mapped in a only, but...
    a.writeValue(heapBase, 8, 0);   // ...all zero again
    b.writeByte(heapBase + pageSize, 0); // mapped-but-zero page in b only
    int count = 0;
    SparseMemory::diff(a, b,
                       [&](Addr, std::uint8_t, std::uint8_t) { ++count; });
    EXPECT_EQ(count, 0) << "zeroed pages equal unmapped pages";
}

} // namespace
} // namespace icheck::mem
